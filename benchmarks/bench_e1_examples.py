"""E1 — Figure 1 / Examples 5, 8, 16, 18: structural values.

Regenerates the paper's worked example quantities: the decomposition
edges of Figure 1, the incompatibility numbers ι(Example 5) = 3 and
ι(Example 18) = 3/2, star-order values, and the star embedding sizes of
Examples 16/18. Benchmarks the decomposition construction itself.
"""

from fractions import Fraction

from harness import report

from repro.core.decomposition import (
    DisruptionFreeDecomposition,
    incompatibility_number,
)
from repro.lowerbounds.star_queries import StarEmbedding
from repro.query.catalog import (
    example5_order,
    example5_query,
    example18_query,
    star_bad_order,
    star_good_order,
    star_query,
)


def test_e1_examples_table(benchmark):
    rows = []
    cases = [
        ("Example 5 (Fig. 1)", example5_query(), example5_order(), 3),
        (
            "Example 18",
            example18_query(),
            example5_order(),
            Fraction(3, 2),
        ),
        ("star k=2, bad order", star_query(2), star_bad_order(2), 2),
        ("star k=2, good order", star_query(2), star_good_order(2), 1),
        ("star k=3, bad order", star_query(3), star_bad_order(3), 3),
    ]
    for name, query, order, expected in cases:
        measured = incompatibility_number(query, order)
        rows.append([name, expected, measured, measured == expected])

    emb5 = StarEmbedding(example5_query(), example5_order())
    emb18 = StarEmbedding(example18_query(), example5_order())
    rows.append(
        ["Example 16 star size k", 3, emb5.star_size, emb5.star_size == 3]
    )
    rows.append(
        ["Example 18 blow-up λ", 2, emb18.blowup, emb18.blowup == 2]
    )

    report(
        "e1_examples",
        "E1: paper example values (claimed vs measured)",
        ["case", "paper", "measured", "match"],
        rows,
    )
    assert all(row[-1] for row in rows)

    benchmark(
        DisruptionFreeDecomposition, example18_query(), example5_order()
    )
