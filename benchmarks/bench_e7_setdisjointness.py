"""E7 — the 2-Set-Disjointness trade-off (Theorem 24 / Corollary 25).

The lower bound says: with near-linear preprocessing, queries cannot all
be fast; constant-time queries need essentially quadratic preprocessing.
We measure the three implemented back-ends on KPP-shaped instances
(n sets of size ~n^{1-γ}) and print the preprocessing/query trade-off the
conjecture declares unavoidable.
"""

import random

from harness import median_seconds, report, timed

from repro.lowerbounds.setdisjointness import (
    MergeDisjointness,
    PrecomputedDisjointness,
    SetSystem,
    StarDisjointness,
)

SETS = 80
GAMMA = 0.5


def build_instance(seed: int = 0) -> SetSystem:
    set_size = max(2, int(SETS ** (1 - GAMMA)))
    universe = max(4, int(SETS ** (2 - 2 * GAMMA)))
    return SetSystem.random(
        2, SETS, set_size, universe, seed=seed
    )


def test_e7_tradeoff(benchmark):
    instance = build_instance()
    rng = random.Random(5)
    queries = [
        (rng.randrange(SETS), rng.randrange(SETS)) for _ in range(200)
    ]

    rows = []
    backends = [
        ("merge (linear prep)", MergeDisjointness),
        ("precompute-all (n^2 prep)", PrecomputedDisjointness),
        ("star direct access (paper)", StarDisjointness),
    ]
    results = {}
    for name, backend in backends:
        oracle, prep_seconds = timed(backend, instance)

        def run_queries():
            return [oracle.disjoint(q) for q in queries]

        per_query = median_seconds(run_queries, repeats=3) / len(
            queries
        )
        results[name] = run_queries()
        rows.append(
            [
                name,
                f"{prep_seconds * 1e3:.1f} ms",
                f"{per_query * 1e6:.1f} us",
            ]
        )

    report(
        "e7_setdisjointness",
        f"E7: 2-Set-Disjointness back-ends (‖I‖={instance.size}, "
        f"{SETS} sets of ~{int(SETS ** (1 - GAMMA))})",
        ["backend", "preprocessing", "per-query"],
        rows,
    )
    # All back-ends must agree.
    reference = results[backends[0][0]]
    for name, _ in backends[1:]:
        assert results[name] == reference

    oracle = MergeDisjointness(instance)
    benchmark(oracle.disjoint, queries[0])
