"""Chaos smoke: one seeded crash/recovery run per engine, recorded.

A thin wrapper over :func:`repro.chaos.runner.run_chaos` — the heavy
lifting (seeded workload, fault schedules, shadow-model convergence
checks) lives in the library so the CLI, this bench, and the test
suite all replay the identical run from a seed.  Each engine's
verdict, crash/restart counts, and fault counters append to the
repo-root ``BENCH_serving.json`` trajectory; any ``fail`` verdict
exits non-zero and prints the one-line reproduction.

Also measures the disarmed-hook overhead: the per-call cost of a
``fire()`` on an unarmed registry, which the design requires to be a
global read + ``None`` check (nanoseconds, not microseconds).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import record_serving

from repro.chaos import faults
from repro.chaos.runner import run_chaos
from repro.engine import available_engines


def disarmed_overhead_ns(calls: int = 200_000) -> float:
    """Mean nanoseconds per disarmed ``fire()`` call."""
    faults.disarm()
    fire = faults.fire
    start = time.perf_counter()
    for _ in range(calls):
        fire("wal.fsync")
    return (time.perf_counter() - start) / calls * 1e9


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--ops", type=int, default=300)
    parser.add_argument("--procs", type=int, default=None)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)

    overhead = disarmed_overhead_ns()
    print(f"disarmed fire() overhead: {overhead:.0f} ns/call")

    failed = False
    for engine in available_engines():
        started = time.perf_counter()
        report = run_chaos(
            seed=args.seed,
            ops=args.ops,
            engine=engine,
            procs=args.procs,
            quick=args.quick,
        )
        elapsed = time.perf_counter() - started
        fired = sum(
            counts["fired"] for counts in report.fault_counters.values()
        )
        print(
            f"{engine}: {report.verdict} — {report.executed} ops, "
            f"{report.crashes} crashes, {report.restarts} restarts, "
            f"{fired} faults fired in {elapsed:.1f}s"
        )
        if report.verdict != "pass":
            failed = True
            for violation in report.violations:
                print(
                    f"  violation at op {violation.op_index}: "
                    f"{violation.kind}: {violation.detail}"
                )
            print(f"  reproduce: {report.repro}")
        record_serving(
            {
                "bench": "chaos",
                "engine": engine,
                "seed": report.seed,
                "ops": report.ops,
                "procs": report.procs,
                "verdict": report.verdict,
                "crashes": report.crashes,
                "restarts": report.restarts,
                "faults_fired": fired,
                "ops_survived": report.ops_survived,
                "disarmed_fire_ns": round(overhead, 1),
                "wall_s": round(elapsed, 2),
            }
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
