"""E10 — Proposition 35 applications: counting, median, boxplot.

After linear preprocessing of a tractable pair, every order-sensitive
operation (prefix-constraint count, median, quantiles) costs a
logarithmic number of accesses. We verify the per-operation time stays
flat across a geometric data sweep.
"""

from harness import median_seconds, report, timed

from repro.core.access import DirectAccess
from repro.core.counting import (
    CountingFromDirectAccess,
    PrefixConstraint,
)
from repro.core.tasks import boxplot_impl as boxplot, median_impl as median
from repro.data.generators import functional_path_database
from repro.query.catalog import path_query
from repro.query.variable_order import VariableOrder

SIZES = [2000, 4000, 8000, 16000]


def test_e10_order_statistics(benchmark):
    query = path_query(2)
    order = VariableOrder(query.variables)
    rows = []
    op_times = {"count": [], "median": [], "boxplot": []}
    for size in SIZES:
        database = functional_path_database(2, size, seed=2)
        access, prep = timed(DirectAccess, query, order, database)
        counter = CountingFromDirectAccess(access)
        constraint = PrefixConstraint((), size // 4, size // 2)

        count_time = median_seconds(
            lambda: counter.count(constraint), repeats=7
        )
        median_time = median_seconds(lambda: median(access), repeats=7)
        boxplot_time = median_seconds(
            lambda: boxplot(access), repeats=7
        )
        op_times["count"].append(count_time)
        op_times["median"].append(median_time)
        op_times["boxplot"].append(boxplot_time)
        rows.append(
            [
                len(database),
                f"{prep * 1e3:.0f} ms",
                f"{count_time * 1e6:.0f} us",
                f"{median_time * 1e6:.0f} us",
                f"{boxplot_time * 1e6:.0f} us",
            ]
        )

    growths = {
        name: times[-1] / max(times[0], 1e-9)
        for name, times in op_times.items()
    }
    rows.append(
        [
            "growth over 8x data (paper: ~log)",
            "",
            f"{growths['count']:.1f}x",
            f"{growths['median']:.1f}x",
            f"{growths['boxplot']:.1f}x",
        ]
    )
    report(
        "e10_tasks",
        "E10: per-operation cost of counting / median / boxplot",
        ["|D|", "preprocessing", "count", "median", "boxplot"],
        rows,
    )
    for name, growth in growths.items():
        assert growth < 8, (name, growth)

    database = functional_path_database(2, SIZES[0], seed=2)
    access = DirectAccess(query, order, database)
    benchmark(median, access)
