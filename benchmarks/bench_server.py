"""HTTP serving — threaded multi-client round-trips vs local calls.

The serving claim of the `repro serve` layer: N concurrent HTTP
clients querying different orders of one database all get answers
identical to a local :class:`~repro.Connection`, the database is
encoded once, and per-artifact locks keep distinct decompositions
from serializing behind each other.  Measured here:

* **round-trip latency** — warm single-client `access` requests over
  HTTP vs the same reads on a local connection (the wire tax);
* **multi-client throughput** — a thread fleet issuing a mixed
  access/count/rank workload against the worker pool.

Run under pytest (``pytest benchmarks/bench_server.py``) for the full
sweep, or standalone (the CI smoke job)::

    python benchmarks/bench_server.py --quick

which boots a server on an ephemeral port, runs the threaded
round-trip, verifies every remote answer against the local connection,
and exits non-zero on any mismatch or failed request.  (Timing is
reported but not gated — correctness gates, noise does not.)
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import percentiles, record_serving, report, timed

from repro.data.columnar import numpy_available
from repro.facade import connect
from repro.server.http import ReproServer

ROWS = 120
FANOUT = 2
CLIENTS = 8
REQUESTS_PER_CLIENT = 25

QUERY = "Q(x, y, z, w) :- R(x, y), S(x, z), T(x, w)"
ORDERS = (
    ["x", "y", "z", "w"],
    ["x", "w", "z", "y"],
    ["x", "z", "y", "w"],
)


def star_relations(rows: int, fanout: int) -> dict:
    pairs = {(m, v) for m in range(fanout) for v in range(rows)}
    return {"R": set(pairs), "S": set(pairs), "T": set(pairs)}


def post_op(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url + "/v1/session",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as reply:
        return json.loads(reply.read().decode("utf-8"))


def client_workload(index: int, size: int) -> list[dict]:
    """A deterministic mixed request stream for one client."""
    order = ORDERS[index % len(ORDERS)]
    ops = []
    for step in range(size):
        kind = step % 3
        if kind == 0:
            ops.append(
                {
                    "op": "access",
                    "query": QUERY,
                    "order": order,
                    "indices": [step % 7, -(step % 5) - 1],
                }
            )
        elif kind == 1:
            ops.append(
                {"op": "count", "query": QUERY, "order": order}
            )
        else:
            ops.append(
                {
                    "op": "page",
                    "query": QUERY,
                    "order": order,
                    "page_number": step % 4,
                    "page_size": 5,
                }
            )
    return ops


def expected_response(local, request: dict):
    """What a local connection answers for one protocol request."""
    view = local.prepare(request["query"], order=request["order"])
    if request["op"] == "access":
        return [list(view[i]) for i in request["indices"]]
    if request["op"] == "count":
        return len(view)
    return [
        list(answer)
        for answer in view.page(
            request["page_number"], request["page_size"]
        )
    ]


def run_fleet(
    server: ReproServer, clients: int, per_client: int
) -> tuple[list[dict], list[str], float]:
    """(responses, mismatches, wall seconds) for a full thread fleet."""
    local = connect(
        {
            name: set(relation.tuples)
            for name, relation in server.store.database.relations.items()
        }
    )
    responses: list[dict] = []
    mismatches: list[str] = []
    lock = threading.Lock()

    def client(index: int) -> None:
        for request in client_workload(index, per_client):
            try:
                response = post_op(server.url, request)
            except Exception as error:  # noqa: BLE001 (reported)
                with lock:
                    mismatches.append(f"transport: {error}")
                return
            expected = expected_response(local, request)
            got = (
                response["result"]["count"]
                if request["op"] == "count"
                else response["result"]["answers"]
            ) if response.get("ok") else None
            with lock:
                responses.append(response)
                if not response.get("ok"):
                    mismatches.append(f"failed: {response}")
                elif got != expected:
                    mismatches.append(
                        f"{request['op']}: {got!r} != {expected!r}"
                    )

    def fleet() -> None:
        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    _, wall = timed(fleet)
    return responses, mismatches, wall


def measure_client_efficiency(server: ReproServer) -> list[str]:
    """Keep-alive + batched-rank checks on the facade HTTP client.

    Returns failure strings (empty = ok).  Two wire-efficiency claims:
    a warm ``ranks`` batch is ONE wire op however many tuples (the
    protocol's batched rank form), and the whole conversation rides a
    handful of kept-alive sockets instead of one TCP handshake per
    request.
    """
    failures: list[str] = []
    client = connect(server.url)
    view = client.prepare(QUERY, order=ORDERS[0])
    answers = view.tuples_at(range(min(len(view), 24)))
    before = client.stats()["server"]["requests"]
    ranks = view.ranks(answers)
    wire_ops = client.stats()["server"]["requests"] - before
    if ranks != list(range(len(answers))):
        failures.append(f"batched ranks wrong: {ranks[:5]}...")
    if wire_ops != 1:
        failures.append(
            f"ranks({len(answers)}) cost {wire_ops} wire ops, "
            "expected 1 (batched rank regression)"
        )
    # Socket reuse: everything above (healthz + several POSTs +
    # stats) over at most the pool's idle cap.
    if client._pool.opened > client._pool.MAX_IDLE:
        failures.append(
            f"keep-alive regression: {client._pool.opened} sockets "
            f"opened for {client.stats()['server']['requests']} "
            "requests"
        )
    client.close()
    return failures


def measure(rows: int, fanout: int, clients: int, per_client: int):
    """(table rows, mismatches, stats) for one serving sweep."""
    relations = star_relations(rows, fanout)
    with ReproServer(relations, workers=4) as server:
        # Warm single-client latency: HTTP vs local, same reads.
        warm = {"op": "access", "query": QUERY,
                "order": ORDERS[0], "indices": [0, -1]}
        post_op(server.url, warm)  # pay preprocessing once
        samples = [
            timed(post_op, server.url, warm)[1] for _ in range(30)
        ]
        http_latency = min(samples)
        local = connect(relations)
        view = local.prepare(QUERY, order=ORDERS[0])
        local_latency = min(
            timed(view.tuples_at, [0, -1])[1] for _ in range(5)
        )

        responses, mismatches, wall = run_fleet(
            server, clients, per_client
        )
        mismatches.extend(measure_client_efficiency(server))
        stats = server.stats()
        stats["latency_percentiles"] = percentiles(samples)

    total = clients * per_client
    table_rows = [
        [
            f"|D|={3 * rows * fanout}",
            f"{clients}x{per_client}",
            f"{local_latency * 1e6:.0f} us",
            f"{http_latency * 1e6:.0f} us",
            f"{wall:.2f} s",
            f"{total / max(wall, 1e-9):.0f} req/s",
            str(stats["store"]["database_encodes"]),
            str(stats["store"]["build_concurrency_peak"]),
        ]
    ]
    assert len(responses) == total, (len(responses), total)
    return table_rows, mismatches, stats


def test_server_round_trip(benchmark):
    table_rows, mismatches, stats = measure(
        ROWS, FANOUT, CLIENTS, REQUESTS_PER_CLIENT
    )
    report(
        "server_round_trip",
        "HTTP serving: threaded multi-client mixed workload "
        f"({CLIENTS} clients, {len(ORDERS)} sibling orders, "
        "4 workers)",
        [
            "workload",
            "clients",
            "local access",
            "http access",
            "fleet wall",
            "throughput",
            "encodes",
            "build peak",
        ],
        table_rows,
    )
    assert not mismatches, mismatches[:5]
    assert stats["store"]["database_encodes"] == 1

    with ReproServer(
        star_relations(ROWS, FANOUT), workers=4
    ) as server:
        warm = {"op": "access", "query": QUERY,
                "order": ORDERS[0], "indices": [0, -1]}
        post_op(server.url, warm)
        benchmark(post_op, server.url, warm)


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (the CI server smoke job)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes; verify every remote answer against a "
        "local connection and exit non-zero on mismatch",
    )
    args = parser.parse_args(argv)
    rows, clients, per_client = (
        (40, 6, 8) if args.quick else (ROWS, CLIENTS, REQUESTS_PER_CLIENT)
    )

    table_rows, mismatches, stats = measure(
        rows, FANOUT, clients, per_client
    )
    (row,) = table_rows
    print(
        f"served {clients * per_client} requests from {clients} "
        f"threaded clients: {row[5]} ({row[4]} wall), "
        f"http access {row[3]} vs local {row[2]}"
    )
    print(
        f"store: {stats['store']['database_encodes']} database "
        f"encode(s), build concurrency peak "
        f"{stats['store']['build_concurrency_peak']}, "
        f"{stats['store']['artifact_builds']} artifact builds "
        f"(numpy engine available: {numpy_available()})"
    )
    failures = list(mismatches)
    if stats["store"]["database_encodes"] != 1:
        failures.append(
            "database encoded more than once across workers"
        )
    # One point on the serving-performance trajectory: threaded mode's
    # warm latency percentiles and fleet throughput.
    record_serving(
        {
            "bench": "bench_server",
            "quick": bool(args.quick),
            "modes": [
                {
                    "mode": "threads",
                    "workers": 4,
                    "latency": stats["latency_percentiles"],
                    "ladder": [
                        {
                            "clients": clients,
                            "requests": clients * per_client,
                            "rps": int(row[5].split()[0]),
                        }
                    ],
                    "saturation_rps": int(row[5].split()[0]),
                }
            ],
        }
    )
    for failure in failures[:10]:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("server smoke: " + ("FAIL" if failures else "OK"))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
