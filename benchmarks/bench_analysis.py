"""Static-analysis smoke: the pass itself stays cheap and clean.

Runs ``repro analyze --strict`` (as a library call) over the whole
repository, checks the zero-violation baseline, verifies the JSON
report is byte-identical across two runs, and appends the rule count
and wall-clock runtime to the repo-root ``BENCH_serving.json``
trajectory: a linter that drifts from milliseconds to minutes (or a
baseline that silently grows findings) is a regression like any
other.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import record_serving, timed

from repro.analysis import RULES, analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
TARGETS = ["src", "tests", "benchmarks"]


def run_pass():
    return analyze_paths(
        [REPO_ROOT / target for target in TARGETS],
        root=REPO_ROOT,
        strict=True,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single timing run (CI smoke); default runs twice "
        "and takes the faster",
    )
    args = parser.parse_args(argv)

    report, seconds = timed(run_pass)
    if not args.quick:
        _, again = timed(run_pass)
        seconds = min(seconds, again)

    first = run_pass().to_json()
    second = run_pass().to_json()
    deterministic = first == second

    print(
        f"analyzed {report.files} files against {len(RULES)} rules "
        f"in {seconds * 1e3:.0f} ms"
    )
    print(
        f"findings: {len(report.findings)} "
        f"(suppressed: {len(report.suppressed)}), "
        f"json deterministic: {deterministic}"
    )

    record_serving(
        {
            "benchmark": "analysis_smoke",
            "rules": len(RULES),
            "files": report.files,
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "analyze_seconds": round(seconds, 4),
            "json_deterministic": deterministic,
        }
    )

    if report.findings:
        for line in report.render_text():
            print(line)
        print("FAIL: the repository baseline is no longer clean")
        return 1
    if not deterministic:
        print("FAIL: JSON report differs between two runs")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
