"""E6 — Theorem 53: Loomis-Whitney enumeration.

The trivial algorithm (materialize with a worst-case optimal join, then
stream) spends ``O(|D|^{1+1/(k-1)})`` in preprocessing and has constant
delay; Theorem 53 says the preprocessing exponent cannot be improved. We
fit the measured exponent on AGM-worst-case triangles (k=3: exponent 3/2)
and confirm the delay stays flat.
"""

from harness import fit_exponent, report

from repro.data.generators import agm_worstcase_triangle_database
from repro.lowerbounds.loomis_whitney import MaterializingEnumerator
from repro.query.catalog import triangle_query

SIDES = [12, 17, 24, 34]


def test_e6_lw_enumeration(benchmark):
    sizes = []
    prep_times = []
    rows = []
    max_delays = []
    for side in SIDES:
        database = agm_worstcase_triangle_database(side)
        enumerator = MaterializingEnumerator(
            triangle_query(), database
        )
        consumed = sum(1 for _ in enumerator)
        assert consumed == side ** 3
        sizes.append(len(database))
        prep_times.append(enumerator.preprocessing_seconds)
        max_delays.append(enumerator.max_delay_seconds)
        rows.append(
            [
                len(database),
                consumed,
                f"{enumerator.preprocessing_seconds * 1e3:.0f} ms",
                f"{enumerator.max_delay_seconds * 1e6:.0f} us",
            ]
        )

    exponent = fit_exponent(sizes, prep_times)
    rows.append(
        [
            "fitted prep exponent",
            "paper: 1 + 1/(k-1) = 1.5",
            f"{exponent:.2f}",
            "",
        ]
    )
    report(
        "e6_loomis_whitney",
        "E6: LW_3 (triangle) enumeration via materializing WCOJ",
        ["|D|", "answers", "preprocessing", "max delay"],
        rows,
    )
    assert 1.2 < exponent < 1.9
    # Delay must not grow with the instance (constant-delay claim).
    assert max_delays[-1] < 100 * max(max_delays[0], 1e-6)

    database = agm_worstcase_triangle_database(SIDES[0])
    benchmark.pedantic(
        MaterializingEnumerator,
        args=(triangle_query(), database),
        rounds=3,
        iterations=1,
    )
