"""E4 — direct access vs materialize-and-sort (the §1 motivation).

The output of a join can be orders of magnitude larger than the input;
direct access avoids paying for it. On a 2-path with quadratic blow-up we
compare (preprocess + k accesses) for the direct-access engine against
(materialize + sort + k lookups), and report the regime where each wins.
"""

from harness import report, timed

from repro.core.access import DirectAccess
from repro.data.generators import bipartite_path_database
from repro.joins.generic_join import evaluate
from repro.query.catalog import path_query
from repro.query.variable_order import VariableOrder

ROWS = 300  # |D| = 1200, output = 2 * 300^2 = 180000
FANOUT = 2


def test_e4_direct_access_vs_materialization(benchmark):
    query = path_query(2)
    database = bipartite_path_database(ROWS, FANOUT)
    order = VariableOrder(query.variables)

    access, direct_prep = timed(DirectAccess, query, order, database)

    def materialize():
        table = evaluate(query, database, list(order))
        return sorted(table.rows)

    answers, materialize_prep = timed(materialize)
    assert len(access) == len(answers)

    rows = []
    for accesses in (1, 100, 10_000):
        step = max(1, len(access) // accesses)
        indices = list(range(0, len(access), step))[:accesses]

        def run_direct():
            for index in indices:
                access.tuple_at(index)

        _, direct_access_time = timed(run_direct)

        def run_materialized():
            for index in indices:
                answers[index]

        _, lookup_time = timed(run_materialized)
        direct_total = direct_prep + direct_access_time
        materialized_total = materialize_prep + lookup_time
        rows.append(
            [
                accesses,
                f"{direct_total * 1e3:.1f} ms",
                f"{materialized_total * 1e3:.1f} ms",
                "direct"
                if direct_total < materialized_total
                else "materialize",
            ]
        )

    rows.append(
        [
            "output/input ratio",
            f"{len(access) / len(database):.0f}x",
            "",
            "",
        ]
    )
    report(
        "e4_vs_materialize",
        "E4: total time to answer k ranked accesses "
        f"(|D|={len(database)}, output={len(access)})",
        ["k accesses", "direct access", "materialize+sort", "winner"],
        rows,
    )
    # The headline claim: for few accesses, direct access must win.
    assert rows[0][-1] == "direct"

    # sanity: both agree on a sample
    for index in (0, len(access) // 2, len(access) - 1):
        assert access.tuple_at(index) == answers[index]

    benchmark(access.tuple_at, len(access) // 3)
