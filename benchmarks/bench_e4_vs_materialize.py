"""E4 — direct access vs materialize-and-sort (the §1 motivation).

The output of a join can be orders of magnitude larger than the input;
direct access avoids paying for it. On a 2-path with quadratic blow-up we
compare (preprocess + k accesses) for the direct-access engine against
(materialize + sort + k lookups), and report the regime where each wins.
"""

import pytest
from harness import report, timed

from repro.core.access import DirectAccess
from repro.data.columnar import numpy_available
from repro.data.generators import bipartite_path_database
from repro.engine import use_engine
from repro.joins.generic_join import evaluate
from repro.query.catalog import path_query
from repro.query.variable_order import VariableOrder

ROWS = 300  # |D| = 1200, output = 2 * 300^2 = 180000
FANOUT = 2


def test_e4_direct_access_vs_materialization(benchmark):
    query = path_query(2)
    database = bipartite_path_database(ROWS, FANOUT)
    order = VariableOrder(query.variables)

    access, direct_prep = timed(DirectAccess, query, order, database)

    def materialize():
        table = evaluate(query, database, list(order))
        return sorted(table.rows)

    answers, materialize_prep = timed(materialize)
    assert len(access) == len(answers)

    rows = []
    for accesses in (1, 100, 10_000):
        step = max(1, len(access) // accesses)
        indices = list(range(0, len(access), step))[:accesses]

        def run_direct():
            for index in indices:
                access.tuple_at(index)

        _, direct_access_time = timed(run_direct)

        def run_materialized():
            for index in indices:
                answers[index]

        _, lookup_time = timed(run_materialized)
        direct_total = direct_prep + direct_access_time
        materialized_total = materialize_prep + lookup_time
        rows.append(
            [
                accesses,
                f"{direct_total * 1e3:.1f} ms",
                f"{materialized_total * 1e3:.1f} ms",
                "direct"
                if direct_total < materialized_total
                else "materialize",
            ]
        )

    rows.append(
        [
            "output/input ratio",
            f"{len(access) / len(database):.0f}x",
            "",
            "",
        ]
    )
    report(
        "e4_vs_materialize",
        "E4: total time to answer k ranked accesses "
        f"(|D|={len(database)}, output={len(access)})",
        ["k accesses", "direct access", "materialize+sort", "winner"],
        rows,
    )
    # The headline claim: for few accesses, direct access must win.
    assert rows[0][-1] == "direct"

    # sanity: both agree on a sample
    for index in (0, len(access) // 2, len(access) - 1):
        assert access.tuple_at(index) == answers[index]

    benchmark(access.tuple_at, len(access) // 3)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_e4_engine_preprocessing_speedup(benchmark):
    """Theorem 10 preprocessing, python vs numpy engine (same answers)."""
    query = path_query(2)
    order = VariableOrder(query.variables)

    rows = []
    speedups = []
    for size in (300, 1000, 3000):
        measured = {}
        lengths = {}
        for engine in ("python", "numpy"):
            with use_engine(engine):
                # Fresh database per repeat: the columnar cache lives on
                # the relations, so reusing one database would charge
                # dictionary encoding to the first repeat only and the
                # median would be a warm-cache time.
                times = []
                for _ in range(3):
                    database = bipartite_path_database(size, 2)
                    access, seconds = timed(
                        DirectAccess, query, order, database
                    )
                    times.append(seconds)
                times.sort()
                measured[engine] = times[len(times) // 2]
                lengths[engine] = len(access)
        assert lengths["python"] == lengths["numpy"]
        speedup = measured["python"] / measured["numpy"]
        speedups.append(speedup)
        rows.append(
            [
                4 * size,
                f"{measured['python'] * 1e3:.1f} ms",
                f"{measured['numpy'] * 1e3:.1f} ms",
                f"{speedup:.2f}x",
            ]
        )
    report(
        "e4_engine_speedup",
        "E4b: DirectAccess preprocessing time by engine "
        "(2-path, fanout 2)",
        ["|D|", "python engine", "numpy engine", "numpy speedup"],
        rows,
    )
    # The headline engine claim: vectorized preprocessing wins clearly
    # at least once across the sweep.
    assert max(speedups) >= 2.0

    database = bipartite_path_database(1000, 2)
    with use_engine("numpy"):
        benchmark(DirectAccess, query, order, database)
