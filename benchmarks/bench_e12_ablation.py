"""E12 (ablation) — why Theorem 10 materializes bags with a WCOJ.

The bag relations of the disruption-free decomposition are computed by
Generic Join over the atoms of an optimal fractional edge cover; this is
what makes the preprocessing ``O(|D|^ι)``. The natural alternative —
left-deep pairwise hash joins — can build intermediates quadratically
larger than both input and output. We ablate the join strategy on the
triangle bag over "star graph" data (hub-shaped relations), where Generic
Join runs in near-linear time but the pairwise plan is quadratic.
"""

from harness import fit_exponent, report, timed

from repro.core.preprocessing import Preprocessing
from repro.data.database import Database
from repro.joins.generic_join import tables_of_query
from repro.query.catalog import triangle_query
from repro.query.variable_order import VariableOrder

SCALES = [300, 450, 700, 1000]


def star_graph_database(n: int) -> Database:
    """Every relation is the star K_{1,n}: hub 0 plus n leaves."""
    star = {(0, i) for i in range(1, n + 1)} | {
        (i, 0) for i in range(1, n + 1)
    }
    return Database({"R1": star, "R2": star, "R3": star})


def pairwise_plan(database: Database) -> int:
    """Left-deep hash joins; returns the peak intermediate size."""
    tables = tables_of_query(triangle_query(), database)
    intermediate = tables[0].natural_join(tables[1])
    peak = len(intermediate)
    final = intermediate.semijoin(tables[2])
    final = final.natural_join(tables[2])
    return max(peak, len(final))


def test_e12_join_strategy_ablation(benchmark):
    order = VariableOrder(["x1", "x2", "x3"])
    sizes = []
    wcoj_times = []
    pairwise_times = []
    rows = []
    for scale in SCALES:
        database = star_graph_database(scale)
        sizes.append(len(database))
        prep, wcoj_seconds = timed(
            Preprocessing, triangle_query(), order, database
        )
        peak, pairwise_seconds = timed(pairwise_plan, database)
        wcoj_times.append(wcoj_seconds)
        pairwise_times.append(pairwise_seconds)
        rows.append(
            [
                len(database),
                f"{wcoj_seconds * 1e3:.0f} ms",
                max(len(p.table) for p in prep.bags),
                f"{pairwise_seconds * 1e3:.0f} ms",
                peak,
            ]
        )

    wcoj_exponent = fit_exponent(sizes, wcoj_times)
    pairwise_exponent = fit_exponent(sizes, pairwise_times)
    rows.append(
        [
            "fitted exponent",
            f"{wcoj_exponent:.2f}",
            "(<= rho* = 1.5)",
            f"{pairwise_exponent:.2f}",
            "(quadratic)",
        ]
    )
    report(
        "e12_ablation",
        "E12: bag materialization — Generic Join (Thm 10) vs pairwise",
        [
            "|D|",
            "WCOJ prep",
            "WCOJ max bag",
            "pairwise time",
            "pairwise peak",
        ],
        rows,
    )
    assert wcoj_exponent < pairwise_exponent - 0.4

    database = star_graph_database(SCALES[0])
    benchmark.pedantic(
        Preprocessing,
        args=(triangle_query(), order, database),
        rounds=3,
        iterations=1,
    )
