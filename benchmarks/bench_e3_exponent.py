"""E3 — Theorem 10 / Theorem 44 (upper bound): preprocessing is |D|^ι.

Measures the empirical preprocessing exponent of the direct-access engine
on three query/order pairs whose incompatibility numbers are 1, 3/2 and
2, on worst-case-shaped data, and compares the fitted slope to ι.
"""

from fractions import Fraction

from harness import fit_exponent, report, timed

from repro.core.preprocessing import Preprocessing
from repro.data.database import Database
from repro.data.generators import functional_path_database
from repro.query.catalog import (
    path_query,
    star_bad_order,
    star_query,
    triangle_query,
)
from repro.query.variable_order import VariableOrder


def path_case(scale: int):
    query = path_query(2)
    database = functional_path_database(2, scale * scale, seed=3)
    return query, VariableOrder(query.variables), database


UNIVERSE = 12


def star_case(scale: int):
    """Worst case for ι = 2: many sets over a small shared universe.

    With ``scale`` sets all equal to a constant-size universe, the bad
    order's decomposition bag holds ``|universe| * scale^2`` tuples —
    quadratic in ``|D| = 2 * |universe| * scale``.
    """
    query = star_query(2)
    full = {(j, v) for j in range(scale) for v in range(UNIVERSE)}
    database = Database({"R1": full, "R2": full})
    return query, star_bad_order(2), database


def triangle_case(scale: int):
    query = triangle_query()
    full = {(a, b) for a in range(scale) for b in range(scale)}
    database = Database({"R1": full, "R2": full, "R3": full})
    return query, VariableOrder(["x1", "x2", "x3"]), database


CASES = [
    ("2-path, natural order", path_case, Fraction(1), [24, 34, 48, 68]),
    ("2-star, bad order", star_case, Fraction(2), [40, 57, 80, 113]),
    (
        "triangle, any order",
        triangle_case,
        Fraction(3, 2),
        [30, 42, 60, 84],
    ),
]


def test_e3_preprocessing_exponents(benchmark):
    rows = []
    for name, case, iota, scales in CASES:
        sizes = []
        times = []
        for scale in scales:
            query, order, database = case(scale)
            _, seconds = timed(Preprocessing, query, order, database)
            sizes.append(len(database))
            times.append(seconds)
        fitted = fit_exponent(sizes, times)
        rows.append(
            [
                name,
                f"{float(iota):.2f}",
                f"{fitted:.2f}",
                f"{times[-1] * 1e3:.0f} ms @ |D|={sizes[-1]}",
            ]
        )
        # Exponent within a broad envelope of ι (interpreter noise,
        # hash-set constants); must clearly separate 1 vs 1.5 vs 2.
        assert abs(fitted - float(iota)) < 0.55, (name, fitted)

    report(
        "e3_exponent",
        "E3: preprocessing exponent vs incompatibility number ι",
        ["query/order", "ι (paper)", "fitted exponent", "largest run"],
        rows,
    )

    query, order, database = star_case(24)
    benchmark.pedantic(
        Preprocessing,
        args=(query, order, database),
        rounds=3,
        iterations=1,
    )
