"""E13 — Corollary 46 in practice: the order choice is a polynomial knob.

The same query on the same data costs |D|^1 or |D|^2 preprocessing
depending only on the requested order (star query: center-first vs
center-last). The advisor predicts this from the query alone; we verify
the prediction against measured times and show the advisor's ranking.
"""

from harness import fit_exponent, report, timed

from repro.core.advisor import order_cost_spread, rank_orders
from repro.core.preprocessing import Preprocessing
from repro.data.database import Database
from repro.query.catalog import (
    star_bad_order,
    star_good_order,
    star_query,
)

SCALES = [40, 57, 80, 113]
UNIVERSE = 12


def star_data(scale: int) -> Database:
    full = {(j, v) for j in range(scale) for v in range(UNIVERSE)}
    return Database({"R1": full, "R2": full})


def test_e13_order_choice(benchmark):
    query = star_query(2)
    low, high = order_cost_spread(query)
    assert (low, high) == (1, 2)

    sizes = []
    good_times = []
    bad_times = []
    for scale in SCALES:
        database = star_data(scale)
        sizes.append(len(database))
        _, good_seconds = timed(
            Preprocessing, query, star_good_order(2), database
        )
        _, bad_seconds = timed(
            Preprocessing, query, star_bad_order(2), database
        )
        good_times.append(good_seconds)
        bad_times.append(bad_seconds)

    good_exponent = fit_exponent(sizes, good_times)
    bad_exponent = fit_exponent(sizes, bad_times)

    rows = [
        [
            report_line.describe(),
        ]
        for report_line in rank_orders(query, limit=3)
    ]
    rows.append([f"advisor spread: ι in [{low}, {high}]"])
    rows.append(
        [
            f"measured exponents: center-first {good_exponent:.2f} "
            f"(ι=1), center-last {bad_exponent:.2f} (ι=2)"
        ]
    )
    rows.append(
        [
            f"largest-run slowdown for the wrong order: "
            f"{bad_times[-1] / max(good_times[-1], 1e-9):.0f}x"
        ]
    )
    report(
        "e13_order_choice",
        "E13: same query, same data — the order decides the exponent",
        ["finding"],
        rows,
    )
    assert good_exponent < bad_exponent - 0.5
    assert bad_times[-1] > 3 * good_times[-1]

    database = star_data(SCALES[0])
    benchmark.pedantic(
        Preprocessing,
        args=(query, star_good_order(2), database),
        rounds=3,
        iterations=1,
    )
