"""E2 — Theorem 1 regime: linear preprocessing, logarithmic access.

On an acyclic, trio-free pair (the 3-path with its natural order) the
preprocessing time must scale (near-)linearly in |D| and the access time
must stay flat/logarithmic across a geometric sweep.
"""

import random

from harness import fit_exponent, median_seconds, report, timed

from repro.core.access import DirectAccess
from repro.data.generators import functional_path_database
from repro.query.catalog import path_query
from repro.query.variable_order import VariableOrder

LENGTH = 3
SIZES = [2000, 4000, 8000, 16000]


def build(rows: int) -> DirectAccess:
    query = path_query(LENGTH)
    database = functional_path_database(LENGTH, rows, seed=7)
    order = VariableOrder(query.variables)
    return DirectAccess(query, order, database)


def test_e2_linear_preprocessing_log_access(benchmark):
    rng = random.Random(1)
    prep_rows = []
    prep_times = []
    access_times = []
    for rows in SIZES:
        access, seconds = timed(build, rows)
        prep_times.append(seconds)
        indices = [rng.randrange(len(access)) for _ in range(50)]

        def run_accesses():
            for index in indices:
                access.tuple_at(index)

        per_access = median_seconds(run_accesses) / len(indices)
        access_times.append(per_access)
        prep_rows.append(
            [
                rows * LENGTH,
                f"{seconds * 1e3:.1f} ms",
                f"{per_access * 1e6:.1f} us",
            ]
        )

    exponent = fit_exponent(
        [s * LENGTH for s in SIZES], prep_times
    )
    access_growth = access_times[-1] / max(access_times[0], 1e-9)
    prep_rows.append(
        ["fitted prep exponent (paper: 1.0)", f"{exponent:.2f}", ""]
    )
    prep_rows.append(
        [
            "access growth over 8x data (paper: ~log)",
            f"{access_growth:.2f}x",
            "",
        ]
    )
    report(
        "e2_tractable",
        "E2: Theorem 1 — 3-path, natural order (ι = 1)",
        ["|D|", "preprocessing", "per-access"],
        prep_rows,
    )
    # Generous envelope: linear up to log factors, and far from quadratic.
    assert exponent < 1.6
    # Access stays within a small factor while data grows 8x.
    assert access_growth < 6

    access = build(SIZES[0])
    benchmark(access.tuple_at, len(access) // 2)
