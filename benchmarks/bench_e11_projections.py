"""E11 — Theorem 50: projections and partial lexicographic orders.

The projected 2-star (``z`` projected away, order on x1, x2) is governed
by the bad-order incompatibility number ι = 2: the bag over the center is
what preprocessing pays for, and access stays logarithmic. We check the
completion choice, measure the sweep, and confirm projected answers are
deduplicated at no extra access cost.
"""

import random

from harness import median_seconds, report, timed

from repro.core.projections import (
    partial_order_access,
    partial_order_incompatibility,
)
from repro.data.database import Database
from repro.query.catalog import projected_star_query
from repro.query.variable_order import VariableOrder

SIZES = [200, 400, 800]
UNIVERSE = 12


def build_database(sets: int, seed: int = 0) -> Database:
    rng = random.Random(seed)
    rows_one = set()
    rows_two = set()
    for j in range(sets):
        for _ in range(4):
            rows_one.add((j, rng.randrange(UNIVERSE)))
            rows_two.add((j, rng.randrange(UNIVERSE)))
    return Database({"R1": rows_one, "R2": rows_two})


def test_e11_projected_star(benchmark):
    query = projected_star_query(2)
    partial = VariableOrder(["x1", "x2"])
    iota, completion = partial_order_incompatibility(query, partial)
    assert iota == 2
    assert list(completion)[-1] == "z"

    rows = []
    access_times = []
    for sets in SIZES:
        database = build_database(sets)
        access, prep = timed(
            partial_order_access, query, partial, database
        )
        indices = list(
            range(0, len(access), max(1, len(access) // 40))
        )

        def run():
            for index in indices:
                access.tuple_at(index)

        per_access = median_seconds(run, repeats=3) / max(
            1, len(indices)
        )
        access_times.append(per_access)
        rows.append(
            [
                len(database),
                len(access),
                f"{prep * 1e3:.0f} ms",
                f"{per_access * 1e6:.1f} us",
            ]
        )

    growth = access_times[-1] / max(access_times[0], 1e-9)
    rows.append(
        ["access growth over 4x data", "", "", f"{growth:.1f}x"]
    )
    report(
        "e11_projections",
        f"E11: projected 2-star under partial order (ι = {iota})",
        ["|D|", "answers", "preprocessing", "per-access"],
        rows,
    )
    assert growth < 6

    database = build_database(SIZES[0])
    access = partial_order_access(query, partial, database)
    benchmark(access.tuple_at, len(access) // 2)
