"""Session caching — cold vs warm requests, shared-dictionary encoding.

The serving layer (:mod:`repro.session`) amortizes per-query work
across repeated requests.  Two claims are measured on the E4 workload
(the 2-path with quadratic blow-up, plus its star-shaped variant whose
leaf permutations all induce the same disruption-free decomposition):

* **cold vs warm** — the first request pays the full ``O(|D|^ι)``
  preprocessing; a repeat of the same request, *and* a request for a
  different order with the same decomposition, are served from the
  session caches with zero bag materializations;
* **shared dictionary** — pre-encoding the database once into a
  shared-domain dictionary beats re-encoding it per query (what every
  cold ``DirectAccess`` on a fresh database does under numpy).

Run under pytest (``pytest benchmarks/bench_session_cache.py``) for the
full sweep, or standalone (CI smoke)::

    python benchmarks/bench_session_cache.py --quick

which asserts the warm-path speedup is >= 1 and exits non-zero on a
cache regression.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest
from harness import report, timed

from repro.core.access import DirectAccess
from repro.data.columnar import numpy_available
from repro.data.database import Database, EncodedDatabase
from repro.data.generators import bipartite_path_database
from repro.engine import use_engine
from repro.query.catalog import path_query
from repro.query.parser import parse_query
from repro.query.variable_order import VariableOrder
from repro.session import AccessSession

ROWS = 300
FANOUT = 2
PROBES = (0, None, -1)  # None -> middle index, resolved per size


def star_workload(rows: int, fanout: int):
    """The E4 bipartite data reshaped as a 3-leaf star.

    ``Q(x, y, z, w) :- R(x, y), S(x, z), T(x, w)`` — every permutation
    of the leaves ``y, z, w`` (with ``x`` first) induces the *same*
    disruption-free decomposition, so a session must share one
    preprocessing pass among all six orders.
    """
    query = parse_query("Q(x, y, z, w) :- R(x, y), S(x, z), T(x, w)")
    pairs = {(m, v) for m in range(fanout) for v in range(rows)}
    database = Database(
        {"R": set(pairs), "S": set(pairs), "T": set(pairs)}
    )
    return query, database


def probe(access, probes=PROBES) -> list[tuple]:
    indices = [
        len(access) // 2 if p is None else p for p in probes
    ]
    return access.tuples_at(indices)


def measure_cold_vs_warm(rows: int, fanout: int, engine: str):
    """(table rows, speedups dict) for one size/engine combination."""
    query, database = star_workload(rows, fanout)
    cold_order = VariableOrder(["x", "y", "z", "w"])
    # Distinct leaf permutations, all inducing the same decomposition:
    # each is a first-time request (access-cache miss) served from the
    # shared bag relations + counting forest.
    sibling_orders = [
        VariableOrder(["x", "w", "z", "y"]),
        VariableOrder(["x", "z", "y", "w"]),
        VariableOrder(["x", "y", "w", "z"]),
    ]

    with use_engine(engine):
        session = AccessSession(database, engine=engine)
        cold_access, cold = timed(
            lambda: probe(session.access(query, order=cold_order))
        )
        materialized_cold = session.stats.bag_materializations
        # The cold pass is one-shot by nature; the warm samples take a
        # min over repeats so a CI scheduler hiccup on a single warm
        # call cannot flip the gating ratio.
        warm_repeat = min(
            timed(
                lambda: probe(session.access(query, order=cold_order))
            )[1]
            for _ in range(3)
        )
        warm_sibling = min(
            timed(
                lambda: probe(session.access(query, order=sibling))
            )[1]
            for sibling in sibling_orders
        )
        materialized_after = session.stats.bag_materializations

    speedups = {
        "repeat": cold / max(warm_repeat, 1e-9),
        "sibling": cold / max(warm_sibling, 1e-9),
    }
    table_rows = [
        [
            f"|D|={3 * rows * fanout}",
            engine,
            f"{cold * 1e3:.1f} ms",
            f"{warm_repeat * 1e3:.2f} ms",
            f"{warm_sibling * 1e3:.2f} ms",
            f"{speedups['sibling']:.1f}x",
        ]
    ]
    assert materialized_after == materialized_cold, (
        "warm requests must not re-materialize bag relations"
    )
    return table_rows, speedups


def measure_shared_dictionary(rows: int, fanout: int, repeats: int = 3):
    """Per-query encoding vs the session's shared dictionary (numpy)."""
    query = path_query(2)
    order = VariableOrder(query.variables)
    database = bipartite_path_database(rows, fanout)

    def cold_per_query():
        # What a fresh database costs every query today: no mirrors,
        # every operation re-encodes and merges dictionaries.
        for relation in database.relations.values():
            relation._columnar = None
        return DirectAccess(query, order, database)

    with use_engine("numpy"):
        per_query = min(
            timed(cold_per_query)[1] for _ in range(repeats)
        )
        encoded, encode_once = timed(EncodedDatabase, database.relations)
        shared = min(
            timed(DirectAccess, query, order, encoded)[1]
            for _ in range(repeats)
        )
    speedup = per_query / max(shared, 1e-9)
    table_rows = [
        [
            f"|D|={2 * rows * fanout}",
            f"{per_query * 1e3:.1f} ms",
            f"{encode_once * 1e3:.1f} ms",
            f"{shared * 1e3:.1f} ms",
            f"{speedup:.2f}x",
        ]
    ]
    return table_rows, speedup


def test_session_cold_vs_warm(benchmark):
    engines = ["python"] + (["numpy"] if numpy_available() else [])
    rows = []
    sibling_speedups = []
    for engine in engines:
        table_rows, speedups = measure_cold_vs_warm(
            ROWS, FANOUT, engine
        )
        rows.extend(table_rows)
        sibling_speedups.append(speedups["sibling"])
    report(
        "session_cold_vs_warm",
        "Session cache: cold access vs warm repeat vs sibling order "
        "(star workload, 3 probes per request)",
        [
            "workload",
            "engine",
            "cold",
            "warm (same order)",
            "warm (sibling order)",
            "sibling speedup",
        ],
        rows,
    )
    # The headline claim: a warm request with an identical decomposition
    # must beat paying preprocessing again.
    assert min(sibling_speedups) >= 1.0

    query, database = star_workload(ROWS, FANOUT)
    session = AccessSession(database)
    session.access(query, order=["x", "y", "z", "w"])  # warm it
    benchmark(
        lambda: probe(
            session.access(query, order=["x", "z", "y", "w"])
        )
    )


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_session_shared_dictionary(benchmark):
    rows, speedup = measure_shared_dictionary(ROWS, FANOUT)
    report(
        "session_shared_dictionary",
        "Shared-domain dictionary: per-query encoding vs pre-encoded "
        "database (E4 2-path preprocessing, numpy engine)",
        [
            "workload",
            "per-query encoding",
            "encode once",
            "pre-encoded",
            "speedup",
        ],
        rows,
    )
    # Skipping the per-query dictionary build + merges must not slow
    # preprocessing down; on this workload it is a clear win.
    assert speedup >= 1.0

    database = bipartite_path_database(ROWS, FANOUT)
    encoded = EncodedDatabase(database.relations)
    query = path_query(2)
    with use_engine("numpy"):
        benchmark(
            DirectAccess, query, VariableOrder(query.variables), encoded
        )


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (the CI cache-regression smoke job)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, assert warm-cache speedup >= 1",
    )
    args = parser.parse_args(argv)
    rows, fanout = (60, 2) if args.quick else (ROWS, FANOUT)

    engines = ["python"] + (["numpy"] if numpy_available() else [])
    failures = []
    for engine in engines:
        table_rows, speedups = measure_cold_vs_warm(rows, fanout, engine)
        print(
            f"[{engine}] cold vs warm: "
            f"repeat {speedups['repeat']:.1f}x, "
            f"sibling-order {speedups['sibling']:.1f}x "
            f"({table_rows[0][2].strip()} cold)"
        )
        if speedups["sibling"] < 1.0 or speedups["repeat"] < 1.0:
            failures.append(
                f"{engine}: warm-cache speedup below 1: {speedups}"
            )
    if numpy_available():
        table_rows, speedup = measure_shared_dictionary(rows, fanout)
        print(f"[numpy] shared dictionary vs per-query: {speedup:.2f}x")
        # Informational, not gating: the margin is real but small
        # (~1.1-1.2x), and sub-millisecond quick-mode timings on noisy
        # CI runners would make a hard >= 1 gate flake.  The cold-vs-
        # warm cache gates above (4x-100x margins) are the regression
        # guard; the full-size pytest benchmark asserts this one.
        if speedup < 1.0:
            print(
                "warning: shared-dictionary speedup below 1 "
                f"({speedup:.2f}x) — timing noise or a regression; "
                "rerun pytest benchmarks/bench_session_cache.py",
                file=sys.stderr,
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("session cache smoke: " + ("FAIL" if failures else "OK"))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
