"""E5 — Lemma 48 vs Corollary 46: orderless access on the 4-cycle.

Every lexicographic order of the 4-cycle needs ι = 2 preprocessing
(Corollary 46); dropping the order requirement reaches O(|D|^{3/2})
(Lemma 48). We sweep dense instances and compare both engines' largest
materialized bag and wall-clock preprocessing, fitting exponents.
"""

from harness import fit_exponent, report, timed

from repro.core.orderless import OrderlessFourCycleAccess
from repro.core.preprocessing import Preprocessing
from repro.data.database import Database
from repro.query.catalog import four_cycle_query
from repro.query.variable_order import VariableOrder

SCALES = [60, 85, 120, 170]
SMALL_DOMAIN = 4


def dense_cycle_database(scale: int) -> Database:
    """The hard shape for lexicographic orders: x2, x4 over a tiny domain.

    ``R1, R3 = [scale] x [c]`` and ``R2, R4 = [c] x [scale]`` make both
    decomposition bags of the order (x1..x4) hold ``c * scale^2`` tuples
    — quadratic in ``|D| = 4c * scale`` — while every heavy/light
    subquery of Lemma 48 regroups into bags of size ``O(c^2 * scale)``.
    """
    tall = {
        (a, b) for a in range(scale) for b in range(SMALL_DOMAIN)
    }
    wide = {
        (b, a) for b in range(SMALL_DOMAIN) for a in range(scale)
    }
    return Database({"R1": tall, "R2": wide, "R3": tall, "R4": wide})


def test_e5_orderless_vs_lexicographic(benchmark):
    sizes = []
    orderless_times = []
    lex_times = []
    rows = []
    order = VariableOrder(["x1", "x2", "x3", "x4"])
    for scale in SCALES:
        database = dense_cycle_database(scale)
        sizes.append(len(database))
        orderless, orderless_seconds = timed(
            OrderlessFourCycleAccess, database
        )
        lex, lex_seconds = timed(
            Preprocessing, four_cycle_query(), order, database
        )
        orderless_times.append(orderless_seconds)
        lex_times.append(lex_seconds)
        lex_bag = max(len(p.table) for p in lex.bags)
        rows.append(
            [
                len(database),
                f"{orderless_seconds * 1e3:.0f} ms",
                orderless.bag_budget,
                f"{lex_seconds * 1e3:.0f} ms",
                lex_bag,
            ]
        )

    orderless_exp = fit_exponent(sizes, orderless_times)
    lex_exp = fit_exponent(sizes, lex_times)
    rows.append(
        [
            "fitted exponent",
            f"{orderless_exp:.2f} (paper: <= 1.5)",
            "",
            f"{lex_exp:.2f} (paper: 2.0)",
            "",
        ]
    )
    report(
        "e5_orderless",
        "E5: 4-cycle — orderless (Lemma 48) vs lexicographic (ι = 2)",
        [
            "|D|",
            "orderless prep",
            "orderless max bag",
            "lex prep",
            "lex max bag",
        ],
        rows,
    )
    # Orderless must be asymptotically lighter than lexicographic.
    assert orderless_exp < lex_exp
    # And the bag budgets must respect |D|^{3/2} vs ~|D|^2 at the top.
    database = dense_cycle_database(SCALES[-1])
    access = OrderlessFourCycleAccess(database)
    assert access.bag_budget <= len(database) ** 1.5

    small = dense_cycle_database(SCALES[0])
    benchmark.pedantic(
        OrderlessFourCycleAccess, args=(small,), rounds=3, iterations=1
    )
