"""Live updates — incremental maintenance vs from-scratch rebuild.

The serving claim of the live-updates PR: after a delta, an
incrementally maintained store answers identically to a from-scratch
rebuild, at a fraction of the cost — the shared dictionary extends in
place (code-stable), untouched relations keep their encodings, and
cached artifacts whose decomposition avoids the mutated relation are
carried across the version bump with **zero** rebuilds (the
``artifacts_carried`` generation counter proves it).

Measured here, per engine:

* **apply latency** — ``store.apply(delta)`` (incremental) vs
  constructing a fresh store + re-preprocessing (rebuild);
* **warm re-access** — serving the *untouched* query after the delta
  (must be a pure cache hit) vs serving the *touched* query (one
  bounded rebuild);
* **differential law** — both queries' full answer lists after every
  delta equal a from-scratch store's.

Run under pytest (``pytest benchmarks/bench_mutations.py``) for the
full sweep, or standalone (the CI mutation-smoke job)::

    python benchmarks/bench_mutations.py --quick

which exercises both available engines and exits non-zero on any law
violation or on a delta that rebuilt an untouched artifact.  (Timing
is reported but not gated — correctness gates, noise does not.)
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import report, timed

from repro import Delta
from repro.engine import available_engines, use_engine
from repro.session import ArtifactStore

TOUCHED_QUERY = "Q(x, y, z) :- R(x, y), S(y, z)"
UNTOUCHED_QUERY = "P(u, v, w) :- T(u, v), U(v, w)"
ORDERS = {
    TOUCHED_QUERY: ["x", "y", "z"],
    UNTOUCHED_QUERY: ["u", "v", "w"],
}
ROWS = 4000
DELTAS = 8
DELTA_ROWS = 32


def make_relations(rows: int, seed: int = 7) -> dict:
    rng = random.Random(seed)
    span = max(rows // 2, 4)

    def table() -> set:
        return {
            (rng.randrange(span), rng.randrange(span))
            for _ in range(rows)
        }

    return {"R": table(), "S": table(), "T": table(), "U": table()}


def answers(store: ArtifactStore, query: str) -> list[tuple]:
    access = store.session().access(query, order=ORDERS[query])
    return access.tuples_at(range(len(access)))


def delta_stream(rows: int, count: int, delta_rows: int):
    """Deterministic insert/delete steps touching only relation R."""
    rng = random.Random(99)
    span = max(rows // 2, 4)
    ceiling = span  # fresh values append past the existing domain
    for step in range(count):
        inserts = {
            (ceiling + step, rng.randrange(span))
            for _ in range(delta_rows)
        }
        deletes = {
            (rng.randrange(span), rng.randrange(span))
            for _ in range(delta_rows // 2)
        }
        yield Delta(inserts={"R": inserts}, deletes={"R": deletes})


def run_engine(engine: str, rows: int, deltas: int, delta_rows: int):
    """(table row, failures) for one engine's mutation sweep."""
    failures: list[str] = []
    relations = make_relations(rows)
    with use_engine(engine):
        store = ArtifactStore(
            {name: set(tuples) for name, tuples in relations.items()},
            engine=engine,
        )
        # Warm both queries, then mutate only R: the T/U artifacts
        # must survive every delta untouched.
        answers(store, TOUCHED_QUERY)
        untouched_before = answers(store, UNTOUCHED_QUERY)
        current = {
            name: set(rel.tuples)
            for name, rel in store.database.relations.items()
        }
        apply_seconds = 0.0
        rebuild_seconds = 0.0
        warm_seconds = 0.0
        for delta in delta_stream(rows, deltas, delta_rows):
            current["R"] = (current["R"] - delta.deletes["R"]) | (
                delta.inserts["R"]
            )
            _, seconds = timed(store.apply, delta)
            apply_seconds += seconds
            # The from-scratch competitor pays encode + preprocessing.
            def rebuild():
                fresh = ArtifactStore(
                    {name: set(rows_) for name, rows_ in current.items()},
                    engine=engine,
                )
                return answers(fresh, TOUCHED_QUERY)
            scratch, seconds = timed(rebuild)
            rebuild_seconds += seconds
            live = answers(store, TOUCHED_QUERY)
            if live != scratch:
                failures.append(
                    f"{engine}: incremental != rebuild after {delta!r}"
                )
            builds_before = store.stats.artifact_builds
            untouched_live, seconds = timed(
                answers, store, UNTOUCHED_QUERY
            )
            warm_seconds += seconds
            if store.stats.artifact_builds != builds_before:
                failures.append(
                    f"{engine}: delta on R rebuilt an untouched "
                    "T/U artifact"
                )
            if untouched_live != untouched_before:
                failures.append(
                    f"{engine}: untouched answers changed under a "
                    "delta on R"
                )
        stats = store.cache_stats()
        if stats["artifacts_carried"] == 0:
            failures.append(f"{engine}: no artifact was ever carried")
        table_row = [
            engine,
            f"|D|={4 * rows}",
            f"{deltas}x{delta_rows}",
            f"{apply_seconds / deltas * 1e3:.1f} ms",
            f"{rebuild_seconds / deltas * 1e3:.1f} ms",
            f"{rebuild_seconds / max(apply_seconds, 1e-9):.1f}x",
            f"{warm_seconds / deltas * 1e3:.2f} ms",
            str(stats["incremental_encodes"]),
            str(stats["artifacts_carried"]),
            str(stats["artifacts_invalidated"]),
        ]
    return table_row, failures, stats


def run(rows: int, deltas: int, delta_rows: int):
    table_rows = []
    failures: list[str] = []
    for engine in available_engines():
        row, engine_failures, _stats = run_engine(
            engine, rows, deltas, delta_rows
        )
        table_rows.append(row)
        failures.extend(engine_failures)
    return table_rows, failures


def test_incremental_maintenance(benchmark):
    table_rows, failures = run(ROWS, DELTAS, DELTA_ROWS)
    report(
        "mutations",
        "Live updates: store.apply(delta) vs from-scratch rebuild "
        f"({DELTAS} deltas on R, untouched query on T/U)",
        [
            "engine",
            "database",
            "deltas",
            "apply",
            "rebuild",
            "speedup",
            "warm re-access",
            "incr encodes",
            "carried",
            "invalidated",
        ],
        table_rows,
    )
    assert not failures, failures[:5]

    store = ArtifactStore(make_relations(ROWS))
    answers(store, TOUCHED_QUERY)
    deltas = list(delta_stream(ROWS, 2, DELTA_ROWS))
    benchmark(store.apply, deltas[0])


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (the CI mutation-smoke job)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes; law-check incremental vs rebuild on both "
        "engines and exit non-zero on any violation",
    )
    args = parser.parse_args(argv)
    rows, deltas, delta_rows = (
        (600, 4, 8) if args.quick else (ROWS, DELTAS, DELTA_ROWS)
    )

    table_rows, failures = run(rows, deltas, delta_rows)
    for row in table_rows:
        print(
            f"{row[0]}: apply {row[3]} vs rebuild {row[4]} "
            f"({row[5]} speedup), warm re-access {row[6]}, "
            f"{row[7]} incremental encode(s), {row[8]} carried / "
            f"{row[9]} invalidated"
        )
    for failure in failures[:10]:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("mutation smoke: " + ("FAIL" if failures else "OK"))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
