"""Live updates — incremental maintenance vs from-scratch rebuild.

The serving claim of the live-updates PR: after a delta, an
incrementally maintained store answers identically to a from-scratch
rebuild, at a fraction of the cost — the shared dictionary extends in
place (code-stable), untouched relations keep their encodings, and
cached artifacts whose decomposition avoids the mutated relation are
carried across the version bump with **zero** rebuilds (the
``artifacts_carried`` generation counter proves it).

Measured here, per engine:

* **apply latency** — ``store.apply(delta)`` (incremental) vs
  constructing a fresh store + re-preprocessing (rebuild);
* **warm re-access** — serving the *untouched* query after the delta
  (must be a pure cache hit) vs serving the *touched* query (one
  bounded rebuild);
* **differential law** — both queries' full answer lists after every
  delta equal a from-scratch store's.

Run under pytest (``pytest benchmarks/bench_mutations.py``) for the
full sweep, or standalone (the CI mutation-smoke job)::

    python benchmarks/bench_mutations.py --quick

which exercises both available engines and exits non-zero on any law
violation or on a delta that rebuilt an untouched artifact.  (Timing
is reported but not gated — correctness gates, noise does not.)

``--wal`` adds the durability sweep (the CI wal-smoke job): per-apply
latency with the write-ahead log attached vs plain (p50/p95), plus
the warm-restart recovery time (reopen + replay + store boot), with
the replayed answers law-checked against the live store's.  Results
append to the repo-root ``BENCH_serving.json`` trajectory.
"""

from __future__ import annotations

import random
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import percentiles, record_serving, report, timed

from repro import Delta, WriteAheadLog
from repro.engine import available_engines, use_engine
from repro.session import ArtifactStore

TOUCHED_QUERY = "Q(x, y, z) :- R(x, y), S(y, z)"
UNTOUCHED_QUERY = "P(u, v, w) :- T(u, v), U(v, w)"
ORDERS = {
    TOUCHED_QUERY: ["x", "y", "z"],
    UNTOUCHED_QUERY: ["u", "v", "w"],
}
ROWS = 4000
DELTAS = 8
DELTA_ROWS = 32


def make_relations(rows: int, seed: int = 7) -> dict:
    rng = random.Random(seed)
    span = max(rows // 2, 4)

    def table() -> set:
        return {
            (rng.randrange(span), rng.randrange(span))
            for _ in range(rows)
        }

    return {"R": table(), "S": table(), "T": table(), "U": table()}


def answers(store: ArtifactStore, query: str) -> list[tuple]:
    access = store.session().access(query, order=ORDERS[query])
    return access.tuples_at(range(len(access)))


def delta_stream(rows: int, count: int, delta_rows: int):
    """Deterministic insert/delete steps touching only relation R."""
    rng = random.Random(99)
    span = max(rows // 2, 4)
    ceiling = span  # fresh values append past the existing domain
    for step in range(count):
        inserts = {
            (ceiling + step, rng.randrange(span))
            for _ in range(delta_rows)
        }
        deletes = {
            (rng.randrange(span), rng.randrange(span))
            for _ in range(delta_rows // 2)
        }
        yield Delta(inserts={"R": inserts}, deletes={"R": deletes})


def run_engine(engine: str, rows: int, deltas: int, delta_rows: int):
    """(table row, failures) for one engine's mutation sweep."""
    failures: list[str] = []
    relations = make_relations(rows)
    with use_engine(engine):
        store = ArtifactStore(
            {name: set(tuples) for name, tuples in relations.items()},
            engine=engine,
        )
        # Warm both queries, then mutate only R: the T/U artifacts
        # must survive every delta untouched.
        answers(store, TOUCHED_QUERY)
        untouched_before = answers(store, UNTOUCHED_QUERY)
        current = {
            name: set(rel.tuples)
            for name, rel in store.database.relations.items()
        }
        apply_seconds = 0.0
        rebuild_seconds = 0.0
        warm_seconds = 0.0
        for delta in delta_stream(rows, deltas, delta_rows):
            current["R"] = (current["R"] - delta.deletes["R"]) | (
                delta.inserts["R"]
            )
            _, seconds = timed(store.apply, delta)
            apply_seconds += seconds
            # The from-scratch competitor pays encode + preprocessing.
            def rebuild():
                fresh = ArtifactStore(
                    {name: set(rows_) for name, rows_ in current.items()},
                    engine=engine,
                )
                return answers(fresh, TOUCHED_QUERY)
            scratch, seconds = timed(rebuild)
            rebuild_seconds += seconds
            live = answers(store, TOUCHED_QUERY)
            if live != scratch:
                failures.append(
                    f"{engine}: incremental != rebuild after {delta!r}"
                )
            builds_before = store.stats.artifact_builds
            untouched_live, seconds = timed(
                answers, store, UNTOUCHED_QUERY
            )
            warm_seconds += seconds
            if store.stats.artifact_builds != builds_before:
                failures.append(
                    f"{engine}: delta on R rebuilt an untouched "
                    "T/U artifact"
                )
            if untouched_live != untouched_before:
                failures.append(
                    f"{engine}: untouched answers changed under a "
                    "delta on R"
                )
        stats = store.cache_stats()
        if stats["artifacts_carried"] == 0:
            failures.append(f"{engine}: no artifact was ever carried")
        table_row = [
            engine,
            f"|D|={4 * rows}",
            f"{deltas}x{delta_rows}",
            f"{apply_seconds / deltas * 1e3:.1f} ms",
            f"{rebuild_seconds / deltas * 1e3:.1f} ms",
            f"{rebuild_seconds / max(apply_seconds, 1e-9):.1f}x",
            f"{warm_seconds / deltas * 1e3:.2f} ms",
            str(stats["incremental_encodes"]),
            str(stats["artifacts_carried"]),
            str(stats["artifacts_invalidated"]),
        ]
    return table_row, failures, stats


def run_wal_engine(
    engine: str,
    rows: int,
    deltas: int,
    delta_rows: int,
    wal_dir: Path,
):
    """One engine's durability sweep: apply latency with and without
    the WAL, warm-restart recovery time, and the replay law."""
    failures: list[str] = []
    relations = make_relations(rows)
    stream = list(delta_stream(rows, deltas, delta_rows))
    with use_engine(engine):
        plain = ArtifactStore(
            {name: set(tuples) for name, tuples in relations.items()},
            engine=engine,
        )
        answers(plain, TOUCHED_QUERY)
        plain_samples = [timed(plain.apply, d)[1] for d in stream]

        wal_path = wal_dir / f"bench_{engine}.wal"
        wal = WriteAheadLog(wal_path)
        database, version = wal.recover(
            {name: set(tuples) for name, tuples in relations.items()},
            seed=True,
        )
        walled = ArtifactStore(
            database, engine=engine, db_version=version, wal=wal
        )
        answers(walled, TOUCHED_QUERY)
        wal_samples = [timed(walled.apply, d)[1] for d in stream]
        live = answers(walled, TOUCHED_QUERY)
        live_version = walled.db_version
        wal_records = wal.last_seq
        wal.close()

        def recover() -> ArtifactStore:
            reopened = WriteAheadLog(wal_path)
            state, state_version = reopened.recover()
            recovered = ArtifactStore(
                state,
                engine=engine,
                db_version=state_version,
                wal=reopened,
            )
            reopened.close()
            return recovered

        recovered, recovery_seconds = timed(recover)
        if recovered.db_version != live_version:
            failures.append(
                f"{engine}: recovery landed at db_version "
                f"{recovered.db_version}, live store at {live_version}"
            )
        if answers(recovered, TOUCHED_QUERY) != live:
            failures.append(
                f"{engine}: replayed answers differ from the live "
                "store's"
            )
    plain_stats = percentiles(plain_samples)
    wal_stats = percentiles(wal_samples)
    entry = {
        "benchmark": "wal_mutations",
        "engine": engine,
        "database_rows": 4 * rows,
        "deltas": deltas,
        "delta_rows": delta_rows,
        "apply_plain": plain_stats,
        "apply_wal": wal_stats,
        "wal_overhead_p50_us": wal_stats["p50_us"]
        - plain_stats["p50_us"],
        "recovery_ms": round(recovery_seconds * 1e3, 2),
        "wal_records": wal_records,
    }
    table_row = [
        engine,
        f"|D|={4 * rows}",
        f"{deltas}x{delta_rows}",
        f"{plain_stats['p50_us']} / {plain_stats['p95_us']} us",
        f"{wal_stats['p50_us']} / {wal_stats['p95_us']} us",
        f"{entry['wal_overhead_p50_us']} us",
        f"{entry['recovery_ms']} ms",
        str(wal_records),
    ]
    return table_row, failures, entry


def run_wal(rows: int, deltas: int, delta_rows: int):
    """The durability sweep over every engine; records each engine's
    measurement into the BENCH_serving.json trajectory."""
    table_rows = []
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-wal-bench-") as tmp:
        for engine in available_engines():
            row, engine_failures, entry = run_wal_engine(
                engine, rows, deltas, delta_rows, Path(tmp)
            )
            table_rows.append(row)
            failures.extend(engine_failures)
            if not engine_failures:
                record_serving(entry)
    return table_rows, failures


def run(rows: int, deltas: int, delta_rows: int):
    table_rows = []
    failures: list[str] = []
    for engine in available_engines():
        row, engine_failures, _stats = run_engine(
            engine, rows, deltas, delta_rows
        )
        table_rows.append(row)
        failures.extend(engine_failures)
    return table_rows, failures


def test_incremental_maintenance(benchmark):
    table_rows, failures = run(ROWS, DELTAS, DELTA_ROWS)
    report(
        "mutations",
        "Live updates: store.apply(delta) vs from-scratch rebuild "
        f"({DELTAS} deltas on R, untouched query on T/U)",
        [
            "engine",
            "database",
            "deltas",
            "apply",
            "rebuild",
            "speedup",
            "warm re-access",
            "incr encodes",
            "carried",
            "invalidated",
        ],
        table_rows,
    )
    assert not failures, failures[:5]

    store = ArtifactStore(make_relations(ROWS))
    answers(store, TOUCHED_QUERY)
    deltas = list(delta_stream(ROWS, 2, DELTA_ROWS))
    benchmark(store.apply, deltas[0])


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (the CI mutation-smoke job)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes; law-check incremental vs rebuild on both "
        "engines and exit non-zero on any violation",
    )
    parser.add_argument(
        "--wal",
        action="store_true",
        help="also run the durability sweep: apply latency with the "
        "write-ahead log vs plain, warm-restart recovery time, and "
        "the replay law (appends to BENCH_serving.json)",
    )
    args = parser.parse_args(argv)
    rows, deltas, delta_rows = (
        (600, 4, 8) if args.quick else (ROWS, DELTAS, DELTA_ROWS)
    )

    table_rows, failures = run(rows, deltas, delta_rows)
    for row in table_rows:
        print(
            f"{row[0]}: apply {row[3]} vs rebuild {row[4]} "
            f"({row[5]} speedup), warm re-access {row[6]}, "
            f"{row[7]} incremental encode(s), {row[8]} carried / "
            f"{row[9]} invalidated"
        )
    if args.wal:
        wal_rows, wal_failures = run_wal(rows, deltas, delta_rows)
        failures.extend(wal_failures)
        for row in wal_rows:
            print(
                f"{row[0]}: apply p50/p95 {row[3]} plain vs "
                f"{row[4]} with wal ({row[5]} overhead at p50), "
                f"warm restart {row[6]}, {row[7]} wal record(s)"
            )
    for failure in failures[:10]:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("mutation smoke: " + ("FAIL" if failures else "OK"))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
