"""Shared utilities for the experiment benchmarks.

Each ``bench_e*.py`` file regenerates one experiment of DESIGN.md §4: it
prints a table (and writes it under ``benchmarks/out/``) with the paper's
claimed exponent/shape next to the measured one, and registers at least
one ``pytest-benchmark`` timing for the experiment's key operation.

Every report records the active execution engine (``python`` /
``numpy``, see :mod:`repro.engine`): the table header names it, and a
machine-readable ``<name>.<engine>.json`` sidecar is written next to the
``.txt`` table so runs under ``REPRO_ENGINE=python`` and
``REPRO_ENGINE=numpy`` can be diffed to track the speedup.

Absolute times are CPython times and are *not* comparable to the paper's
word-RAM model; the meaningful outputs are the fitted exponents (log-log
slopes over a geometric size sweep) and who-wins comparisons.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: Repo-root serving-performance trajectory (see :func:`record_serving`).
SERVING_TRAJECTORY = Path(__file__).parent.parent / "BENCH_serving.json"


def active_engine() -> str:
    """Name of the execution engine benchmarks are running under."""
    try:
        from repro.engine import get_engine

        return get_engine().name
    except Exception:  # pragma: no cover - repro not importable
        return "unknown"


def timed(callable_, *args, **kwargs):
    """Run ``callable_`` once, returning ``(result, seconds)``."""
    start = time.perf_counter()
    result = callable_(*args, **kwargs)
    return result, time.perf_counter() - start


def fit_exponent(sizes, seconds) -> float:
    """Least-squares slope of log(seconds) against log(size).

    The empirical analogue of the ``|D|^ι`` exponent. Noise-sensitive for
    very fast operations; sweep sizes are chosen so each point takes at
    least a few milliseconds.
    """
    if len(sizes) < 2:
        raise ValueError("need at least two sweep points")
    xs = [math.log(s) for s in sizes]
    ys = [math.log(max(t, 1e-9)) for t in seconds]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    covariance = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    )
    variance = sum((x - mean_x) ** 2 for x in xs)
    return covariance / variance


def median_seconds(callable_, repeats: int = 5) -> float:
    """Median wall-clock time of ``repeats`` runs (for fast operations)."""
    times = []
    for _ in range(repeats):
        _, seconds = timed(callable_)
        times.append(seconds)
    times.sort()
    return times[len(times) // 2]


def format_table(title: str, headers: list[str], rows: list[list]) -> str:
    widths = [
        max([len(str(h))] + [len(str(row[i])) for row in rows])
        for i, h in enumerate(headers)
    ]
    lines = [title, ""]
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                str(cell).ljust(w) for cell, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def report(name: str, title: str, headers: list[str], rows: list[list]):
    """Print the experiment table and persist it under benchmarks/out/.

    The active engine is stamped into the table title, the ``.txt``
    artifact, and a per-engine ``.json`` sidecar.
    """
    engine = active_engine()
    table = format_table(f"{title} [engine={engine}]", headers, rows)
    print("\n" + table + "\n")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(table + "\n")
    payload = {
        "name": name,
        "title": title,
        "engine": engine,
        "headers": headers,
        "rows": rows,
    }
    (OUT_DIR / f"{name}.{engine}.json").write_text(
        json.dumps(payload, indent=2, default=str) + "\n"
    )
    return table


def percentiles(samples: list[float]) -> dict:
    """p50/p95/p99 of ``samples`` (seconds), in microseconds."""
    ordered = sorted(samples)

    def at(q: float) -> float:
        index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
        return ordered[index] * 1e6

    return {
        "p50_us": round(at(0.50)),
        "p95_us": round(at(0.95)),
        "p99_us": round(at(0.99)),
    }


def record_serving(entry: dict, path: Path | None = None) -> None:
    """Append one serving measurement to ``BENCH_serving.json``.

    The repo-root file is a *trajectory*: a JSON list of measurement
    records (p50/p95/p99 latency, saturation throughput, worker RSS)
    appended across runs so serving regressions stay visible across
    re-anchors.  Absolute numbers are only comparable on comparable
    hosts, so every record carries the engine and the CPU count it was
    measured under.
    """
    target = path or SERVING_TRAJECTORY
    try:
        history = json.loads(target.read_text())
        if not isinstance(history, list):
            history = []
    except (OSError, ValueError):
        history = []
    entry = dict(entry)
    entry.setdefault(
        "recorded_at",
        time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    )
    entry.setdefault("engine", active_engine())
    entry.setdefault("cpus", os.cpu_count())
    history.append(entry)
    target.write_text(
        json.dumps(history, indent=2, default=str) + "\n"
    )
