"""Process-parallel serving — latency percentiles and saturation.

The perf claim of the process tier: with the shared-memory artifact
plane, ``--procs N`` serving scales saturation throughput with CPU
cores while aggregate worker RSS grows *sub-linearly* in worker count
(the encoded database and counting forests exist once, every worker
maps them).  Measured here, per serving mode (threads / procs /
sharded):

* **latency percentiles** — p50/p95/p99 of warm single-client
  ``access`` round-trips;
* **saturation throughput** — a client-count ladder; the best rung is
  the saturation point (on a 1-CPU host the ladder is flat and the
  recorded numbers say so — the *record* is honest, the 2x claim needs
  cores);
* **zero-copy evidence** — plane segment/attach counters and per-pid
  RSS, showing one physical copy however many workers attach.

Every run appends a record to the repo-root ``BENCH_serving.json``
trajectory (:func:`harness.record_serving`), so serving regressions
stay visible across re-anchors.  Correctness gates: every mode's
answers are verified against a local connection before timing counts.

Run standalone (the CI multi-process smoke job)::

    python benchmarks/bench_procs.py --quick

or under pytest (``pytest benchmarks/bench_procs.py``) for the
pytest-benchmark timing of the warm procs-mode round-trip.
"""

from __future__ import annotations

import os
import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_server import (
    ORDERS,
    QUERY,
    client_workload,
    expected_response,
    post_op,
    star_relations,
)
from harness import percentiles, record_serving, timed

from repro.facade import connect
from repro.server.http import ReproServer

ROWS = 120
FANOUT = 2
LATENCY_SAMPLES = 60
PER_CLIENT = 20
LADDER = (2, 4, 8)


def rss_kb(pid: int) -> int | None:
    try:
        with open(f"/proc/{pid}/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def verify_mode(server: ReproServer, local) -> list[str]:
    """Spot-check every op family against the local connection."""
    failures = []
    for request in client_workload(0, 6):
        response = post_op(server.url, request)
        if not response.get("ok"):
            failures.append(f"failed: {response}")
            continue
        got = (
            response["result"]["count"]
            if request["op"] == "count"
            else response["result"]["answers"]
        )
        expected = expected_response(local, request)
        if got != expected:
            failures.append(
                f"{request['op']}: {got!r} != {expected!r}"
            )
    return failures


def measure_latency(server: ReproServer) -> dict:
    warm = {
        "op": "access",
        "query": QUERY,
        "order": list(ORDERS[0]),
        "indices": [0, -1],
    }
    post_op(server.url, warm)  # pay preprocessing once
    samples = [
        timed(post_op, server.url, warm)[1]
        for _ in range(LATENCY_SAMPLES)
    ]
    return percentiles(samples)


def run_fleet(
    server: ReproServer, clients: int, per_client: int
) -> tuple[float, int]:
    """(wall seconds, failed request count) for one fleet rung."""
    failures = [0]
    lock = threading.Lock()

    def client(index: int) -> None:
        for request in client_workload(index, per_client):
            try:
                response = post_op(server.url, request)
                ok = bool(response.get("ok"))
            except Exception:  # noqa: BLE001 (counted, gated below)
                ok = False
            if not ok:
                with lock:
                    failures[0] += 1

    def fleet() -> None:
        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    _, wall = timed(fleet)
    return wall, failures[0]


def measure_mode(
    label: str,
    relations: dict,
    ladder: tuple[int, ...],
    per_client: int,
    **server_kwargs,
) -> tuple[dict, list[str]]:
    """One serving mode: verify, then latency + throughput ladder."""
    local = connect(relations)
    with ReproServer(relations, **server_kwargs) as server:
        failures = verify_mode(server, local)
        latency = measure_latency(server)
        rungs = []
        for clients in ladder:
            wall, failed = run_fleet(server, clients, per_client)
            if failed:
                failures.append(
                    f"{label}: {failed} failed requests at "
                    f"{clients} clients"
                )
            rungs.append(
                {
                    "clients": clients,
                    "requests": clients * per_client,
                    "wall_s": round(wall, 3),
                    "rps": round(
                        clients * per_client / max(wall, 1e-9)
                    ),
                }
            )
        entry = {
            "mode": label,
            "workers": server.workers,
            "database_rows": sum(
                len(r) for r in relations.values()
            ),
            "latency": latency,
            "ladder": rungs,
            "saturation_rps": max(r["rps"] for r in rungs),
            "rss_kb": {"primary": rss_kb(os.getpid())},
        }
        backend = getattr(server, "_backend", None)
        if backend is not None:
            entry["rss_kb"]["workers"] = [
                rss_kb(pid) for pid in backend.pool.worker_pids()
            ]
            plane = backend.plane.counters.as_dict()
            entry["plane"] = {
                "segments_created": plane["segments_created"],
                "bytes_published": plane["bytes_published"],
                "attaches": plane["attaches"],
                "unlinks": plane["unlinks"],
            }
            entry["pool"] = backend.pool.counters()
    if server.clean_shutdown is False:
        failures.append(f"{label}: unclean drain")
    return entry, failures


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (the CI multi-process smoke job)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, short ladder; verify answers in every "
        "mode and exit non-zero on any mismatch or unclean drain",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=None,
        help="worker process count (default: 2 quick, 4 full)",
    )
    args = parser.parse_args(argv)
    rows, per_client, ladder = (
        (40, 8, (2, 4)) if args.quick else (ROWS, PER_CLIENT, LADDER)
    )
    procs = args.procs or (2 if args.quick else 4)
    relations = star_relations(rows, FANOUT)

    modes = [
        ("threads", {"workers": 4}),
        ("procs", {"procs": procs, "default_query": QUERY}),
        # The workload's orders all lead with x, so partition on x
        # (the default would be the advisor's preferred leading
        # variable, which need not match the client workload).
        (
            "sharded",
            {
                "shards": 2,
                "default_query": QUERY,
                "shard_variable": "x",
            },
        ),
    ]
    entries, failures = [], []
    for label, kwargs in modes:
        entry, mode_failures = measure_mode(
            label, relations, ladder, per_client, **kwargs
        )
        entries.append(entry)
        failures.extend(mode_failures)
        workers = entry.get("rss_kb", {}).get("workers")
        extra = (
            f"  worker RSS: {workers} kB"
            if workers
            else ""
        )
        print(
            f"{label:8s} workers={entry['workers']} "
            f"p50={entry['latency']['p50_us']} us "
            f"p99={entry['latency']['p99_us']} us "
            f"saturation={entry['saturation_rps']} req/s{extra}"
        )

    record_serving(
        {
            "bench": "bench_procs",
            "quick": bool(args.quick),
            "modes": entries,
        }
    )
    by_mode = {entry["mode"]: entry for entry in entries}
    speedup = by_mode["procs"]["saturation_rps"] / max(
        by_mode["threads"]["saturation_rps"], 1
    )
    print(
        f"procs/threads saturation ratio: {speedup:.2f}x "
        f"({os.cpu_count()} cpu(s) on this host)"
    )
    for failure in failures[:10]:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("multi-process smoke: " + ("FAIL" if failures else "OK"))
    return 1 if failures else 0


def test_procs_round_trip(benchmark):
    relations = star_relations(40, FANOUT)
    local = connect(relations)
    with ReproServer(
        relations, procs=2, default_query=QUERY
    ) as server:
        assert verify_mode(server, local) == []
        warm = {
            "op": "access",
            "query": QUERY,
            "order": list(ORDERS[0]),
            "indices": [0, -1],
        }
        post_op(server.url, warm)
        benchmark(post_op, server.url, warm)
    assert server.clean_shutdown is True


if __name__ == "__main__":
    sys.exit(main())
