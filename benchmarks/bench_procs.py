"""Process-parallel serving — latency percentiles and saturation.

The perf claim of the process tier: with the shared-memory artifact
plane, ``--procs N`` serving scales saturation throughput with CPU
cores while aggregate worker RSS grows *sub-linearly* in worker count
(the encoded database and counting forests exist once, every worker
maps them).  Measured here, per serving mode (threads / procs /
sharded):

* **latency percentiles** — p50/p95/p99 of warm single-client
  ``access`` round-trips;
* **saturation throughput** — a client-count ladder; the best rung is
  the saturation point (on a 1-CPU host the ladder is flat and the
  recorded numbers say so — the *record* is honest, the 2x claim needs
  cores);
* **zero-copy evidence** — plane segment/attach counters and per-pid
  RSS, showing one physical copy however many workers attach;
* **front sweep** — an open-loop concurrent keep-alive connection
  ladder over the threaded and async fronts at equal workers and
  queue depth (per-rung p50/p95/p99 + throughput), with the async
  ladder running 4x higher than the threaded one — the `--async`
  claim that one event loop multiplexes what would otherwise cost a
  thread per connection.

Every run appends a record to the repo-root ``BENCH_serving.json``
trajectory (:func:`harness.record_serving`), so serving regressions
stay visible across re-anchors.  Correctness gates: every mode's
answers are verified against a local connection before timing counts.

Run standalone (the CI multi-process smoke job)::

    python benchmarks/bench_procs.py --quick

or under pytest (``pytest benchmarks/bench_procs.py``) for the
pytest-benchmark timing of the warm procs-mode round-trip.
"""

from __future__ import annotations

import http.client
import json
import os
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_server import (
    ORDERS,
    QUERY,
    client_workload,
    expected_response,
    post_op,
    star_relations,
)
from harness import percentiles, record_serving, timed

from repro.facade import connect
from repro.server.aio import AsyncReproServer
from repro.server.http import ReproServer

ROWS = 120
FANOUT = 2
LATENCY_SAMPLES = 60
PER_CLIENT = 20
LADDER = (2, 4, 8)
FRONT_WORKERS = 4


def rss_kb(pid: int) -> int | None:
    try:
        with open(f"/proc/{pid}/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def verify_mode(server: ReproServer, local) -> list[str]:
    """Spot-check every op family against the local connection."""
    failures = []
    for request in client_workload(0, 6):
        response = post_op(server.url, request)
        if not response.get("ok"):
            failures.append(f"failed: {response}")
            continue
        got = (
            response["result"]["count"]
            if request["op"] == "count"
            else response["result"]["answers"]
        )
        expected = expected_response(local, request)
        if got != expected:
            failures.append(
                f"{request['op']}: {got!r} != {expected!r}"
            )
    return failures


def measure_latency(server: ReproServer) -> dict:
    warm = {
        "op": "access",
        "query": QUERY,
        "order": list(ORDERS[0]),
        "indices": [0, -1],
    }
    post_op(server.url, warm)  # pay preprocessing once
    samples = [
        timed(post_op, server.url, warm)[1]
        for _ in range(LATENCY_SAMPLES)
    ]
    return percentiles(samples)


def run_fleet(
    server: ReproServer, clients: int, per_client: int
) -> tuple[float, int]:
    """(wall seconds, failed request count) for one fleet rung."""
    failures = [0]
    lock = threading.Lock()

    def client(index: int) -> None:
        for request in client_workload(index, per_client):
            try:
                response = post_op(server.url, request)
                ok = bool(response.get("ok"))
            except Exception:  # noqa: BLE001 (counted, gated below)
                ok = False
            if not ok:
                with lock:
                    failures[0] += 1

    def fleet() -> None:
        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    _, wall = timed(fleet)
    return wall, failures[0]


def measure_mode(
    label: str,
    relations: dict,
    ladder: tuple[int, ...],
    per_client: int,
    **server_kwargs,
) -> tuple[dict, list[str]]:
    """One serving mode: verify, then latency + throughput ladder."""
    local = connect(relations)
    with ReproServer(relations, **server_kwargs) as server:
        failures = verify_mode(server, local)
        latency = measure_latency(server)
        rungs = []
        for clients in ladder:
            wall, failed = run_fleet(server, clients, per_client)
            if failed:
                failures.append(
                    f"{label}: {failed} failed requests at "
                    f"{clients} clients"
                )
            rungs.append(
                {
                    "clients": clients,
                    "requests": clients * per_client,
                    "wall_s": round(wall, 3),
                    "rps": round(
                        clients * per_client / max(wall, 1e-9)
                    ),
                }
            )
        entry = {
            "mode": label,
            "workers": server.workers,
            "database_rows": sum(
                len(r) for r in relations.values()
            ),
            "latency": latency,
            "ladder": rungs,
            "saturation_rps": max(r["rps"] for r in rungs),
            "rss_kb": {"primary": rss_kb(os.getpid())},
        }
        backend = getattr(server, "_backend", None)
        if backend is not None:
            entry["rss_kb"]["workers"] = [
                rss_kb(pid) for pid in backend.pool.worker_pids()
            ]
            plane = backend.plane.counters.as_dict()
            entry["plane"] = {
                "segments_created": plane["segments_created"],
                "bytes_published": plane["bytes_published"],
                "attaches": plane["attaches"],
                "unlinks": plane["unlinks"],
            }
            entry["pool"] = backend.pool.counters()
    if server.clean_shutdown is False:
        failures.append(f"{label}: unclean drain")
    return entry, failures


def run_front_rung(server, connections: int, per_connection: int) -> dict:
    """One open-loop rung: N concurrent keep-alive connections, each
    issuing its workload sequentially over one reused socket."""
    samples: list[float] = []
    failures = [0]
    lock = threading.Lock()

    def connection_client(index: int) -> None:
        conn = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
        mine: list[float] = []
        failed = 0
        try:
            for request in client_workload(index, per_connection):
                body = json.dumps(request).encode("utf-8")
                begin = time.perf_counter()
                try:
                    conn.request(
                        "POST",
                        "/v1/session",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    reply = conn.getresponse()
                    payload = json.loads(reply.read().decode("utf-8"))
                    ok = reply.status == 200 and bool(payload.get("ok"))
                except Exception:  # noqa: BLE001 (counted, gated below)
                    ok = False
                    conn.close()
                    conn = http.client.HTTPConnection(
                        server.host, server.port, timeout=30
                    )
                if ok:
                    mine.append(time.perf_counter() - begin)
                else:
                    failed += 1
        finally:
            conn.close()
        with lock:
            samples.extend(mine)
            failures[0] += failed

    def fleet() -> None:
        threads = [
            threading.Thread(target=connection_client, args=(index,))
            for index in range(connections)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    _, wall = timed(fleet)
    total = connections * per_connection
    rung = {
        "connections": connections,
        "requests": total,
        "wall_s": round(wall, 3),
        "rps": round((total - failures[0]) / max(wall, 1e-9)),
        "failures": failures[0],
    }
    rung.update(
        percentiles(samples)
        if samples
        else {"p50_us": None, "p95_us": None, "p99_us": None}
    )
    return rung


def measure_front(
    label: str,
    factory,
    relations: dict,
    ladder: tuple[int, ...],
    per_connection: int,
) -> tuple[dict, list[str]]:
    """One serving front at fixed workers: verify answers, then sweep
    concurrent keep-alive connections (the async front's ladder runs
    4x higher than the threaded one — the claim under test)."""
    local = connect(relations)
    server = factory().start()
    failures: list[str] = []
    try:
        failures.extend(verify_mode(server, local))
        rungs = []
        for connections in ladder:
            rung = run_front_rung(server, connections, per_connection)
            if rung["failures"]:
                failures.append(
                    f"front {label}: {rung['failures']} failed "
                    f"requests at {connections} connections"
                )
            rungs.append(rung)
        entry = {
            "front": label,
            "workers": server.workers,
            "ladder": rungs,
            "saturation_rps": max(r["rps"] for r in rungs),
            "max_clean_connections": max(
                (
                    r["connections"]
                    for r in rungs
                    if not r["failures"]
                ),
                default=0,
            ),
        }
    finally:
        server.shutdown()
    if server.clean_shutdown is False:
        failures.append(f"front {label}: unclean drain")
    return entry, failures


def measure_fronts(
    relations: dict, quick: bool
) -> tuple[list[dict], list[str]]:
    """Threaded vs async front at equal workers and queue depth."""
    threaded_ladder, async_ladder, per_connection = (
        ((2, 4, 8), (2, 4, 8, 16, 32), 5)
        if quick
        else ((8, 16, 32), (8, 16, 32, 64, 128), PER_CLIENT)
    )
    # Size admission so the top async rung fits: the sweep measures
    # connection multiplexing, not 503 backpressure (bench_server and
    # tests/test_aio.py cover the overload path).
    queue_depth = max(16, async_ladder[-1] // FRONT_WORKERS)
    fronts_spec = (
        (
            "threads",
            threaded_ladder,
            lambda: ReproServer(
                relations,
                workers=FRONT_WORKERS,
                queue_depth=queue_depth,
            ),
        ),
        (
            "async",
            async_ladder,
            lambda: AsyncReproServer(
                relations,
                workers=FRONT_WORKERS,
                queue_depth=queue_depth,
                max_connections=async_ladder[-1] + 8,
            ),
        ),
    )
    entries, failures = [], []
    for label, ladder, factory in fronts_spec:
        entry, front_failures = measure_front(
            label, factory, relations, ladder, per_connection
        )
        entries.append(entry)
        failures.extend(front_failures)
        top = entry["ladder"][-1]
        print(
            f"front {label:8s} workers={entry['workers']} "
            f"top rung: {top['connections']} keep-alive conns "
            f"p50={top['p50_us']} us p99={top['p99_us']} us "
            f"{top['rps']} req/s "
            f"saturation={entry['saturation_rps']} req/s"
        )
    sustained = {
        e["front"]: e["max_clean_connections"] for e in entries
    }
    if sustained["async"] < 4 * sustained["threads"]:
        failures.append(
            f"async front sustained {sustained['async']} keep-alive "
            f"connections, < 4x the threaded front's "
            f"{sustained['threads']}"
        )
    else:
        print(
            f"async/threads sustained keep-alive connections: "
            f"{sustained['async']}/{sustained['threads']} "
            f"({sustained['async'] / max(sustained['threads'], 1):.1f}x)"
        )
    return entries, failures


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (the CI multi-process smoke job)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, short ladder; verify answers in every "
        "mode and exit non-zero on any mismatch or unclean drain",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=None,
        help="worker process count (default: 2 quick, 4 full)",
    )
    args = parser.parse_args(argv)
    rows, per_client, ladder = (
        (40, 8, (2, 4)) if args.quick else (ROWS, PER_CLIENT, LADDER)
    )
    procs = args.procs or (2 if args.quick else 4)
    relations = star_relations(rows, FANOUT)

    modes = [
        ("threads", {"workers": 4}),
        ("procs", {"procs": procs, "default_query": QUERY}),
        # The workload's orders all lead with x, so partition on x
        # (the default would be the advisor's preferred leading
        # variable, which need not match the client workload).
        (
            "sharded",
            {
                "shards": 2,
                "default_query": QUERY,
                "shard_variable": "x",
            },
        ),
    ]
    entries, failures = [], []
    for label, kwargs in modes:
        entry, mode_failures = measure_mode(
            label, relations, ladder, per_client, **kwargs
        )
        entries.append(entry)
        failures.extend(mode_failures)
        workers = entry.get("rss_kb", {}).get("workers")
        extra = (
            f"  worker RSS: {workers} kB"
            if workers
            else ""
        )
        print(
            f"{label:8s} workers={entry['workers']} "
            f"p50={entry['latency']['p50_us']} us "
            f"p99={entry['latency']['p99_us']} us "
            f"saturation={entry['saturation_rps']} req/s{extra}"
        )

    front_entries, front_failures = measure_fronts(
        relations, bool(args.quick)
    )
    failures.extend(front_failures)

    record_serving(
        {
            "bench": "bench_procs",
            "quick": bool(args.quick),
            "modes": entries,
            "fronts": front_entries,
        }
    )
    by_mode = {entry["mode"]: entry for entry in entries}
    speedup = by_mode["procs"]["saturation_rps"] / max(
        by_mode["threads"]["saturation_rps"], 1
    )
    print(
        f"procs/threads saturation ratio: {speedup:.2f}x "
        f"({os.cpu_count()} cpu(s) on this host)"
    )
    for failure in failures[:10]:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("multi-process smoke: " + ("FAIL" if failures else "OK"))
    return 1 if failures else 0


def test_procs_round_trip(benchmark):
    relations = star_relations(40, FANOUT)
    local = connect(relations)
    with ReproServer(
        relations, procs=2, default_query=QUERY
    ) as server:
        assert verify_mode(server, local) == []
        warm = {
            "op": "access",
            "query": QUERY,
            "order": list(ORDERS[0]),
            "indices": [0, -1],
        }
        post_op(server.url, warm)
        benchmark(post_op, server.url, warm)
    assert server.clean_shutdown is True


if __name__ == "__main__":
    sys.exit(main())
