"""E8 — Theorem 33: self-joins do not change direct-access complexity.

We run the *entire* Section 6 pipeline (Q with self-joins → colored
version → clone databases → Vandermonde counting → access for Q^sf) and
compare its per-access cost growth against a native engine on the
self-join-free version: the pipeline must track the native engine up to
polylog factors (its extra cost is a constant number of counting calls,
each logarithmic).
"""

import random

from harness import median_seconds, report, timed

from repro.core.access import DirectAccess
from repro.core.selfjoins import SelfJoinFreeAccess
from repro.data.database import Database
from repro.query.parser import parse_query
from repro.query.transforms import self_join_free_version
from repro.query.variable_order import VariableOrder

SIZES = [20, 40, 80]


def build_database(rows: int, seed: int = 0) -> Database:
    rng = random.Random(seed)
    return Database(
        {
            "R__x": {(rng.randrange(rows),) for _ in range(rows)},
            "R__y": {(rng.randrange(rows),) for _ in range(rows)},
        }
    )


def test_e8_selfjoin_pipeline(benchmark):
    query = parse_query("Q(x, y) :- R(x), R(y)")
    order = VariableOrder(["x", "y"])
    rows = []
    pipeline_access_times = []
    native_access_times = []
    for size in SIZES:
        database = build_database(size)
        pipeline, pipeline_prep = timed(
            SelfJoinFreeAccess, query, order, database
        )
        native, native_prep = timed(
            DirectAccess,
            self_join_free_version(query),
            order,
            database,
        )
        assert len(pipeline) == len(native)
        sample = range(0, len(native), max(1, len(native) // 25))

        def run(engine):
            def inner():
                for index in sample:
                    engine.tuple_at(index)

            return median_seconds(inner, repeats=3) / max(
                1, len(list(sample))
            )

        pipeline_per_access = run(pipeline)
        native_per_access = run(native)
        pipeline_access_times.append(pipeline_per_access)
        native_access_times.append(native_per_access)
        for index in sample:
            assert pipeline.tuple_at(index) == native.tuple_at(index)
        rows.append(
            [
                len(database),
                f"{pipeline_prep * 1e3:.0f} ms",
                f"{pipeline_per_access * 1e6:.0f} us",
                f"{native_prep * 1e3:.1f} ms",
                f"{native_per_access * 1e6:.1f} us",
            ]
        )

    pipeline_growth = pipeline_access_times[-1] / max(
        pipeline_access_times[0], 1e-9
    )
    native_growth = native_access_times[-1] / max(
        native_access_times[0], 1e-9
    )
    rows.append(
        [
            "access growth (4x data)",
            f"{pipeline_growth:.1f}x",
            "",
            f"{native_growth:.1f}x",
            "",
        ]
    )
    report(
        "e8_selfjoins",
        "E8: Theorem 33 pipeline vs native engine on Q(x,y):-R(x),R(y)",
        [
            "|D|",
            "pipeline prep",
            "pipeline access",
            "native prep",
            "native access",
        ],
        rows,
    )
    # Polylog claim: access cost growth over 4x data stays mild for the
    # pipeline, like the native engine's (no polynomial divergence).
    assert pipeline_growth < 12

    database = build_database(SIZES[0])
    pipeline = SelfJoinFreeAccess(query, order, database)
    benchmark(pipeline.tuple_at, len(pipeline) // 2)
