"""E9 — Theorem 27: the Zero-Clique reduction is executable and accounted.

Runs the randomized Zero-3-Clique → 2-Set-Intersection reduction on
planted instances, checking (a) it finds a genuine zero-clique, (b) the
number of constructed set-intersection instances matches the paper's
``O(n^{kρ})`` accounting (``intervals^k`` prefixes, O(1) completions
each), and (c) wall-clock comparison against the brute-force baseline the
conjecture says is essentially optimal.
"""

from harness import report, timed

from repro.lowerbounds.zeroclique import (
    MultipartiteInstance,
    ZeroCliqueViaSetIntersection,
    brute_force_zero_clique,
)

N = 10
INTERVALS = 4


def test_e9_reduction_accounting(benchmark):
    rows = []
    found_count = 0
    for seed in range(3):
        instance = MultipartiteInstance.random(
            3, N, weight_bound=60, plant_zero=True, seed=seed
        )
        _, brute_seconds = timed(brute_force_zero_clique, instance)
        reduction = ZeroCliqueViaSetIntersection(
            instance, intervals=INTERVALS, seed=seed + 100
        )
        clique, reduction_seconds = timed(reduction.find_zero_clique)
        if clique is not None:
            assert instance.clique_weight(clique) == 0
            found_count += 1
        rows.append(
            [
                f"seed {seed}",
                "yes" if clique else "no",
                reduction.stats["instances"],
                reduction.stats["queries"],
                f"{reduction_seconds * 1e3:.0f} ms",
                f"{brute_seconds * 1e3:.0f} ms",
            ]
        )

    # Accounting bound: at most intervals^k * O(k) instances.
    max_instances = max(row[2] for row in rows)
    rows.append(
        [
            "instance bound",
            f"<= m^k*(k+2) = {INTERVALS ** 2 * 4}",
            max_instances,
            "",
            "",
            "",
        ]
    )
    report(
        "e9_reductions",
        f"E9: Zero-3-Clique via 2-Set-Intersection (n={N}, m={INTERVALS})",
        [
            "run",
            "found",
            "SI instances",
            "SI queries",
            "reduction time",
            "brute force",
        ],
        rows,
    )
    assert found_count >= 2  # randomized, high success probability
    assert max_instances <= INTERVALS ** 2 * 4

    instance = MultipartiteInstance.random(
        3, 6, weight_bound=25, plant_zero=True, seed=1
    )

    def run_reduction():
        return ZeroCliqueViaSetIntersection(
            instance, intervals=3, seed=2
        ).find_zero_clique()

    benchmark.pedantic(run_reduction, rounds=3, iterations=1)
