"""Tests for counting under prefix constraints (Proposition 35)."""

import pytest

from repro.core.access import DirectAccess
from repro.core.counting import (
    CountingFromDirectAccess,
    DirectAccessFromCounting,
    PrefixConstraint,
)
from repro.errors import OutOfBoundsError
from repro.query.parser import parse_query
from repro.query.variable_order import VariableOrder
from tests.conftest import (
    lex_answers,
    random_database_for,
    random_join_query,
    random_order,
)


def brute_count(answers, constraint: PrefixConstraint) -> int:
    r = constraint.length
    total = 0
    for answer in answers:
        prefix = answer[: r - 1]
        if tuple(prefix) != constraint.exact:
            continue
        if constraint.low <= answer[r - 1] <= constraint.high:
            total += 1
    return total


class TestCountingFromAccess:
    def test_against_brute_force(self, rng):
        for _ in range(25):
            query = random_join_query(rng)
            order = random_order(query, rng)
            db = random_database_for(query, rng, rows=12, domain=3)
            access = DirectAccess(query, order, db)
            counter = CountingFromDirectAccess(access)
            answers = lex_answers(query, db, order)
            domain = sorted(db.domain()) or [0]
            for _ in range(10):
                r = rng.randint(1, len(list(order)))
                exact = tuple(
                    rng.choice(domain) for _ in range(r - 1)
                )
                low = rng.choice(domain)
                high = rng.choice(domain)
                constraint = PrefixConstraint(exact, low, high)
                assert counter.count(constraint) == brute_count(
                    answers, constraint
                )

    def test_empty_interval(self):
        q = parse_query("Q(x) :- R(x)")
        from repro.data.database import Database

        db = Database({"R": {(1,), (2,)}})
        counter = CountingFromDirectAccess(
            DirectAccess(q, VariableOrder(["x"]), db)
        )
        assert counter.count(PrefixConstraint((), 5, 1)) == 0

    def test_first_index_above(self):
        q = parse_query("Q(x) :- R(x)")
        from repro.data.database import Database

        db = Database({"R": {(1,), (3,), (5,)}})
        counter = CountingFromDirectAccess(
            DirectAccess(q, VariableOrder(["x"]), db)
        )
        assert counter.first_index_above((0,)) == 0
        assert counter.first_index_above((3,)) == 1
        assert counter.first_index_above((3,), strict=True) == 2
        assert counter.first_index_above((9,)) == 3


class TestAccessFromCounting:
    def test_roundtrip_equals_original(self, rng):
        for _ in range(15):
            query = random_join_query(rng)
            order = random_order(query, rng)
            db = random_database_for(query, rng, rows=12, domain=3)
            access = DirectAccess(query, order, db)
            counter = CountingFromDirectAccess(access)
            rebuilt = DirectAccessFromCounting(
                counter, len(list(order)), sorted(db.domain())
            )
            assert len(rebuilt) == len(access)
            for i in range(len(access)):
                assert rebuilt.tuple_at(i) == access.tuple_at(i)

    def test_out_of_bounds(self, rng):
        query = random_join_query(rng)
        order = random_order(query, rng)
        db = random_database_for(query, rng)
        counter = CountingFromDirectAccess(
            DirectAccess(query, order, db)
        )
        rebuilt = DirectAccessFromCounting(
            counter, len(list(order)), sorted(db.domain())
        )
        with pytest.raises(OutOfBoundsError):
            rebuilt.tuple_at(len(rebuilt))

    def test_empty_domain(self):
        class ZeroCounter:
            def count(self, constraint):
                return 0

        rebuilt = DirectAccessFromCounting(ZeroCounter(), 2, [])
        assert len(rebuilt) == 0
