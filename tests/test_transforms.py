"""Unit tests for query transforms (Section 6.1 constructions)."""

from repro.query.catalog import running_selfjoin_query
from repro.query.parser import parse_query
from repro.query.transforms import (
    automorphisms,
    colored_version,
    query_structure,
    self_join_free_version,
)


class TestSelfJoinFreeVersion:
    def test_distinct_symbols(self):
        q = running_selfjoin_query()  # R(x), R(y), R(z)
        sf = self_join_free_version(q)
        assert not sf.has_self_joins
        assert len(sf.atoms) == 3

    def test_duplicate_atoms_merge(self):
        q = parse_query("Q(x, y) :- R(x, y), R(x, y)")
        sf = self_join_free_version(q)
        assert len(sf.atoms) == 1

    def test_variables_preserved(self):
        q = running_selfjoin_query()
        assert self_join_free_version(q).variables == q.variables


class TestColoredVersion:
    def test_adds_one_unary_atom_per_variable(self):
        q = parse_query("Q(x, y) :- R(x, y)")
        colored = colored_version(q)
        assert len(colored.atoms) == 1 + 2
        unary = [a for a in colored.atoms if a.arity == 1]
        assert {a.variables[0] for a in unary} == {"x", "y"}

    def test_example_from_section_6(self):
        # Q(x,y) :- R(x), R(y) gets R_x(x), R_y(y) added.
        q = parse_query("Q(x, y) :- R(x), R(y)")
        colored = colored_version(q)
        assert len(colored.atoms) == 4


class TestStructureAndAutomorphisms:
    def test_structure_of_selfjoin_query(self):
        q = running_selfjoin_query()
        structure = query_structure(q)
        assert structure == {"R": {("x",), ("y",), ("z",)}}

    def test_example_37_automorphism_count(self):
        # The paper: 3! automorphisms for Q(x,y,z) :- R(x),R(y),R(z).
        q = running_selfjoin_query()
        assert len(automorphisms(q)) == 6

    def test_example_fixing_prefix(self):
        # aut(A_Q, c) with c on {x}: permutations of {y, z} -> 2.
        q = running_selfjoin_query()
        assert len(automorphisms(q, fixed=("x",))) == 2

    def test_asymmetric_query_has_trivial_automorphisms(self):
        q = parse_query("Q(x, y) :- R(x, y), S(y)")
        assert len(automorphisms(q)) == 1

    def test_path_swap_symmetry(self):
        # R(x,y), R(y,x) swaps x and y.
        q = parse_query("Q(x, y) :- R(x, y), R(y, x)")
        assert len(automorphisms(q)) == 2
