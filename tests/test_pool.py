"""Process-parallel serving: the worker pool and the serving modes.

Spawned worker processes are slow to boot relative to the rest of the
suite, so each test does one boot and checks several laws against it:
identical answers across workers and against an in-process reference,
forest reuse over the plane, crash → respawn → identical answers,
clean drain, and no leaked shared-memory segments afterwards.
"""

from __future__ import annotations

import json
from multiprocessing import shared_memory

import pytest

import repro
from repro.data.database import EncodedDatabase
from repro.data.delta import Delta
from repro.data.flatbuf import database_to_buffers
from repro.errors import OverloadedError, ReadOnlyError
from repro.server import ReproServer, WorkerPool, WorkerSpec
from repro.server.pool import LocalDispatcher, elect_slot
from repro.server.shm import SharedArtifactPlane
from repro.session.protocol import SessionRequest

QUERY = "Q(x, y, z) :- R(x, y), S(y, z)"
RELATIONS = {
    "R": {(i, i % 7) for i in range(50)},
    "S": {(j, j * 2) for j in range(7)},
}


def segment_exists(name: str) -> bool:
    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


def drive(connection):
    """A fixed read workload; the tuple must be mode-independent."""
    view = connection.prepare(QUERY, order=["x", "y", "z"])
    sample = [tuple(view[i]) for i in (0, 5, -1)]
    ranks = view.ranks([view[3], (999, 0, 0)])
    return len(view), sample, ranks, view.median()


class TestDepthAwareDispatch:
    """The election policy, without booting any processes."""

    def test_no_affinity_picks_shallowest(self):
        assert elect_slot([3, 1, 2], capacity=4) == (1, "plain")

    def test_affinity_preferred_while_it_has_room(self):
        # Deeper than a sibling, but not full: locality wins.
        assert elect_slot([0, 3], capacity=4, affinity=1) == (1, "hit")

    def test_full_affinity_spills_to_shallowest(self):
        # The old _checkout would have blocked here; depth-aware
        # dispatch hands the request to an idle sibling instead.
        assert elect_slot([0, 4], capacity=4, affinity=1) == (
            0,
            "spill",
        )

    def test_read_only_spill_prefers_tied_shallowest(self):
        # spill=True: locality only while the preferred queue is as
        # shallow as any — a read-only store makes cache locality
        # cheap to rebuild, so latency wins over affinity.
        assert elect_slot(
            [0, 2], capacity=4, affinity=1, spill=True
        ) == (0, "spill")
        assert elect_slot(
            [2, 2], capacity=4, affinity=1, spill=True
        ) == (1, "hit")

    def test_affinity_wraps_modulo_worker_count(self):
        assert elect_slot([1, 0, 0], capacity=4, affinity=-3) == (
            0,
            "hit",
        )

    def test_full_fleet_rejects(self):
        with pytest.raises(OverloadedError):
            elect_slot([2, 2], capacity=2)
        with pytest.raises(OverloadedError):
            elect_slot([2, 2], capacity=2, affinity=0, spill=True)

    def test_local_dispatcher_bounds_and_counts(self):
        slots = ["a", "b"]
        dispatcher = LocalDispatcher(slots, max_queue_depth=1)
        first = dispatcher.admit()
        second = dispatcher.admit()
        assert {first, second} == {0, 1}
        with pytest.raises(OverloadedError):
            dispatcher.admit()
        counters = dispatcher.counters()
        assert counters["rejections"] == 1
        assert counters["queue_depths"] == [1, 1]
        assert dispatcher.acquire(first) == slots[first]
        dispatcher.release(first)
        dispatcher.release(second)
        assert dispatcher.counters()["queue_depths"] == [0, 0]
        assert dispatcher.admit() in (0, 1)


class TestWorkerPool:
    def test_pool_lifecycle(self):
        """Boot → serve → share forests → crash → respawn → drain."""
        database = EncodedDatabase(RELATIONS)
        flat = database_to_buffers(database)
        assert flat is not None, "database must be flat-buffer encodable"
        manifest, buffers = flat
        plane = SharedArtifactPlane()
        publication = plane.publish("db:0", manifest, buffers)

        def spec_factory(name, index):
            return WorkerSpec(
                name=name,
                plane_prefix=plane.prefix,
                engine="numpy",
                database=publication,
                default_query=QUERY,
            )

        pool = WorkerPool(
            2, spec_factory, plane=plane, health_interval=0
        )
        try:
            request = SessionRequest(
                op="access",
                order=("x", "y", "z"),
                indices=(0, 1, 2, -1),
            ).to_json()
            first = json.loads(pool.execute_json(request, affinity=0))
            second = json.loads(pool.execute_json(request, affinity=1))
            assert first == second

            reference = repro.connect(RELATIONS, engine="numpy")
            view = reference.prepare(QUERY, order=["x", "y", "z"])
            expected = [
                list(view[i]) for i in (0, 1, 2, len(view) - 1)
            ]
            assert first["result"]["answers"] == expected

            count = json.loads(
                pool.execute_json(
                    SessionRequest(
                        op="count", order=("x", "y", "z")
                    ).to_json(),
                    affinity=0,
                )
            )
            assert count["result"]["count"] == len(view)

            # Exactly one worker built the counting forest; the other
            # attached the publication instead of rebuilding.
            stats = pool.stats()
            publishes = sum(
                s["plane"]["forest_publishes"] for s in stats
            )
            fetches = sum(s["plane"]["forest_fetches"] for s in stats)
            assert publishes >= 1
            assert fetches >= 1

            # Kill a worker outright: the supervisor must respawn it,
            # the respawn must re-attach, and answers must not change.
            victim = pool._workers[0]
            victim.process.kill()  # workers ignore SIGTERM by design
            victim.process.join()
            after = json.loads(pool.execute_json(request, affinity=0))
            assert after == first
            assert pool.respawns >= 1
        finally:
            clean = pool.close()
            plane.close()
        assert clean is True
        assert not any(
            segment_exists(s)
            for _b, s in publication.segments
        )


class TestServingModes:
    def test_procs_mode_end_to_end(self):
        """procs=N serves the same answers over HTTP, applies deltas
        through the broadcast path, and leaks nothing on close."""
        expected = drive(repro.connect(RELATIONS, engine="numpy"))
        with ReproServer(
            RELATIONS, engine="numpy", procs=2, default_query=QUERY
        ) as server:
            prefix = server._backend.plane.prefix
            live = server._backend.plane.live_segments()
            connection = repro.connect(server.url)
            assert drive(connection) == expected
            health = server.health()
            assert health["mode"] == "procs"
            assert health["read_only"] is False

            version = connection.apply(
                Delta(inserts={"R": {(500, 1)}})
            )
            assert version == 1
            view = connection.prepare(QUERY, order=["x", "y", "z"])
            assert tuple(view[-1]) == (500, 1, 2)

            stats = server.stats()
            pool_stats = stats["backend"]["pool"]
            assert pool_stats["crashes"] == 0
            assert pool_stats["respawns"] == 0
            connection.close()
        assert server.clean_shutdown is True
        assert not any(
            segment_exists(s) for s in live if s.startswith(prefix)
        )

    def test_read_only_refuses_mutations_with_403(self):
        with ReproServer(
            RELATIONS, workers=2, default_query=QUERY, read_only=True
        ) as server:
            assert server.health()["read_only"] is True
            connection = repro.connect(server.url)
            sample = drive(connection)  # reads still work
            assert sample[0] > 0
            with pytest.raises(ReadOnlyError):
                connection.apply(Delta(inserts={"R": {(1000, 1)}}))
            connection.close()

            # The wire shape: a structured 403, not a 200 error body.
            import urllib.error
            import urllib.request

            body = json.dumps(
                {"op": "insert", "relation": "R", "rows": [[1000, 1]]}
            ).encode()
            request = urllib.request.Request(
                server.url + "/v1/session", data=body, method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(request, timeout=10)
            assert caught.value.code == 403
            payload = json.loads(caught.value.read().decode())
            assert payload["error_type"] == "ReadOnlyError"

    def test_sharded_mode_end_to_end(self):
        """shards=N is bit-identical on reads and refuses writes."""
        expected = drive(repro.connect(RELATIONS, engine="numpy"))
        with ReproServer(
            RELATIONS, engine="numpy", shards=2, default_query=QUERY
        ) as server:
            prefix = server._backend.plane.prefix
            live = server._backend.plane.live_segments()
            connection = repro.connect(server.url)
            assert drive(connection) == expected
            health = server.health()
            assert health["mode"] == "sharded"
            assert health["read_only"] is True  # by construction
            with pytest.raises(ReadOnlyError):
                connection.apply(Delta(inserts={"R": {(1000, 1)}}))
            connection.close()
        assert server.clean_shutdown is True
        assert not any(
            segment_exists(s) for s in live if s.startswith(prefix)
        )
