"""Tests for Observation 28 and k-Set-Intersection-Enumeration (§9.1)."""

from repro.lowerbounds.setdisjointness import (
    SetIntersectionEnumeration,
    SetSystem,
    StarSetIntersection,
)
from repro.lowerbounds.zeroclique import (
    brute_force_zero_clique,
    complete_multipartite_from_graph,
)


class TestObservation28:
    def test_zero_triangle_preserved(self):
        # triangle 0-1-2 with weights summing to zero
        edges = {(0, 1): 5, (1, 2): -3, (0, 2): -2, (1, 3): 7}
        instance = complete_multipartite_from_graph(4, edges, parts=3)
        clique = brute_force_zero_clique(instance)
        assert clique is not None
        vertices = sorted(v for _part, v in clique)
        assert vertices == [0, 1, 2]
        assert instance.clique_weight(clique) == 0

    def test_no_zero_clique_when_graph_has_none(self):
        edges = {(0, 1): 1, (1, 2): 1, (0, 2): 1}
        instance = complete_multipartite_from_graph(3, edges, parts=3)
        assert brute_force_zero_clique(instance) is None

    def test_blocking_weight_excludes_non_edges(self):
        # 0-1-2 sums to zero but edge (0, 2) is missing: no zero clique.
        edges = {(0, 1): 5, (1, 2): -5}
        instance = complete_multipartite_from_graph(3, edges, parts=3)
        assert brute_force_zero_clique(instance) is None

    def test_completeness(self):
        edges = {(0, 1): 1}
        instance = complete_multipartite_from_graph(2, edges, parts=3)
        # complete 3-partite on 2 vertices per class: all cross pairs set
        assert len(instance.weights) == 3 * 2 * 2


class TestSetIntersectionEnumeration:
    def test_enumerates_all_pairs(self):
        instance = SetSystem.random(2, 5, 4, 8, seed=1)
        queries = [(0, 1), (2, 2), (4, 0)]
        enumeration = SetIntersectionEnumeration(instance, queries)
        got = set(enumeration)
        expected = {
            (q, v)
            for q in queries
            for v in instance.families[0][q[0]]
            & instance.families[1][q[1]]
        }
        assert got == expected
        assert enumeration.answer_count() == len(expected)

    def test_star_backend_agrees(self):
        instance = SetSystem.random(2, 5, 4, 8, seed=2)
        queries = [(i, j) for i in range(5) for j in range(5)]
        plain = set(SetIntersectionEnumeration(instance, queries))
        starred = set(
            SetIntersectionEnumeration(
                instance, queries, backend=StarSetIntersection
            )
        )
        assert plain == starred

    def test_three_families(self):
        instance = SetSystem.random(3, 4, 3, 6, seed=3)
        queries = [(0, 1, 2), (3, 3, 3)]
        got = set(SetIntersectionEnumeration(instance, queries))
        expected = {
            (q, v)
            for q in queries
            for v in (
                instance.families[0][q[0]]
                & instance.families[1][q[1]]
                & instance.families[2][q[2]]
            )
        }
        assert got == expected
