"""End-to-end checks of the paper's concrete, checkable claims.

Each test cites the statement it validates. These are the "figures and
tables" of a theory paper: worked examples and theorem-level facts that
can be executed.
"""

from fractions import Fraction

from repro.core.decomposition import (
    DisruptionFreeDecomposition,
    incompatibility_number,
)
from repro.core.htw import fractional_hypertree_width
from repro.core.orderless import OrderlessFourCycleAccess
from repro.data.generators import random_database
from repro.hypergraph.disruptive_trios import has_disruptive_trio
from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph
from repro.joins.generic_join import evaluate
from repro.lowerbounds.star_queries import StarEmbedding
from repro.query.catalog import (
    example5_order,
    example5_query,
    example18_query,
    four_cycle_query,
    loomis_whitney_query,
    star_query,
)
from repro.query.variable_order import VariableOrder, all_orders


class TestFigure1AndExample5:
    """Figure 1: the hypergraph of Example 5 with its added edges."""

    def test_original_edges(self):
        h = Hypergraph.of_query(example5_query())
        assert h.edges == {
            frozenset({"v1", "v5"}),
            frozenset({"v2", "v4"}),
            frozenset({"v3", "v4"}),
            frozenset({"v3", "v5"}),
        }

    def test_dashed_edges_of_figure1(self):
        d = DisruptionFreeDecomposition(
            example5_query(), example5_order()
        )
        added = {bag.edge for bag in d.bags}
        assert added == {
            frozenset({"v1", "v3", "v5"}),
            frozenset({"v2", "v3", "v4"}),
            frozenset({"v1", "v2", "v3"}),
            frozenset({"v1", "v2"}),
            frozenset({"v1"}),
        }


class TestExample8:
    """Example 8: the S_i components behind Lemma 7's closed form."""

    def test_components(self):
        q = example5_query()
        h = Hypergraph.of_query(q)
        order = list(example5_order())
        # S_5 = {v5}, S_3 = {v3, v4, v5}, S_2 = {v2, v3, v4, v5}
        def component(i):
            suffix = set(order[i:])
            return h.induced(suffix).connected_component(order[i])

        assert component(4) == frozenset({"v5"})
        assert component(2) == frozenset({"v3", "v4", "v5"})
        assert component(1) == frozenset({"v2", "v3", "v4", "v5"})


class TestTheorem1Regime:
    """Theorem 1: acyclic + trio-free pairs have ι = 1."""

    def test_iota_one_iff_tractable_for_acyclic_queries(self):
        for query in (example5_query(), star_query(3)):
            h = Hypergraph.of_query(query)
            assert is_acyclic(h)
            for order in all_orders(query):
                iota = incompatibility_number(query, order)
                tractable = not has_disruptive_trio(h, order)
                assert (iota == 1) == tractable, (query.name, order)


class TestLemma15IntegralityClaim:
    """Lemma 15: for acyclic queries the incompatibility number is integral."""

    def test_acyclic_integral(self):
        for query in (example5_query(), star_query(2), star_query(4)):
            for order in all_orders(query):
                assert (
                    incompatibility_number(query, order).denominator
                    == 1
                )


class TestExample16And18Embeddings:
    def test_example16_star_size(self):
        assert (
            StarEmbedding(
                example5_query(), example5_order()
            ).star_size
            == 3
        )

    def test_example18_lambda(self):
        embedding = StarEmbedding(example18_query(), example5_order())
        assert embedding.iota == Fraction(3, 2)
        assert embedding.blowup == 2


class TestSection8Claims:
    def test_four_cycle_fhtw_is_2(self):
        """§8.2: 'the query Q◦ has fractional hypertree width 2'."""
        width, _ = fractional_hypertree_width(four_cycle_query())
        assert width == 2

    def test_all_lexicographic_orders_need_iota_2(self):
        """Corollary 46 premise: every order of Q◦ has ι >= 2."""
        q = four_cycle_query()
        for order in all_orders(q):
            assert incompatibility_number(q, order) >= 2

    def test_orderless_beats_lexicographic_budget(self):
        """Lemma 48: orderless preprocessing stays within |D|^{3/2}."""
        n = 10
        full = {(a, b) for a in range(n) for b in range(n)}
        from repro.data.database import Database

        db = Database(
            {"R1": full, "R2": full, "R3": full, "R4": full}
        )
        access = OrderlessFourCycleAccess(db)
        assert len(access) == n ** 4
        assert access.bag_budget <= len(db) ** 1.5
        # a lexicographic engine materializes an ι=2-sized bag instead
        from repro.core.preprocessing import Preprocessing

        prep = Preprocessing(
            four_cycle_query(),
            VariableOrder(["x1", "x2", "x3", "x4"]),
            db,
        )
        assert max(len(p.table) for p in prep.bags) >= n ** 3


class TestAGMBound:
    """Theorem 2 (AGM): output size <= |D|^{ρ*}, tight on worst cases."""

    def test_triangle_worst_case_is_tight(self):
        from repro.data.generators import agm_worstcase_triangle_database
        from repro.query.catalog import triangle_query

        side = 6
        db = agm_worstcase_triangle_database(side)
        output = evaluate(triangle_query(), db)
        per_relation = side * side
        assert len(output) == per_relation ** Fraction(3, 2)

    def test_loomis_whitney_output_bounded(self):
        q = loomis_whitney_query(3)
        db = random_database(q, 30, 6, seed=1)
        output = evaluate(q, db)
        bound = (3 * 30) ** (1 + 1 / 2)
        assert len(output) <= bound


class TestSelfJoinInvariance:
    """Theorem 33's statement at the ι level: the incompatibility number
    depends only on the hypergraph, hence is blind to self-joins."""

    def test_selfjoin_free_version_has_same_iota(self):
        from repro.query.parser import parse_query
        from repro.query.transforms import self_join_free_version

        q = parse_query("Q(x, y, z) :- R(x, y), R(y, z)")
        sf = self_join_free_version(q)
        for order in all_orders(q):
            assert incompatibility_number(
                q, order
            ) == incompatibility_number(sf, order)
