"""Unit tests for variable orders and lexicographic keys."""

import pytest

from repro.errors import OrderError
from repro.query.parser import parse_query
from repro.query.variable_order import VariableOrder, all_orders


class TestVariableOrder:
    def test_position(self):
        order = VariableOrder(["b", "a"])
        assert order.position("a") == 1
        with pytest.raises(OrderError):
            order.position("z")

    def test_repeated_variable_rejected(self):
        with pytest.raises(OrderError):
            VariableOrder(["a", "a"])

    def test_validate_full_order(self):
        q = parse_query("Q(x, y) :- R(x, y)")
        VariableOrder(["y", "x"]).validate_for(q)
        with pytest.raises(OrderError):
            VariableOrder(["x"]).validate_for(q)
        with pytest.raises(OrderError):
            VariableOrder(["x", "z"]).validate_for(q)

    def test_validate_partial_order(self):
        q = parse_query("Q(x, y) :- R(x, y)")
        VariableOrder(["x"]).validate_for(q, partial=True)

    def test_key_sorts_lexicographically(self):
        order = VariableOrder(["y", "x"])
        answers = [{"x": 0, "y": 1}, {"x": 1, "y": 0}]
        assert order.sort_answers(answers)[0] == {"x": 1, "y": 0}

    def test_key_of_tuple(self):
        order = VariableOrder(["y", "x"])
        assert order.key_of_tuple((7, 8), ("x", "y")) == (8, 7)

    def test_equality_and_hash(self):
        assert VariableOrder(["a", "b"]) == VariableOrder(["a", "b"])
        assert hash(VariableOrder(["a"])) == hash(VariableOrder(["a"]))

    def test_all_orders_count(self):
        q = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        assert len(list(all_orders(q))) == 6
