"""Tests for disruption-free decompositions (§3.1) and widths (§3.3)."""

from fractions import Fraction

from repro.core.decomposition import (
    DisruptionFreeDecomposition,
    incompatibility_number,
)
from repro.core.htw import (
    decomposition_is_trio_free,
    fractional_hypertree_width,
    fractional_width,
    is_hypertree_decomposition,
)
from repro.hypergraph.disruptive_trios import has_disruptive_trio
from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.catalog import (
    example5_order,
    example5_query,
    example18_query,
    four_cycle_query,
    loomis_whitney_query,
    path_query,
    star_bad_order,
    star_good_order,
    star_query,
    triangle_query,
)
from repro.query.variable_order import VariableOrder, all_orders
from tests.conftest import random_join_query, random_order


class TestExample5:
    """The worked example of Figure 1 / Examples 5 and 8."""

    def test_edges_match_the_paper(self):
        d = DisruptionFreeDecomposition(
            example5_query(), example5_order()
        )
        edges = {bag.variable: set(bag.edge) for bag in d.bags}
        assert edges["v5"] == {"v1", "v3", "v5"}
        assert edges["v4"] == {"v2", "v3", "v4"}
        assert edges["v3"] == {"v1", "v2", "v3"}
        assert edges["v2"] == {"v1", "v2"}
        assert edges["v1"] == {"v1"}

    def test_incompatibility_number_is_3(self):
        assert incompatibility_number(
            example5_query(), example5_order()
        ) == 3

    def test_closed_form_matches_iterative(self):
        d = DisruptionFreeDecomposition(
            example5_query(), example5_order()
        )
        closed = d.closed_form_edges()
        for bag in d.bags:
            assert closed[bag.index] == bag.edge


class TestExample18:
    def test_incompatibility_number_is_three_halves(self):
        assert incompatibility_number(
            example18_query(), example5_order()
        ) == Fraction(3, 2)

    def test_same_added_edges_as_example5(self):
        d5 = DisruptionFreeDecomposition(
            example5_query(), example5_order()
        )
        d18 = DisruptionFreeDecomposition(
            example18_query(), example5_order()
        )
        assert {b.edge for b in d5.bags} == {b.edge for b in d18.bags}


class TestKnownValues:
    def test_star_orders(self):
        for k in (2, 3, 4):
            assert incompatibility_number(
                star_query(k), star_bad_order(k)
            ) == k
            assert incompatibility_number(
                star_query(k), star_good_order(k)
            ) == 1

    def test_path_forward_order_is_tractable(self):
        q = path_query(4)
        order = VariableOrder([f"x{i + 1}" for i in range(5)])
        assert incompatibility_number(q, order) == 1

    def test_triangle_is_three_halves_for_all_orders(self):
        q = triangle_query()
        for order in all_orders(q):
            assert incompatibility_number(q, order) == Fraction(3, 2)

    def test_loomis_whitney_incompatibility(self):
        q = loomis_whitney_query(4)
        order = VariableOrder(["x1", "x2", "x3", "x4"])
        assert incompatibility_number(q, order) == Fraction(4, 3)

    def test_always_at_least_one(self):
        q = path_query(1)
        for order in all_orders(q):
            assert incompatibility_number(q, order) >= 1


class TestProposition6:
    """The decomposition is acyclic and trio-free (Proposition 6)."""

    def test_on_random_queries(self, rng):
        for _ in range(40):
            query = random_join_query(rng)
            order = random_order(query, rng)
            d = DisruptionFreeDecomposition(query, order)
            h0 = d.decomposition_hypergraph
            assert is_acyclic(h0)
            assert not has_disruptive_trio(h0, order)
            # super-hypergraph of the query
            assert d.hypergraph.edges <= h0.edges

    def test_closed_form_on_random_queries(self, rng):
        for _ in range(40):
            query = random_join_query(rng)
            order = random_order(query, rng)
            d = DisruptionFreeDecomposition(query, order)
            closed = d.closed_form_edges()
            for bag in d.bags:
                assert closed[bag.index] == bag.edge, (query, order)

    def test_forest_interfaces_contained_in_parent(self, rng):
        # e_i \ {v_i} ⊆ e_{parent(i)} — the containment the counting
        # forest of the access engine rests on.
        for _ in range(40):
            query = random_join_query(rng)
            order = random_order(query, rng)
            d = DisruptionFreeDecomposition(query, order)
            for bag in d.bags:
                if bag.parent is None:
                    assert not bag.interface
                else:
                    assert bag.interface <= d.bags[bag.parent].edge

    def test_atom_contained_in_its_bag(self, rng):
        for _ in range(40):
            query = random_join_query(rng)
            order = random_order(query, rng)
            d = DisruptionFreeDecomposition(query, order)
            for scope in query.scopes():
                bag = d.bags[d.bag_of_atom(scope)]
                assert scope <= bag.edge


class TestOptimality:
    """Lemma 13 / Proposition 14: minimal width among trio-free decompositions."""

    def _all_decompositions(self, hypergraph):
        """All acyclic super-edge-sets that cover the query's edges.

        Brutally exponential; only usable for tiny hypergraphs.
        """
        from itertools import combinations

        vertices = sorted(hypergraph.vertices)
        candidate_bags = []
        for size in range(1, len(vertices) + 1):
            candidate_bags.extend(combinations(vertices, size))
        for count in range(1, 4):
            for bags in combinations(candidate_bags, count):
                candidate = Hypergraph(vertices, bags)
                if is_hypertree_decomposition(hypergraph, candidate):
                    yield candidate

    def test_example5_no_better_trio_free_decomposition(self):
        query = example5_query()
        order = example5_order()
        hypergraph = Hypergraph.of_query(query)
        d = DisruptionFreeDecomposition(query, order)
        best = d.incompatibility_number
        for candidate in self._all_decompositions(hypergraph):
            if decomposition_is_trio_free(candidate, order):
                assert fractional_width(hypergraph, candidate) >= best

    def test_lemma13_containment(self, rng):
        # Every trio-free decomposition contains every decomposition edge.
        query = example5_query()
        order = example5_order()
        hypergraph = Hypergraph.of_query(query)
        d = DisruptionFreeDecomposition(query, order)
        for candidate in self._all_decompositions(hypergraph):
            if not decomposition_is_trio_free(candidate, order):
                continue
            for bag in d.bags:
                assert any(
                    bag.edge <= b for b in candidate.edges
                ), (candidate, bag)


class TestFractionalHypertreeWidth:
    def test_four_cycle_is_2(self):
        width, _ = fractional_hypertree_width(four_cycle_query())
        assert width == 2

    def test_triangle_is_three_halves(self):
        width, _ = fractional_hypertree_width(triangle_query())
        assert width == Fraction(3, 2)

    def test_acyclic_is_1(self):
        width, order = fractional_hypertree_width(path_query(3))
        assert width == 1
        assert incompatibility_number(path_query(3), order) == 1

    def test_width_lower_bounds_incompatibility(self, rng):
        # Observation 12: ι >= fhtw for every order.
        for _ in range(8):
            query = random_join_query(rng)
            width, _ = fractional_hypertree_width(query)
            order = random_order(query, rng)
            assert incompatibility_number(query, order) >= width
