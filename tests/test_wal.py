"""The durable write-ahead delta log (:mod:`repro.data.wal`).

The durability contract, bottom-up: append-before-apply record
round-trips, checksummed torn-tail repair on open, fsync batching,
snapshot seeding, replay (:meth:`WriteAheadLog.recover`), and the
``repro wal`` maintenance verbs (inspect / truncate / compact).
"""

from __future__ import annotations

import pytest

from repro import Database, Delta, WriteAheadLog
from repro.data.wal import WAL_FORMAT_VERSION
from repro.errors import WalError

BASE = {
    "R": {(1, 2), (3, 2), (3, 4)},
    "S": {(2, 7), (2, 9), (4, 1)},
}

D1 = Delta(inserts={"R": {(9, 2)}})
D2 = Delta(inserts={"S": {(2, 42)}}, deletes={"R": {(1, 2)}})


def base_database() -> Database:
    return Database({name: set(rows) for name, rows in BASE.items()})


class TestAppendAndScan:
    def test_fresh_log_is_empty_with_a_header(self, tmp_path):
        path = tmp_path / "serve.wal"
        wal = WriteAheadLog(path)
        assert wal.last_seq == 0
        assert wal.last_db_version == 0
        assert wal.records() == []
        header = path.read_text().splitlines()[0]
        assert header == f"repro-wal {WAL_FORMAT_VERSION}"
        wal.close()

    def test_delta_records_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "serve.wal")
        assert wal.append_delta(D1, 1) == 1
        assert wal.append_delta(D2, 2) == 2
        assert wal.last_seq == 2 and wal.last_db_version == 2
        records = wal.records()
        assert [r.seq for r in records] == [1, 2]
        assert all(r.kind == "delta" for r in records)
        assert records[0].delta == D1
        assert records[1].delta == D2
        assert records[1].db_version == 2
        wal.close()

    def test_position_survives_reopen(self, tmp_path):
        path = tmp_path / "serve.wal"
        with WriteAheadLog(path) as wal:
            wal.append_delta(D1, 1)
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 1
            assert wal.last_db_version == 1
            # ... and appending continues the sequence.
            assert wal.append_delta(D2, 2) == 2

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "not.wal"
        path.write_text("something else entirely\n")
        with pytest.raises(WalError, match="not a repro WAL"):
            WriteAheadLog(path)

    def test_newer_format_raises(self, tmp_path):
        path = tmp_path / "future.wal"
        path.write_text(f"repro-wal {WAL_FORMAT_VERSION + 1}\n")
        with pytest.raises(WalError, match="WAL format"):
            WriteAheadLog(path)


class TestTornTail:
    def test_partial_line_is_dropped_on_open(self, tmp_path):
        path = tmp_path / "serve.wal"
        with WriteAheadLog(path) as wal:
            wal.append_delta(D1, 1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("2 deadbeef {\"kind\": \"delta\"")  # no newline
        wal = WriteAheadLog(path)
        assert wal.stats.torn_tail_dropped == 1
        assert wal.last_seq == 1
        # The file was truncated back, so new appends are readable.
        wal.append_delta(D2, 2)
        assert [r.seq for r in wal.records()] == [1, 2]
        wal.close()

    def test_length_prefix_defeats_crc_colliding_truncation(self, tmp_path):
        """A torn tail whose surviving prefix *happens* to carry a
        valid checksum must still be dropped.

        The crafted line models the worst-case torn write: the payload
        on disk parses as JSON and matches its CRC field (a 1-in-2^32
        collision, handed to the parser deliberately), so every check
        except the length prefix is fooled.  Only the declared payload
        length betrays that the record was cut short.
        """
        from repro.data.wal import _checksum

        path = tmp_path / "serve.wal"
        with WriteAheadLog(path) as wal:
            wal.append_delta(D1, 1)
            wal.append_delta(D2, 2)
        lines = path.read_text().splitlines(keepends=True)
        seq, _crc, _length, payload = lines[-1].rstrip("\n").split(" ", 3)
        # Same payload, same (valid) checksum — but the length prefix
        # says the original record was longer than what survived.
        lines[-1] = (
            f"{seq} {_checksum(int(seq), payload)} "
            f"{len(payload) + 7} {payload}\n"
        )
        path.write_text("".join(lines))
        wal = WriteAheadLog(path)
        assert wal.stats.torn_tail_dropped == 1
        assert wal.last_seq == 1 and len(wal.records()) == 1
        # The truncation repaired the file; appends continue cleanly.
        wal.append_delta(D2, 2)
        assert [r.seq for r in wal.records()] == [1, 2]
        wal.close()

    def test_corrupt_checksum_cuts_the_tail(self, tmp_path):
        path = tmp_path / "serve.wal"
        with WriteAheadLog(path) as wal:
            wal.append_delta(D1, 1)
            wal.append_delta(D2, 2)
        lines = path.read_text().splitlines(keepends=True)
        lines[-1] = lines[-1].replace("db_version", "db_versiom", 1)
        path.write_text("".join(lines))
        wal = WriteAheadLog(path)
        assert wal.stats.torn_tail_dropped == 1
        assert wal.last_seq == 1 and len(wal.records()) == 1
        wal.close()


class TestFsyncBatching:
    def test_default_batch_syncs_every_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "serve.wal")
        wal.append_delta(D1, 1)
        wal.append_delta(D2, 2)
        assert wal.stats.fsyncs == 2
        wal.close()

    def test_batched_appends_share_one_fsync(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "serve.wal", fsync_batch=3)
        wal.append_delta(D1, 1)
        wal.append_delta(D2, 2)
        assert wal.stats.fsyncs == 0  # still pending
        wal.append_delta(D1, 3)  # third append completes the batch
        assert wal.stats.fsyncs == 1
        wal.append_delta(D2, 4)
        wal.sync()  # an explicit sync drains the partial batch
        assert wal.stats.fsyncs == 2
        wal.sync()  # ... and an empty one is free
        assert wal.stats.fsyncs == 2
        wal.close()


class TestRecovery:
    def test_replay_applies_deltas_on_the_base(self, tmp_path):
        with WriteAheadLog(tmp_path / "serve.wal") as wal:
            wal.append_delta(D1, 1)
            wal.append_delta(D2, 2)
            database, version = wal.recover(base_database())
        assert version == 2
        assert database == base_database().apply(D1).apply(D2)

    def test_seed_makes_an_empty_log_self_contained(self, tmp_path):
        path = tmp_path / "serve.wal"
        with WriteAheadLog(path) as wal:
            database, version = wal.recover(base_database(), seed=True)
            assert (database, version) == (base_database(), 0)
            records = wal.records()
            assert len(records) == 1 and records[0].kind == "snapshot"
        # A seeded log recovers standalone — no base needed.
        with WriteAheadLog(path) as wal:
            database, version = wal.recover()
            assert (database, version) == (base_database(), 0)
            # seed=True on a non-empty log appends nothing.
            wal.recover(seed=True)
            assert wal.last_seq == 1

    def test_snapshot_record_resets_replay_state(self, tmp_path):
        with WriteAheadLog(tmp_path / "serve.wal") as wal:
            wal.append_delta(D1, 1)
            wal.append_snapshot(base_database(), 5)
            wal.append_delta(D2, 6)
            # The delta prefix applies to the passed base, then the
            # snapshot replaces the replay state wholesale.
            database, version = wal.recover(base_database())
        assert version == 6
        assert database == base_database().apply(D2)

    def test_delta_log_without_a_base_raises(self, tmp_path):
        with WriteAheadLog(tmp_path / "serve.wal") as wal:
            wal.append_delta(D1, 1)
            with pytest.raises(WalError, match="base database"):
                wal.recover()

    def test_empty_log_without_a_base_raises(self, tmp_path):
        with WriteAheadLog(tmp_path / "serve.wal") as wal:
            with pytest.raises(WalError, match="empty"):
                wal.recover()


class TestMaintenance:
    def seeded(self, path) -> WriteAheadLog:
        wal = WriteAheadLog(path)
        wal.recover(base_database(), seed=True)
        wal.append_delta(D1, 1)
        wal.append_delta(D2, 2)
        return wal

    def test_truncate_drops_the_tail(self, tmp_path):
        wal = self.seeded(tmp_path / "serve.wal")
        assert wal.truncate(2) == 1  # drops the D2 record
        assert wal.last_seq == 2 and wal.last_db_version == 1
        database, version = wal.recover()
        assert version == 1
        assert database == base_database().apply(D1)
        wal.close()

    def test_compact_folds_history_into_one_snapshot(self, tmp_path):
        path = tmp_path / "serve.wal"
        wal = self.seeded(path)
        expected, _ = wal.recover()
        assert wal.compact() == 3  # snapshot + two deltas subsumed
        records = wal.records()
        assert len(records) == 1 and records[0].kind == "snapshot"
        database, version = wal.recover()
        assert version == 2 and database == expected
        # crash-safe rewrite: no temp file left behind.
        assert not path.with_name(path.name + ".tmp").exists()
        # ... and appending after a compaction keeps the sequence.
        wal.append_delta(D1, 3)
        assert wal.last_seq == records[0].seq + 1
        wal.close()

    def test_wal_stats_surface_position_and_counters(self, tmp_path):
        wal = self.seeded(tmp_path / "serve.wal")
        stats = wal.wal_stats()
        assert stats["format"] == WAL_FORMAT_VERSION
        assert stats["last_seq"] == 3
        assert stats["last_db_version"] == 2
        assert stats["fsync_batch"] == 1
        assert stats["records_appended"] == 3
        assert stats["bytes_written"] > 0
        wal.close()


class TestWalCLI:
    def seeded_path(self, tmp_path):
        path = tmp_path / "serve.wal"
        with WriteAheadLog(path) as wal:
            wal.recover(base_database(), seed=True)
            wal.append_delta(D1, 1)
            wal.append_delta(D2, 2)
        return path

    def test_inspect_lists_every_record(self, tmp_path, capsys):
        from repro.cli import main

        path = self.seeded_path(tmp_path)
        assert main(["wal", "inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "3 record(s)" in out and "db_version = 2" in out
        assert "seq 1: snapshot @ db_version 0" in out
        assert "seq 3: delta -> db_version 2" in out

    def test_truncate_and_compact_verbs(self, tmp_path, capsys):
        from repro.cli import main

        path = self.seeded_path(tmp_path)
        assert main(["wal", "truncate", str(path), "--keep-through", "2"]) == 0
        assert "dropped 1 record(s)" in capsys.readouterr().out
        assert main(["wal", "compact", str(path)]) == 0
        assert "compacted 2 record(s)" in capsys.readouterr().out
        with WriteAheadLog(path) as wal:
            database, version = wal.recover()
        assert version == 1
        assert database == base_database().apply(D1)

    def test_bad_log_exits_cleanly(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "not.wal"
        path.write_text("nope\n")
        with pytest.raises(SystemExit):
            main(["wal", "inspect", str(path)])

    def test_version_reports_wal_format(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert f"wal format {WAL_FORMAT_VERSION}" in out
