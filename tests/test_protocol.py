"""Tests for the versioned JSON session protocol (one codepath).

Part of the new-API surface: CI runs this module with
``-W error::DeprecationWarning``.
"""

from __future__ import annotations

import json

import pytest

from repro import ProtocolError, connect
from repro.session.protocol import (
    OPS,
    PROTOCOL_VERSION,
    SessionRequest,
    SessionResponse,
    execute,
    parse_command,
)

QUERY = "Q(x, y, z) :- R(x, y), S(y, z)"


@pytest.fixture()
def conn():
    return connect(
        {
            "R": {(1, 2), (3, 2), (3, 4)},
            "S": {(2, 7), (2, 9), (4, 1)},
        }
    )


# Sorted by (x, y, z):
ANSWERS = [
    (1, 2, 7),
    (1, 2, 9),
    (3, 2, 7),
    (3, 2, 9),
    (3, 4, 1),
]


class TestRequestWireForm:
    def test_json_round_trip(self):
        request = SessionRequest(
            op="access", order=("x", "y", "z"), indices=(0, -1)
        )
        assert SessionRequest.from_json(request.to_json()) == request

    def test_round_trip_all_fields(self):
        request = SessionRequest(
            op="page",
            query=QUERY,
            order=("x", "y", "z"),
            prefix=("x",),
            page_number=2,
            page_size=10,
        )
        assert SessionRequest.from_json(request.to_json()) == request
        request = SessionRequest(op="rank", answer=(1, "a", 3))
        assert SessionRequest.from_json(request.to_json()) == request

    def test_defaults_omitted_on_the_wire(self):
        data = json.loads(SessionRequest(op="stats").to_json())
        assert data == {"version": PROTOCOL_VERSION, "op": "stats"}

    def test_missing_version_defaults_to_current(self):
        request = SessionRequest.from_json('{"op": "stats"}')
        assert request.version == PROTOCOL_VERSION

    def test_newer_version_rejected(self):
        with pytest.raises(ProtocolError, match="protocol 99"):
            SessionRequest.from_json('{"op": "stats", "version": 99}')

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="frobnicate"):
            SessionRequest(op="frobnicate")
        with pytest.raises(ProtocolError):
            SessionRequest.from_json('{"op": "frobnicate"}')

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request"):
            SessionRequest.from_json('{"op": "stats", "bogus": 1}')

    @pytest.mark.parametrize(
        "payload",
        [
            "[]",
            "42",
            '{"op": 7}',
            '{"op": "count", "order": "x,y"}',
            '{"op": "access", "indices": ["0"]}',
            '{"op": "access", "indices": [true]}',
            '{"op": "page", "page_number": "2"}',
            '{"op": "rank", "answer": 3}',
            '{"op": "stats", "version": true}',
            "not json at all",
        ],
    )
    def test_malformed_requests_rejected(self, payload):
        with pytest.raises(ProtocolError):
            SessionRequest.from_json(payload)


class TestResponseWireForm:
    def test_ok_round_trip(self):
        response = SessionResponse(
            op="count", ok=True, result={"count": 5, "order": ["x"]}
        )
        assert (
            SessionResponse.from_json(response.to_json()) == response
        )

    def test_error_round_trip(self):
        response = SessionResponse(op="access", ok=False, error="nope")
        parsed = SessionResponse.from_json(response.to_json())
        assert parsed == response
        assert not json.loads(response.to_json()).get("result")

    def test_malformed_response_rejected(self):
        with pytest.raises(ProtocolError):
            SessionResponse.from_json('{"ok": true}')
        with pytest.raises(ProtocolError):
            SessionResponse.from_json('{"op": "count", "ok": "yes"}')
        with pytest.raises(ProtocolError):
            SessionResponse.from_json(
                '{"op": "count", "ok": true, "version": 99}'
            )


class TestLegacyGrammar:
    """The text grammar parses into the same request dataclass."""

    @pytest.mark.parametrize(
        "line,expected",
        [
            (
                "access x,y,z 0 -1",
                SessionRequest(
                    op="access", order=("x", "y", "z"), indices=(0, -1)
                ),
            ),
            ("median -", SessionRequest(op="median")),
            (
                "page x,y 2 10",
                SessionRequest(
                    op="page",
                    order=("x", "y"),
                    page_number=2,
                    page_size=10,
                ),
            ),
            ("count x,y", SessionRequest(op="count", order=("x", "y"))),
            (
                "rank x,y 3,hello",
                SessionRequest(
                    op="rank", order=("x", "y"), answer=(3, "hello")
                ),
            ),
            ("plan", SessionRequest(op="plan")),
            ("plan x,y", SessionRequest(op="plan", prefix=("x", "y"))),
            ("stats", SessionRequest(op="stats")),
            ("quit", SessionRequest(op="quit")),
            ("exit", SessionRequest(op="quit")),
            ("QUIT", SessionRequest(op="quit")),
        ],
    )
    def test_parses(self, line, expected):
        assert parse_command(line) == expected

    @pytest.mark.parametrize(
        "line",
        [
            "frobnicate",
            "access x,y",
            "access x,y zero",
            "median",
            "median - extra",
            "page x,y 1",
            "page x,y one 2",
            "rank x,y",
            "count",
            "",
        ],
    )
    def test_rejects(self, line):
        with pytest.raises(ProtocolError):
            parse_command(line)


class TestExecutor:
    def test_count_access_median_rank(self, conn):
        order = ("x", "y", "z")
        response = execute(
            conn,
            SessionRequest(op="count", order=order),
            default_query=QUERY,
        )
        assert response.ok and response.result["count"] == 5
        assert response.result["order"] == ["x", "y", "z"]

        response = execute(
            conn,
            SessionRequest(op="access", order=order, indices=(0, -1)),
            default_query=QUERY,
        )
        assert response.result["answers"] == [[1, 2, 7], [3, 4, 1]]

        response = execute(
            conn,
            SessionRequest(op="median", order=order),
            default_query=QUERY,
        )
        assert tuple(response.result["answer"]) == ANSWERS[2]

        response = execute(
            conn,
            SessionRequest(op="rank", order=order, answer=(3, 2, 9)),
            default_query=QUERY,
        )
        assert response.result["rank"] == 3
        response = execute(
            conn,
            SessionRequest(op="rank", order=order, answer=(9, 9, 9)),
            default_query=QUERY,
        )
        assert response.ok and response.result["rank"] is None

    def test_page_plan_stats_quit(self, conn):
        response = execute(
            conn,
            SessionRequest(
                op="page",
                order=("x", "y", "z"),
                page_number=1,
                page_size=2,
            ),
            default_query=QUERY,
        )
        assert response.result["answers"] == [[3, 2, 7], [3, 2, 9]]

        response = execute(
            conn, SessionRequest(op="plan"), default_query=QUERY
        )
        assert response.ok and response.result["order"]
        assert isinstance(response.result["iota"], str)

        response = execute(
            conn, SessionRequest(op="stats"), default_query=QUERY
        )
        assert response.ok and "requests" in response.result

        response = execute(
            conn, SessionRequest(op="quit"), default_query=QUERY
        )
        assert response.ok and response.result is None

    def test_request_query_overrides_default(self, conn):
        response = execute(
            conn,
            SessionRequest(
                op="count", query="Q(x, y) :- R(x, y)", order=("x", "y")
            ),
            default_query=QUERY,
        )
        assert response.ok and response.result["count"] == 3

    def test_library_errors_become_error_responses(self, conn):
        # Out of bounds, bad order, missing arguments: served, not raised.
        cases = [
            SessionRequest(
                op="access", order=("x", "y", "z"), indices=(99,)
            ),
            SessionRequest(op="access", order=("x", "y", "z")),
            SessionRequest(op="count", order=("x", "nope", "z")),
            SessionRequest(
                op="page", order=("x", "y", "z"), page_number=-1,
                page_size=5,
            ),
            SessionRequest(op="page", order=("x", "y", "z")),
            SessionRequest(op="rank", order=("x", "y", "z")),
        ]
        for request in cases:
            response = execute(conn, request, default_query=QUERY)
            assert not response.ok and response.error
        # ... and the session survives to serve the next request.
        response = execute(
            conn,
            SessionRequest(op="count", order=("x", "y", "z")),
            default_query=QUERY,
        )
        assert response.ok

    def test_no_query_anywhere_is_an_error(self, conn):
        response = execute(conn, SessionRequest(op="count"))
        assert not response.ok and "query" in response.error

    def test_incomparable_domain_is_served_as_an_error(self):
        """A mixed int/str column breaks the total-order assumption of
        the counting structures; the serving loop must answer with an
        error response, not die on the TypeError."""
        mixed = connect({"R": {(1, 2), ("foo", "bar")}})
        request = SessionRequest(op="count", order=("x", "y"))
        response = execute(
            mixed, request, default_query="Q(x, y) :- R(x, y)"
        )
        assert not response.ok
        assert "ordered" in response.error

    def test_every_op_is_covered(self, conn):
        """No op constant without an executor path."""
        for op in sorted(OPS):
            request = SessionRequest(
                op=op,
                order=("x", "y", "z"),
                indices=(0,),
                page_number=0,
                page_size=1,
                answer=(1, 2, 7),
                relation="R",
                rows=((1, 2),),
                inserts={"R": ((1, 2),)},
            )
            response = execute(conn, request, default_query=QUERY)
            assert response.ok, (op, response.error)

    def test_results_are_json_serializable(self, conn):
        for op in sorted(OPS):
            request = SessionRequest(
                op=op,
                order=("x", "y", "z"),
                indices=(0, -1),
                page_number=0,
                page_size=2,
                answer=(1, 2, 7),
                relation="R",
                rows=((1, 2),),
            )
            response = execute(conn, request, default_query=QUERY)
            parsed = SessionResponse.from_json(response.to_json())
            assert parsed.ok == response.ok
