"""Incremental maintenance under live inserts/deletes.

The acceptance surface of the live-updates PR, bottom-up:

* :class:`~repro.data.delta.Delta` — normalization and validation;
* ``Database.apply`` / ``EncodedDatabase.apply`` — structural sharing
  and code-stable in-place dictionary extension (full re-encode only
  when order-preservation forces it);
* the versioned :class:`~repro.session.ArtifactStore` — a delta
  invalidates exactly the artifacts whose decomposition touches a
  mutated relation; untouched decompositions are *carried* and served
  warm (generation counters prove zero rebuilds);
* the facade — ``Connection.apply`` bumps ``db_version`` for
  effective deltas while version-pinned views keep answering from
  retained MVCC snapshots; :class:`~repro.errors.StaleViewError` is
  reserved for evicted snapshots and ``strict_views`` mode;
* the wire — ``insert`` / ``delete`` / ``apply`` / ``db_version``
  ops, snapshot-pinned reads with eviction replay, batched ranks,
  and the keep-alive client pool.

Part of the new-API surface: CI runs this module with
``-W error::DeprecationWarning`` and under both engines.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro import (
    Database,
    Delta,
    EncodedDatabase,
    StaleViewError,
    connect,
    parse_query,
)
from repro.chaos.deltas import delta_sequence, random_delta, shrink_deltas
from repro.data.columnar import numpy_available
from repro.errors import DatabaseError
from repro.session import ArtifactStore
from repro.session.protocol import SessionRequest, execute

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

PATH = "Q(x, y, z) :- R(x, y), S(y, z)"
DISJOINT = "P(u, v, w) :- T(u, v), U(v, w)"
RELATIONS = {
    "R": {(1, 2), (3, 2), (3, 4)},
    "S": {(2, 7), (2, 9), (4, 1)},
    "T": {(1, 1), (2, 1)},
    "U": {(1, 5)},
}


def fresh_database() -> Database:
    return Database({name: set(rows) for name, rows in RELATIONS.items()})


class TestDelta:
    def test_normalization_and_touched(self):
        delta = Delta(
            inserts={"R": [[1, 2], (3, 9)], "S": []},
            deletes={"T": {(1, 1)}},
        )
        assert delta.inserts == {"R": frozenset({(1, 2), (3, 9)})}
        assert delta.deletes == {"T": frozenset({(1, 1)})}
        assert delta.touched == {"R", "T"}
        assert delta.size() == 3
        assert not delta.is_empty
        assert Delta().is_empty

    def test_delete_then_insert_within_one_delta(self):
        delta = Delta(inserts={"R": {(1, 2)}}, deletes={"R": {(1, 2)}})
        assert delta.apply_to("R", {(1, 2), (5, 5)}) == {
            (1, 2),
            (5, 5),
        }

    def test_coerce_accepts_mapping_spelling(self):
        delta = Delta.coerce({"inserts": {"R": {(7, 7)}}})
        assert delta.inserts == {"R": frozenset({(7, 7)})}
        with pytest.raises(DatabaseError):
            Delta.coerce({"R": {(7, 7)}})

    def test_validate_unknown_relation_and_arity(self):
        database = fresh_database()
        with pytest.raises(DatabaseError):
            Delta(inserts={"Nope": {(1,)}}).validate_against(database)
        with pytest.raises(DatabaseError):
            Delta(inserts={"R": {(1, 2, 3)}}).validate_against(database)

    def test_equality_and_repr(self):
        assert Delta(inserts={"R": {(1, 2)}}) == Delta(
            inserts={"R": [(1, 2)]}
        )
        assert "inserts" in repr(Delta(inserts={"R": {(1, 2)}}))
        assert "empty" in repr(Delta())


class TestDatabaseApply:
    def test_untouched_relations_shared_by_object(self):
        database = fresh_database()
        out = database.apply(Delta(inserts={"R": {(9, 9)}}))
        assert out["S"] is database["S"]
        assert out["R"] is not database["R"]
        assert (9, 9) in out["R"].tuples
        assert (9, 9) not in database["R"].tuples  # snapshot intact

    def test_apply_can_empty_a_relation(self):
        database = Database({"R": {(1, 2)}})
        out = database.apply(Delta(deletes={"R": {(1, 2)}}))
        assert len(out["R"]) == 0 and out["R"].arity == 2

    def test_apply_rejects_bad_deltas_without_side_effects(self):
        database = fresh_database()
        with pytest.raises(DatabaseError):
            database.apply(Delta(inserts={"R": {(1,)}}))
        assert len(database["R"]) == 3


@needs_numpy
class TestEncodedDatabaseApply:
    def test_append_only_values_extend_in_place(self):
        database = EncodedDatabase(
            {"R": {(1, 2), (3, 2)}, "S": {(2, 7)}}
        )
        dictionary = database.shared_dictionary
        codes_before = dict(dictionary._code)
        out = database.apply(Delta(inserts={"R": {(8, 9)}}))
        assert out.encoded_incrementally
        assert out.shared_dictionary is dictionary
        # Code-stable: no existing value was renumbered.
        for value, code in codes_before.items():
            assert out.shared_dictionary._code[value] == code
        # Untouched relations keep their mirrors by identity.
        assert out["S"]._columnar is database["S"]._columnar
        assert out["R"]._columnar.dictionary is dictionary

    def test_mid_order_value_forces_full_reencode(self):
        database = EncodedDatabase({"R": {(10, 20)}, "S": {(20, 30)}})
        out = database.apply(Delta(inserts={"R": {(15, 20)}}))
        assert not out.encoded_incrementally
        assert out.shared_dictionary is not database.shared_dictionary
        assert sorted(out["R"].tuples) == [(10, 20), (15, 20)]
        # The original database's encoding is untouched.
        assert database.shared_dictionary.code(15) == -1

    def test_deletes_are_always_incremental(self):
        database = EncodedDatabase({"R": {(1, 2), (3, 4)}, "S": {(2, 7)}})
        out = database.apply(Delta(deletes={"R": {(3, 4)}}))
        assert out.encoded_incrementally
        assert out.shared_dictionary is database.shared_dictionary
        assert sorted(out["R"].tuples) == [(1, 2)]

    def test_incremental_answers_equal_fresh_encode(self):
        """Property test over the shared generator
        (:mod:`repro.chaos.deltas`): after every prefix of a seeded
        delta sequence, incremental encoding must answer exactly like
        a from-scratch encode.  A failure is shrunk to the minimal
        delta sequence before being reported."""
        query = parse_query(PATH)
        base = {"R": {(1, 2), (3, 2)}, "S": {(2, 7), (2, 9)}}
        rng = random.Random(20260729)
        deltas = []
        database = EncodedDatabase(base)
        for step in range(12):
            delta = random_delta(rng, database, max_value=40 + step)
            deltas.append(delta)
            database = database.apply(delta)

        def diverges(sequence):
            current = EncodedDatabase(base)
            for delta in sequence:
                current = current.apply(delta)
                fresh = EncodedDatabase(
                    {
                        name: set(rel.tuples)
                        for name, rel in current.relations.items()
                    }
                )
                with repro.use_engine("numpy"):
                    incremental = connect(current).prepare(
                        query, order=["x", "y", "z"]
                    )
                    rebuilt = connect(fresh).prepare(
                        query, order=["x", "y", "z"]
                    )
                if list(incremental) != list(rebuilt):
                    return True
            return False

        if diverges(deltas):
            minimal = shrink_deltas(deltas, diverges)
            pytest.fail(
                "incremental encode diverges from fresh encode; "
                f"minimal failing sequence: {minimal!r}"
            )


class TestVersionedStore:
    def test_apply_bumps_version_and_counts(self):
        store = ArtifactStore(fresh_database())
        assert store.db_version == 0
        version = store.apply(Delta(inserts={"R": {(9, 9)}}))
        assert version == 1 and store.db_version == 1
        stats = store.cache_stats()
        assert stats["deltas_applied"] == 1
        assert stats["db_version"] == 1
        assert (
            stats["incremental_encodes"] + stats["full_reencodes"] == 1
        )

    def test_untouched_decomposition_survives_with_zero_rebuilds(self):
        """The acceptance criterion: after a delta touching R, the
        artifacts of a query over T/U are served from cache — the
        generation counters prove no rebuild happened."""
        store = ArtifactStore(fresh_database())
        session = store.session()
        session.access(PATH, order=["x", "y", "z"])
        session.access(DISJOINT, order=["u", "v", "w"])
        builds_before = store.stats.artifact_builds
        store.apply(Delta(inserts={"R": {(90, 2)}}))
        stats = store.cache_stats()
        # The T/U artifacts (access + forest + preprocessing) plus the
        # data-independent plans/decompositions were carried ...
        assert stats["artifacts_carried"] >= 3
        # ... while the R-touching artifacts were invalidated.
        assert stats["artifacts_invalidated"] >= 3
        # Warm re-access of the untouched decomposition: zero builds.
        warm = store.session()
        warm.access(DISJOINT, order=["u", "v", "w"])
        assert store.stats.artifact_builds == builds_before
        assert warm.stats.bag_materializations == 0
        assert warm.stats.access.hits == 1
        # The touched query rebuilds against the new database.
        touched = store.session()
        access = touched.access(PATH, order=["x", "y", "z"])
        assert store.stats.artifact_builds > builds_before
        assert (90, 2, 7) in iter_rows(access)

    def test_plans_are_carried_across_versions(self):
        store = ArtifactStore(fresh_database())
        session = store.session()
        session.plan(parse_query(PATH))
        store.apply(Delta(inserts={"R": {(50, 51)}}))
        session.plan(parse_query(PATH))
        assert session.stats.advisor_calls == 1  # no re-plan

    def test_old_version_artifacts_are_not_served(self):
        store = ArtifactStore(fresh_database())
        session = store.session()
        before = session.access(PATH, order=["x", "y", "z"])
        store.apply(Delta(deletes={"R": {(1, 2)}}))
        after = session.access(PATH, order=["x", "y", "z"])
        assert len(after) == len(before) - 2  # (1,2,7) and (1,2,9)
        # The pre-delta structure still answers from its snapshot.
        assert len(before) == 5

    def test_direct_put_without_deps_is_invalidated(self):
        store = ArtifactStore(fresh_database())
        store.put("access", "opaque", "value")
        store.apply(Delta(inserts={"R": {(9, 9)}}))
        assert store.get("access", "opaque") is None

    def test_data_independent_put_is_carried(self):
        store = ArtifactStore(fresh_database())
        store.put("plans", "thing", "value", relations=None)
        store.apply(Delta(inserts={"R": {(9, 9)}}))
        assert store.get("plans", "thing") == "value"

    @needs_numpy
    def test_full_reencode_leaves_old_snapshot_mirrors_intact(self):
        """Regression: when a mid-order value forces the full
        re-encode fallback, the new encoding must land on private
        relation copies — the old snapshot's shared relations keep
        their mirrors (and dictionary identity) for in-flight
        old-version builds."""
        store = ArtifactStore(
            {"R": {(10, 20)}, "S": {(20, 30)}}, engine="numpy"
        )
        old_database = store.database
        old_mirrors = {
            name: rel._columnar
            for name, rel in old_database.relations.items()
        }
        assert all(m is not None for m in old_mirrors.values())
        store.apply(Delta(inserts={"R": {(15, 20)}}))  # mid-order
        assert store.cache_stats()["full_reencodes"] == 1
        for name, rel in old_database.relations.items():
            assert rel._columnar is old_mirrors[name]
        new_relations = store.database.relations
        assert new_relations["S"] is not old_database.relations["S"]
        assert (
            new_relations["R"]._columnar.dictionary
            is new_relations["S"]._columnar.dictionary
        )

    def test_validation_failure_leaves_version_alone(self):
        store = ArtifactStore(fresh_database())
        with pytest.raises(DatabaseError):
            store.apply(Delta(inserts={"Nope": {(1, 2)}}))
        assert store.db_version == 0

    def test_empty_delta_is_a_no_op(self):
        """An empty delta must not bump the version or invalidate
        anything (the HTTP client ships no op for it, so local and
        remote apply must agree)."""
        store = ArtifactStore(fresh_database())
        session = store.session()
        session.access(PATH, order=["x", "y", "z"])
        assert store.apply(Delta()) == 0
        stats = store.cache_stats()
        assert stats["deltas_applied"] == 0
        assert stats["artifacts_invalidated"] == 0
        conn = connect(fresh_database())
        view = conn.prepare(PATH, order=["x", "y", "z"])
        assert conn.apply(Delta()) == 0
        assert view[0] == (1, 2, 7)  # still fresh

    @needs_numpy
    def test_encoded_database_store_counts_the_real_path(self):
        """A store over an EncodedDatabase must not double-encode nor
        misreport: a mid-order delta is one full re-encode, an
        append-only delta one incremental encode."""
        store = ArtifactStore(
            EncodedDatabase({"R": {(10, 20)}, "S": {(20, 30)}}),
            engine="numpy",
        )
        store.apply(Delta(inserts={"R": {(15, 20)}}))  # mid-order
        stats = store.cache_stats()
        assert stats["full_reencodes"] == 1
        assert stats["incremental_encodes"] == 0
        assert store.database.encoded_incrementally is False
        store.apply(Delta(inserts={"R": {(40, 41)}}))  # append-only
        stats = store.cache_stats()
        assert stats["incremental_encodes"] == 1
        assert store.database.encoded_incrementally is True


def iter_rows(access) -> list[tuple]:
    return [access.tuple_at(i) for i in range(len(access))]


class TestFacadeStaleness:
    def test_pinned_view_keeps_serving_on_every_read_path(self):
        conn = connect(fresh_database())
        view = conn.prepare(PATH, order=["x", "y", "z"])
        rows = list(view)
        sub = view[1:4]
        sub_rows = sub.to_list()
        assert view.db_version == 0
        version = conn.apply(Delta(inserts={"R": {(9, 9)}}))
        assert version == 1 and conn.db_version == 1
        # The view pinned version 0 at prepare time: every read path
        # keeps answering from that retained MVCC snapshot.
        assert view[0] == rows[0]
        assert list(view) == rows
        assert view.rank((1, 2, 7)) == 0
        assert view.ranks([(1, 2, 7)]) == [0]
        assert view.median() == rows[len(rows) // 2]
        assert len(view) == len(rows)
        assert bool(view)
        assert sub.to_list() == sub_rows  # windows inherit the pin
        assert "AnswerView" in repr(view)
        # A fresh prepare is served at the new head.
        assert conn.prepare(PATH, order=["x", "y", "z"]).db_version == 1

    def test_evicted_snapshot_raises_on_every_read_path(self):
        conn = connect(fresh_database(), retain_versions=1)
        view = conn.prepare(PATH, order=["x", "y", "z"])
        sub = view[1:4]
        # Drop the pins: the version-0 snapshot now lives or dies with
        # the one-deep retention window alone.
        view.close()
        sub.close()
        conn.apply(Delta(inserts={"R": {(9, 9)}}))
        for read in (
            lambda: view[0],
            lambda: list(view),
            lambda: view.rank((1, 2, 7)),
            lambda: view.ranks([(1, 2, 7)]),
            lambda: view.median(),
            lambda: len(view),   # a stale count misleads pagination
            lambda: bool(view),  # ... and emptiness gates
            lambda: sub[0],  # windows inherit the pin
        ):
            with pytest.raises(StaleViewError):
                read()
        assert "AnswerView" in repr(view)  # repr stays usable

    def test_pin_outlives_the_retention_window(self):
        conn = connect(fresh_database(), retain_versions=1)
        view = conn.prepare(PATH, order=["x", "y", "z"])
        rows = list(view)
        conn.apply(Delta(inserts={"R": {(9, 9)}}))
        conn.apply(Delta(deletes={"R": {(9, 9)}}))
        # Even with a one-deep window, the open view's refcount keeps
        # its snapshot alive until the last reader closes.
        assert list(view) == rows
        view.close()
        with pytest.raises(StaleViewError):
            view[0]

    def test_strict_views_fail_fast_on_any_mutation(self):
        conn = connect(fresh_database(), strict_views=True)
        view = conn.prepare(PATH, order=["x", "y", "z"])
        conn.apply(Delta(inserts={"R": {(9, 9)}}))
        with pytest.raises(StaleViewError):
            view[0]
        with pytest.raises(StaleViewError):
            len(view)

    def test_fresh_prepare_serves_post_delta_answers(self):
        conn = connect(fresh_database())
        before = conn.prepare(PATH, order=["x", "y", "z"])
        n = len(before)
        conn.insert("S", [(4, 2)])
        after = conn.prepare(PATH, order=["x", "y", "z"])
        assert after.db_version == 1
        assert len(after) == n + 1
        assert (3, 4, 2) in after
        conn.delete("S", [(4, 2)])
        final = conn.prepare(PATH, order=["x", "y", "z"])
        assert len(final) == n

    def test_incremental_equals_rebuild_per_engine(self):
        """The differential law at the facade: after a seeded
        insert/delete workload from the shared generator
        (:mod:`repro.chaos.deltas` — the same distribution the chaos
        harness drives), an incrementally maintained connection
        answers identically to a from-scratch one, on every engine.
        A failure is shrunk to the minimal delta sequence before
        being reported."""
        for engine in repro.available_engines():
            deltas = delta_sequence(5, fresh_database(), 8)

            def diverges(sequence, engine=engine):
                conn = connect(fresh_database(), engine=engine)
                database = fresh_database()
                for delta in sequence:
                    database = database.apply(delta)
                    conn.apply(delta)
                    live = conn.prepare(PATH, order=["x", "y", "z"])
                    rebuilt = connect(database, engine=engine).prepare(
                        PATH, order=["x", "y", "z"]
                    )
                    if (
                        list(live) != list(rebuilt)
                        or live.db_version != conn.db_version
                    ):
                        return True
                return False

            if diverges(deltas):
                minimal = shrink_deltas(deltas, diverges)
                pytest.fail(
                    f"incremental != rebuild under {engine}; "
                    f"minimal failing sequence: {minimal!r}"
                )


class TestProtocolMutations:
    @pytest.fixture()
    def conn(self):
        return connect(fresh_database())

    def run(self, conn, **fields):
        return execute(
            conn, SessionRequest(**fields), default_query=PATH
        )

    def test_insert_delete_db_version_round_trip(self, conn):
        response = self.run(conn, op="db_version")
        assert response.ok and response.result == {"db_version": 0}
        response = self.run(
            conn, op="insert", relation="R", rows=((9, 9),)
        )
        assert response.ok
        assert response.result == {
            "relation": "R",
            "rows": 1,
            "db_version": 1,
        }
        response = self.run(
            conn, op="delete", relation="R", rows=((9, 9),)
        )
        assert response.ok and response.result["db_version"] == 2

    def test_mutation_ops_validate_their_fields(self, conn):
        response = self.run(conn, op="insert", relation="R")
        assert not response.ok and "rows" in response.error
        response = self.run(
            conn, op="insert", relation="Nope", rows=((1, 2),)
        )
        assert not response.ok
        assert response.error_type == "DatabaseError"

    def test_served_responses_carry_db_version(self, conn):
        response = self.run(conn, op="count", order=("x", "y", "z"))
        assert response.ok and response.result["db_version"] == 0

    def test_pinned_op_is_served_from_the_snapshot(self, conn):
        fresh = self.run(
            conn, op="count", order=("x", "y", "z"), db_version=0
        )
        assert fresh.ok
        n = fresh.result["count"]
        self.run(conn, op="insert", relation="R", rows=((9, 2),))
        pinned = self.run(
            conn, op="count", order=("x", "y", "z"), db_version=0
        )
        assert pinned.ok
        assert pinned.result["count"] == n
        assert pinned.result["db_version"] == 0
        unpinned = self.run(conn, op="count", order=("x", "y", "z"))
        assert unpinned.ok and unpinned.result["db_version"] == 1
        assert unpinned.result["count"] == n + 2  # (9,2,7), (9,2,9)

    def test_evicted_pin_is_replayed_as_staleviewerror(self):
        conn = connect(fresh_database(), retain_versions=1)
        self.run(conn, op="insert", relation="R", rows=((9, 9),))
        stale = self.run(
            conn, op="count", order=("x", "y", "z"), db_version=0
        )
        assert not stale.ok
        assert stale.error_type == "StaleViewError"

    def test_apply_op_one_atomic_version_bump(self, conn):
        response = self.run(
            conn,
            op="apply",
            inserts={"R": ((9, 2),), "S": ((2, 99),)},
            deletes={"T": ((1, 1),)},
        )
        assert response.ok
        assert response.result == {
            "relations": ["R", "S", "T"],
            "rows": 3,
            "db_version": 1,
        }

    def test_effectively_empty_apply_is_a_no_op(self, conn):
        # Deleting an absent row and inserting an existing one leaves
        # the database unchanged: no version bump, current version back.
        response = self.run(
            conn,
            op="apply",
            inserts={"R": ((1, 2),)},
            deletes={"R": ((77, 77),)},
        )
        assert response.ok
        assert response.result["db_version"] == 0
        assert conn.db_version == 0

    def test_apply_op_validates_its_fields(self, conn):
        response = self.run(conn, op="apply")
        assert not response.ok and "inserts" in response.error

    def test_batched_rank_op(self, conn):
        response = self.run(
            conn,
            op="rank",
            order=("x", "y", "z"),
            answers=((1, 2, 7), (9, 9, 9), (3, 4, 1)),
        )
        assert response.ok
        assert response.result["ranks"] == [0, None, 4]

    def test_text_grammar_mutations(self):
        from repro.session.protocol import parse_command

        request = parse_command("insert R 9,9 10,10")
        assert request.op == "insert" and request.relation == "R"
        assert request.rows == ((9, 9), (10, 10))
        request = parse_command("delete R 1,2")
        assert request.op == "delete" and request.rows == ((1, 2),)
        assert parse_command("db_version").op == "db_version"
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            parse_command("insert R")


class TestOverTheWire:
    """Mutations, staleness, and client efficiency over real HTTP."""

    @pytest.fixture()
    def server(self):
        from repro.server import ReproServer

        with ReproServer(fresh_database(), workers=2) as running:
            yield running

    def test_remote_mutations_keep_pinned_views_serving(self, server):
        conn = connect(server.url)
        assert conn.db_version == 0
        view = conn.prepare(PATH, order=["x", "y", "z"])
        assert view.db_version == 0
        rows = list(view)
        n = len(rows)
        version = conn.insert("R", [(9, 2)])
        assert version == 1
        # The pinned view keeps answering from the retained snapshot.
        assert view[0] == rows[0]
        assert view.ranks([(1, 2, 7)]) == [0]
        assert len(view) == n
        fresh = conn.prepare(PATH, order=["x", "y", "z"])
        assert fresh.db_version == 1
        assert len(fresh) == n + 2  # (9,2,7) and (9,2,9)
        assert (9, 2, 7) in fresh
        assert conn.delete("R", [(9, 2)]) == 2

    def test_remote_apply_multi_relation_delta(self, server):
        conn = connect(server.url)
        version = conn.apply(
            Delta(
                inserts={"R": {(9, 2)}, "S": {(2, 99)}},
                deletes={"T": {(1, 1)}},
            )
        )
        assert version == 1  # one atomic bump for the whole delta
        view = conn.prepare(PATH, order=["x", "y", "z"])
        assert (9, 2, 99) in view
        # An effectively-empty delta answers with the current version.
        assert conn.apply(Delta(deletes={"T": {(1, 1)}})) == 1

    def test_batched_ranks_is_one_wire_op_per_chunk(self, server):
        conn = connect(server.url)
        view = conn.prepare(PATH, order=["x", "y", "z"])
        answers = list(view)
        before = conn.stats()["server"]["requests"]
        ranks = view.ranks(answers + [(99, 99, 99), "junk"])
        after = conn.stats()["server"]["requests"]
        assert ranks == list(range(len(answers))) + [None, None]
        assert after - before == 1  # one batch op, not one per tuple

    def test_keep_alive_pool_reuses_sockets(self, server):
        conn = connect(server.url)
        view = conn.prepare(PATH, order=["x", "y", "z"])
        for _ in range(5):
            list(view)
        assert conn.stats()["server"]["requests"] >= 6
        # All of it (healthz + stats + every POST) rode a handful of
        # kept-alive sockets, not one socket per request.
        assert conn._pool.opened <= conn._pool.MAX_IDLE
        conn.close()
        assert conn._pool._closed

    def test_pinned_window_over_the_wire(self, server):
        conn = connect(server.url)
        window = conn.prepare(PATH, order=["x", "y", "z"])[1:3]
        before = window.to_list()
        conn.insert("R", [(42, 2)])
        # Windows inherit the pin: still served from the snapshot.
        assert window.to_list() == before

    def test_pinned_ranks_answer_even_without_a_wire_row(self, server):
        """ranks([]) and ranks of non-sequence rows send nothing, so
        no op would carry the pin — the client probes the snapshot so
        the answer reflects the pinned version, like the local
        AnswerView.ranks."""
        conn = connect(server.url)
        view = conn.prepare(PATH, order=["x", "y", "z"])
        conn.insert("R", [(43, 2)])
        assert view.ranks([]) == []
        assert view.ranks([42]) == [None]  # non-sequence: no wire row
        fresh = conn.prepare(PATH, order=["x", "y", "z"])
        assert fresh.ranks([]) == []
        assert fresh.ranks([42]) == [None]

    def test_evicted_snapshot_is_replayed_over_the_wire(self, server):
        """The server retains a bounded window of snapshots (default
        4): once a pinned version falls out, reads replay the same
        structured StaleViewError a local evicted view raises."""
        conn = connect(server.url)
        view = conn.prepare(PATH, order=["x", "y", "z"])
        for step in range(5):
            conn.insert("R", [(50 + step, 2)])
        assert conn.db_version == 5
        with pytest.raises(StaleViewError):
            view[0]
        with pytest.raises(StaleViewError):
            view.ranks([])  # the probe replays the eviction too
