"""Unit tests for hypergraphs, GYO elimination and disruptive trios."""

import pytest

from repro.hypergraph.disruptive_trios import (
    find_disruptive_trio,
    has_disruptive_trio,
    is_reverse_elimination_order,
    is_tractable_pair,
)
from repro.hypergraph.gyo import (
    gyo_reduce,
    is_acyclic,
    is_elimination_order,
    join_tree,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.catalog import (
    example5_order,
    example5_query,
    example18_query,
    triangle_query,
)
from repro.query.variable_order import VariableOrder


def triangle_hypergraph() -> Hypergraph:
    return Hypergraph.of_query(triangle_query())


class TestHypergraphBasics:
    def test_of_query(self):
        h = Hypergraph.of_query(example5_query())
        assert h.vertices == frozenset({"v1", "v2", "v3", "v4", "v5"})
        assert frozenset({"v1", "v5"}) in h.edges

    def test_unknown_vertices_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(["a"], [["a", "b"]])

    def test_neighbors(self):
        h = Hypergraph.of_query(example5_query())
        assert h.neighbors("v5") == frozenset({"v1", "v3"})
        assert h.neighbors("v3") == frozenset({"v4", "v5"})

    def test_neighbors_of_set(self):
        h = Hypergraph.of_query(example5_query())
        # N({v3, v4, v5}) = {v1, v2} (Example 8)
        assert h.neighbors_of_set({"v3", "v4", "v5"}) == frozenset(
            {"v1", "v2"}
        )

    def test_induced(self):
        h = triangle_hypergraph()
        induced = h.induced({"x1", "x2"})
        assert induced.vertices == frozenset({"x1", "x2"})
        assert frozenset({"x1", "x2"}) in induced.edges

    def test_connected_components(self):
        h = Hypergraph(["a", "b", "c"], [["a", "b"]])
        components = {frozenset(c) for c in h.connected_components()}
        assert components == {frozenset({"a", "b"}), frozenset({"c"})}

    def test_is_clique_and_conformal(self):
        h = triangle_hypergraph()
        assert h.is_clique({"x1", "x2", "x3"})
        assert not h.is_conformal()  # triangle: clique not in an edge
        acyclic = Hypergraph(["a", "b", "c"], [["a", "b", "c"]])
        assert acyclic.is_conformal()


class TestGYO:
    def test_acyclic_cases(self):
        assert is_acyclic(Hypergraph.of_query(example5_query()))
        assert not is_acyclic(triangle_hypergraph())
        assert not is_acyclic(Hypergraph.of_query(example18_query()))

    def test_gyo_residual_of_triangle_is_triangle(self):
        _, residual = gyo_reduce(triangle_hypergraph())
        assert residual.vertices == frozenset({"x1", "x2", "x3"})

    def test_elimination_order_validation(self):
        h = Hypergraph.of_query(example5_query())
        eliminated, residual = gyo_reduce(h)
        assert not residual.vertices
        assert is_elimination_order(h, eliminated)
        assert not is_elimination_order(
            triangle_hypergraph(), ["x1", "x2", "x3"]
        )

    def test_join_tree_of_path(self):
        h = Hypergraph(
            ["a", "b", "c", "d"], [["a", "b"], ["b", "c"], ["c", "d"]]
        )
        parent = join_tree(h)
        roots = [e for e, p in parent.items() if p is None]
        assert len(roots) == 1
        assert set(parent) == set(h.edges)

    def test_join_tree_rejects_cyclic(self):
        with pytest.raises(ValueError):
            join_tree(triangle_hypergraph())

    def test_join_tree_running_intersection(self):
        h = Hypergraph.of_query(example5_query()).with_extra_edges(
            [
                {"v1", "v3", "v5"},
                {"v2", "v3", "v4"},
                {"v1", "v2", "v3"},
            ]
        )
        parent = join_tree(h)
        # Every vertex's bags must form a connected subtree.
        for vertex in h.vertices:
            bags = [e for e in parent if vertex in e]
            # walk each bag upward; the set of bags containing the vertex
            # must be connected: check each non-root bag's parent chain
            # hits another bag containing the vertex or all others do.
            containing = set(bags)
            if len(containing) <= 1:
                continue
            reachable = set()
            for bag in containing:
                up = parent[bag]
                while up is not None and up not in containing:
                    up = parent.get(up)
                if up is not None:
                    reachable.add((bag, up))
            # all but one (the top one) must connect upward inside the set
            assert len(reachable) >= len(containing) - 1


class TestDisruptiveTrios:
    def test_example5_has_trio(self):
        h = Hypergraph.of_query(example5_query())
        trio = find_disruptive_trio(h, example5_order())
        assert trio is not None
        first, second, late = trio
        assert late in h.neighbors(first) and late in h.neighbors(second)
        assert second not in h.neighbors(first)

    def test_example18_has_no_trio(self):
        h = Hypergraph.of_query(example18_query())
        assert not has_disruptive_trio(h, example5_order())

    def test_star_center_first_is_tractable(self):
        h = Hypergraph(
            ["x1", "x2", "z"], [["x1", "z"], ["x2", "z"]]
        )
        assert is_tractable_pair(h, VariableOrder(["z", "x1", "x2"]))
        assert not is_tractable_pair(
            h, VariableOrder(["x1", "x2", "z"])
        )

    def test_trio_characterization_matches_elimination(self):
        # Brault-Baron: reverse elimination order <=> acyclic & trio-free.
        from itertools import permutations

        for h in (
            Hypergraph.of_query(example5_query()),
            Hypergraph(
                ["x1", "x2", "z"], [["x1", "z"], ["x2", "z"]]
            ),
            triangle_hypergraph(),
        ):
            for perm in permutations(sorted(h.vertices)):
                order = VariableOrder(perm)
                lhs = is_reverse_elimination_order(h, order)
                rhs = is_acyclic(h) and not has_disruptive_trio(
                    h, order
                )
                assert lhs == rhs, (perm, lhs, rhs)
