"""Oracle tests for the direct-access engine (Theorems 1, 10)."""


import pytest

from repro.core.access import DirectAccess
from repro.core.preprocessing import Preprocessing
from repro.data.database import Database
from repro.errors import OrderError, OutOfBoundsError
from repro.query.catalog import (
    example5_order,
    example5_query,
    example18_query,
    four_cycle_query,
    loomis_whitney_query,
    path_query,
    star_bad_order,
    star_query,
    triangle_query,
)
from repro.query.parser import parse_query
from repro.query.variable_order import VariableOrder, all_orders
from tests.conftest import (
    lex_answers,
    random_database_for,
    random_join_query,
    random_order,
)


def check_against_oracle(query, order, database):
    access = DirectAccess(query, order, database)
    expected = lex_answers(query, database, order)
    assert len(access) == len(expected)
    got = [access.tuple_at(i) for i in range(len(access))]
    assert got == expected
    return access


class TestSmall:
    def test_two_path(self):
        q = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        db = Database({"R": {(1, 2), (3, 2)}, "S": {(2, 7), (2, 9)}})
        access = check_against_oracle(q, VariableOrder(["x", "y", "z"]), db)
        assert access.tuple_at(0) == (1, 2, 7)
        assert access.answer_at(3) == {"x": 3, "y": 2, "z": 9}

    def test_out_of_bounds(self):
        q = parse_query("Q(x) :- R(x)")
        db = Database({"R": {(1,), (2,)}})
        access = DirectAccess(q, VariableOrder(["x"]), db)
        with pytest.raises(OutOfBoundsError):
            access.answer_at(2)
        with pytest.raises(OutOfBoundsError):
            access.answer_at(-1)

    def test_negative_python_indexing(self):
        q = parse_query("Q(x) :- R(x)")
        db = Database({"R": {(1,), (2,), (5,)}})
        access = DirectAccess(q, VariableOrder(["x"]), db)
        assert access[-1] == {"x": 5}

    def test_empty_result(self):
        q = parse_query("Q(x, y) :- R(x, y), S(y)")
        db = Database({"R": {(1, 2)}, "S": {(9,)}})
        access = DirectAccess(q, VariableOrder(["x", "y"]), db)
        assert len(access) == 0
        assert not access

    def test_iteration_is_ordered_enumeration(self):
        q = parse_query("Q(x, y) :- R(x, y)")
        db = Database({"R": {(2, 1), (1, 1), (1, 9)}})
        access = DirectAccess(q, VariableOrder(["x", "y"]), db)
        assert [a["x"] for a in access] == [1, 1, 2]

    def test_order_must_match_query(self):
        q = parse_query("Q(x, y) :- R(x, y)")
        db = Database({"R": {(1, 2)}})
        with pytest.raises(OrderError):
            DirectAccess(q, VariableOrder(["x"]), db)

    def test_cartesian_product_count(self):
        q = parse_query("Q(x, y) :- R(x), S(y)")
        db = Database({"R": {(1,), (2,)}, "S": {(5,), (6,), (7,)}})
        access = check_against_oracle(q, VariableOrder(["y", "x"]), db)
        assert len(access) == 6

    def test_repeated_variable_atom(self):
        q = parse_query("Q(x, y) :- R(x, x), S(x, y)")
        db = Database(
            {"R": {(1, 1), (2, 3)}, "S": {(1, 5), (2, 6), (1, 7)}}
        )
        check_against_oracle(q, VariableOrder(["x", "y"]), db)


class TestPaperQueries:
    def test_example5_all_orders(self, rng):
        query = example5_query()
        db = random_database_for(query, rng, rows=15, domain=4)
        for order in list(all_orders(query))[::12]:  # sample of orders
            check_against_oracle(query, order, db)

    def test_example18(self, rng):
        query = example18_query()
        db = random_database_for(query, rng, rows=20, domain=4)
        check_against_oracle(query, example5_order(), db)

    def test_star_bad_order(self, rng):
        for k in (2, 3):
            query = star_query(k)
            db = random_database_for(query, rng, rows=20, domain=5)
            check_against_oracle(query, star_bad_order(k), db)

    def test_triangle_and_lw4(self, rng):
        for query in (triangle_query(), loomis_whitney_query(4)):
            db = random_database_for(query, rng, rows=15, domain=3)
            check_against_oracle(
                query, VariableOrder(query.variables), db
            )

    def test_four_cycle_lexicographic(self, rng):
        query = four_cycle_query()
        db = random_database_for(query, rng, rows=25, domain=4)
        check_against_oracle(
            query, VariableOrder(["x1", "x2", "x3", "x4"]), db
        )

    def test_long_path(self, rng):
        query = path_query(5)
        db = random_database_for(query, rng, rows=25, domain=4)
        check_against_oracle(
            query, VariableOrder(query.variables), db
        )
        # reversed order has disruptive trios? path reversed is fine, use
        # an interleaved order which does have them:
        check_against_oracle(
            query,
            VariableOrder(["x1", "x3", "x5", "x2", "x4", "x6"]),
            db,
        )


class TestRandomized:
    def test_many_random_queries(self, rng):
        for _ in range(60):
            query = random_join_query(rng)
            order = random_order(query, rng)
            db = random_database_for(
                query, rng, rows=rng.randint(3, 15), domain=3
            )
            check_against_oracle(query, order, db)

    def test_larger_domains(self, rng):
        for _ in range(10):
            query = random_join_query(rng)
            order = random_order(query, rng)
            db = random_database_for(query, rng, rows=40, domain=10)
            check_against_oracle(query, order, db)


class TestPreprocessing:
    def test_bag_tables_join_to_answers(self, rng):
        query = example5_query()
        db = random_database_for(query, rng, rows=15, domain=4)
        prep = Preprocessing(query, example5_order(), db)
        from repro.joins.generic_join import generic_join

        joined = generic_join(
            [p.table for p in prep.bags], list(example5_order())
        )
        expected = set(lex_answers(query, db, example5_order()))
        assert joined.rows == expected

    def test_materialized_size_reported(self, rng):
        query = path_query(2)
        db = random_database_for(query, rng)
        prep = Preprocessing(
            query, VariableOrder(["x1", "x2", "x3"]), db
        )
        assert prep.materialized_size() == sum(
            len(p.table) for p in prep.bags
        )
        assert prep.incompatibility_number == 1

    def test_bag_schemas_follow_order(self, rng):
        query = example5_query()
        db = random_database_for(query, rng)
        prep = Preprocessing(query, example5_order(), db)
        position = {v: i for i, v in enumerate(example5_order())}
        for item in prep.bags:
            positions = [position[v] for v in item.table.schema]
            assert positions == sorted(positions)
            assert item.table.schema[-1] == item.bag.variable


class TestExactAtomEnforcement:
    """Atoms outside a bag's fractional cover must still be enforced.

    The bag of y for Q(x,y,z) :- R(x,y), S(y,z), T(y) with order
    (x,y,z) is covered by R alone; T(y) only enters through the exact
    semijoin filter of the preprocessing. Dropping that filter would
    silently ignore T — this test pins the behaviour down.
    """

    def test_unary_filter_atom_is_respected(self):
        from repro.data.database import Database

        q = parse_query("Q(x, y, z) :- R(x, y), S(y, z), T(y)")
        db = Database(
            {
                "R": {(1, 2), (1, 3), (4, 2)},
                "S": {(2, 7), (3, 8)},
                "T": {(2,)},  # only y = 2 allowed
            }
        )
        access = DirectAccess(q, VariableOrder(["x", "y", "z"]), db)
        answers = [access.tuple_at(i) for i in range(len(access))]
        assert answers == [(1, 2, 7), (4, 2, 7)]

    def test_binary_filter_atom_inside_larger_bag(self):
        from repro.data.database import Database

        # U(x, z) is covered by neither R nor S at the z-bag of the
        # order (x, y, z) — bag {x, y, z} arises and U filters it.
        q = parse_query("Q(x, y, z) :- R(x, y), S(y, z), U(x, z)")
        db = Database(
            {
                "R": {(1, 2), (5, 2)},
                "S": {(2, 7), (2, 9)},
                "U": {(1, 7), (5, 9)},
            }
        )
        access = DirectAccess(q, VariableOrder(["x", "y", "z"]), db)
        answers = [access.tuple_at(i) for i in range(len(access))]
        assert answers == [(1, 2, 7), (5, 2, 9)]

    def test_duplicate_scope_atoms_both_enforced(self):
        from repro.data.database import Database

        q = parse_query("Q(x, y) :- R(x, y), S(x, y)")
        db = Database(
            {
                "R": {(1, 2), (3, 4)},
                "S": {(1, 2), (5, 6)},
            }
        )
        access = DirectAccess(q, VariableOrder(["x", "y"]), db)
        assert [access.tuple_at(i) for i in range(len(access))] == [
            (1, 2)
        ]
