"""Unit tests for relations, databases and generators."""

import pytest

from repro.data.database import Database
from repro.data.generators import (
    agm_worstcase_triangle_database,
    bipartite_path_database,
    four_cycle_database,
    functional_path_database,
    random_database,
    sizes_sweep,
    star_database,
    zipf_database,
)
from repro.data.relation import Relation
from repro.errors import DatabaseError
from repro.query.catalog import (
    four_cycle_query,
    path_query,
    star_query,
    triangle_query,
)
from repro.query.parser import parse_query


class TestRelation:
    def test_dedup_and_len(self):
        r = Relation([(1, 2), (1, 2), (3, 4)])
        assert len(r) == 2

    def test_sorted_iteration(self):
        r = Relation([(3, 1), (1, 2)])
        assert list(r) == [(1, 2), (3, 1)]

    def test_arity_mismatch_rejected(self):
        with pytest.raises(DatabaseError):
            Relation([(1,), (1, 2)])

    def test_empty_needs_arity(self):
        with pytest.raises(DatabaseError):
            Relation([])
        assert len(Relation([], arity=2)) == 0

    def test_contains(self):
        r = Relation([(1, 2)])
        assert (1, 2) in r
        assert (2, 1) not in r

    def test_project(self):
        r = Relation([(1, 2), (3, 2)])
        assert r.project([1]).tuples == frozenset({(2,)})
        with pytest.raises(DatabaseError):
            r.project([5])

    def test_filtered(self):
        r = Relation([(1, 2), (3, 4)])
        assert len(r.filtered(lambda t: t[0] > 1)) == 1

    def test_active_domain(self):
        assert Relation([(1, 2)]).active_domain() == {1, 2}


class TestDatabase:
    def test_size_is_total_tuples(self):
        db = Database({"R": {(1, 2)}, "S": {(1,), (2,)}})
        assert len(db) == 3

    def test_missing_relation(self):
        db = Database({"R": {(1, 2)}})
        with pytest.raises(DatabaseError):
            db["S"]

    def test_domain(self):
        db = Database({"R": {(1, 2)}, "S": {(7,)}})
        assert db.domain() == {1, 2, 7}

    def test_validate_for(self):
        q = parse_query("Q(x, y) :- R(x, y)")
        Database({"R": {(1, 2)}}).validate_for(q)
        with pytest.raises(DatabaseError):
            Database({"R": {(1,)}}).validate_for(q)

    def test_extended(self):
        db = Database({"R": {(1, 2)}})
        bigger = db.extended({"S": {(3,)}})
        assert "S" in bigger and "S" not in db


class TestGenerators:
    def test_random_database_shapes(self):
        q = triangle_query()
        db = random_database(q, 50, 10, seed=1)
        assert set(db.relations) == {"R1", "R2", "R3"}
        for rel in db.relations.values():
            assert rel.arity == 2 and len(rel) <= 50

    def test_functional_path_has_linear_output(self):
        from repro.joins.generic_join import evaluate

        q = path_query(3)
        db = functional_path_database(3, 30, seed=2)
        assert len(evaluate(q, db)) == 30

    def test_bipartite_path_quadratic_output(self):
        from repro.joins.generic_join import evaluate

        q = path_query(2)
        db = bipartite_path_database(10, 2)
        assert len(db) == 2 * 10 * 2
        assert len(evaluate(q, db)) == 100 * 2

    def test_agm_triangle_worst_case(self):
        from repro.joins.generic_join import evaluate

        db = agm_worstcase_triangle_database(4)
        answers = evaluate(triangle_query(), db)
        assert len(answers) == 64  # side^3 = |R|^{3/2}

    def test_star_database_arities(self):
        db = star_database(3, sets=5, set_size=4, universe=10, seed=0)
        q = star_query(3)
        db.validate_for(q)

    def test_four_cycle_database_validates(self):
        db = four_cycle_database(40, seed=0)
        db.validate_for(four_cycle_query())

    def test_zipf_database(self):
        q = path_query(2)
        db = zipf_database(q, 100, 50, skew=1.5, seed=1)
        db.validate_for(q)

    def test_sizes_sweep(self):
        assert sizes_sweep(100, 2.0, 3) == [100, 200, 400]

    def test_generators_deterministic(self):
        q = triangle_query()
        assert random_database(q, 20, 5, seed=9) == random_database(
            q, 20, 5, seed=9
        )
