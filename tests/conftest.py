"""Shared helpers and fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.generic_join import evaluate
from repro.query.atoms import Atom
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder


def lex_answers(
    query: JoinQuery, database: Database, order: VariableOrder
) -> list[tuple]:
    """Brute-force oracle: all answers sorted by the given lex order."""
    result = evaluate(query, database, list(order))
    return sorted(tuple(row) for row in result.rows)


def random_join_query(rng: random.Random) -> JoinQuery:
    """A small random join query over variables a..e (possibly cyclic)."""
    variables = ["a", "b", "c", "d", "e"][: rng.randint(2, 5)]
    atom_count = rng.randint(1, 4)
    atoms = []
    used: set[str] = set()
    for i in range(atom_count):
        arity = rng.randint(1, min(3, len(variables)))
        scope = rng.sample(variables, arity)
        atoms.append(Atom(f"R{i}", tuple(scope)))
        used.update(scope)
    # Guarantee every variable occurs in some atom.
    missing = [v for v in variables if v not in used]
    if missing:
        atoms.append(Atom(f"R{atom_count}", tuple(missing)))
    return JoinQuery(tuple(atoms))


def random_database_for(
    query: JoinQuery,
    rng: random.Random,
    rows: int = 12,
    domain: int = 4,
) -> Database:
    """Random data with a small domain (dense enough to join)."""
    relations = {}
    for symbol in query.relation_symbols:
        arity = query.arity_of(symbol)
        tuples = {
            tuple(rng.randrange(domain) for _ in range(arity))
            for _ in range(rows)
        }
        relations[symbol] = Relation(tuples, arity=arity)
    return Database(relations)


def random_order(query: JoinQuery, rng: random.Random) -> VariableOrder:
    variables = list(query.variables)
    rng.shuffle(variables)
    return VariableOrder(variables)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20220614)
