"""Tests for the self-join elimination pipeline (Section 6, Theorem 33)."""

from repro.core.selfjoins import SelfJoinFreeAccess, duplicate_relations
from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.generic_join import evaluate
from repro.query.catalog import running_selfjoin_query
from repro.query.parser import parse_query
from repro.query.transforms import self_join_free_version
from repro.query.variable_order import VariableOrder


def oracle(query_sf, database_sf, order):
    rows = evaluate(query_sf, database_sf, list(order)).rows
    return sorted(tuple(r) for r in rows)


def check(query, order, database_sf):
    access = SelfJoinFreeAccess(query, order, database_sf)
    expected = oracle(
        self_join_free_version(query), database_sf, order
    )
    assert len(access) == len(expected)
    got = [access.tuple_at(i) for i in range(len(access))]
    assert got == expected
    return access


class TestExample37:
    """Q(x, y, z) :- R(x), R(y), R(z) — the running example of §6.3."""

    def test_small_instance(self):
        query = running_selfjoin_query()
        db = Database(
            {
                "R__x": {(1,), (4,)},
                "R__y": {(2,), (4,)},
                "R__z": {(3,)},
            }
        )
        access = check(query, VariableOrder(["x", "y", "z"]), db)
        assert access.answer_at(0) == {"x": 1, "y": 2, "z": 3}

    def test_overlapping_relations(self):
        query = running_selfjoin_query()
        db = Database(
            {
                "R__x": {(1,), (2,)},
                "R__y": {(1,), (2,)},
                "R__z": {(1,), (2,)},
            }
        )
        access = check(query, VariableOrder(["x", "y", "z"]), db)
        assert len(access) == 8

    def test_empty_relation(self):
        query = running_selfjoin_query()
        db = Database(
            {
                "R__x": {(1,)},
                "R__y": Relation([], arity=1),
                "R__z": {(2,)},
            }
        )
        access = SelfJoinFreeAccess(
            query, VariableOrder(["x", "y", "z"]), db
        )
        assert len(access) == 0


class TestBinarySelfJoins:
    def test_shared_binary_relation(self):
        # Q(x, y, z) :- R(x, y), R(y, z): self-join free version has
        # two distinct symbols over the same shape.
        query = parse_query("Q(x, y, z) :- R(x, y), R(y, z)")
        db = Database(
            {
                "R__x_y": {(1, 2), (2, 2), (5, 1)},
                "R__y_z": {(2, 7), (2, 8), (1, 1)},
            }
        )
        check(query, VariableOrder(["x", "y", "z"]), db)

    def test_symmetric_pair(self):
        # Q(x, y) :- R(x, y), R(y, x) has a nontrivial automorphism.
        query = parse_query("Q(x, y) :- R(x, y), R(y, x)")
        db = Database(
            {
                "R__x_y": {(1, 2), (2, 1), (3, 3)},
                "R__y_x": {(2, 1), (1, 2), (3, 3), (4, 4)},
            }
        )
        check(query, VariableOrder(["x", "y"]), db)

    def test_mixed_symbols(self):
        # Self-join on R plus an independent S atom.
        query = parse_query("Q(x, y) :- R(x), R(y), S(x, y)")
        db = Database(
            {
                "R__x": {(1,), (2,), (3,)},
                "R__y": {(2,), (3,)},
                "S__x_y": {(1, 2), (2, 2), (3, 2), (1, 3)},
            }
        )
        check(query, VariableOrder(["y", "x"]), db)


class TestTrivialDirection:
    def test_duplicate_relations(self):
        query = parse_query("Q(x, y, z) :- R(x, y), R(y, z)")
        db_for_q = Database({"R": {(1, 2), (2, 3)}})
        db_sf = duplicate_relations(query, db_for_q)
        assert db_sf["R__x_y"] == db_for_q["R"]
        assert db_sf["R__y_z"] == db_for_q["R"]
        sf = self_join_free_version(query)
        assert {
            tuple(r) for r in evaluate(sf, db_sf, ["x", "y", "z"]).rows
        } == {(1, 2, 3)}
