"""Tests for the testing task (§2.2) and answer ranking."""

import pytest

from repro.core.access import DirectAccess
from repro.core.testing import AnswerTester
from repro.data.database import Database
from repro.errors import OrderError
from repro.query.parser import parse_query
from repro.query.variable_order import VariableOrder
from tests.conftest import (
    lex_answers,
    random_database_for,
    random_join_query,
    random_order,
)


class TestMembership:
    def test_small(self):
        q = parse_query("Q(x, y) :- R(x, y)")
        db = Database({"R": {(1, 2), (3, 4)}})
        tester = AnswerTester(
            DirectAccess(q, VariableOrder(["x", "y"]), db)
        )
        assert tester.contains((1, 2))
        assert tester.contains((3, 4))
        assert not tester.contains((1, 4))
        assert not tester.contains((0, 0))
        assert not tester.contains((9, 9))

    def test_mapping_interface(self):
        q = parse_query("Q(x, y) :- R(x, y)")
        db = Database({"R": {(1, 2)}})
        tester = AnswerTester(
            DirectAccess(q, VariableOrder(["y", "x"]), db)
        )
        assert tester.contains_mapping({"x": 1, "y": 2})
        assert tester.variables == ("y", "x")

    def test_wrong_arity(self):
        q = parse_query("Q(x) :- R(x)")
        db = Database({"R": {(1,)}})
        tester = AnswerTester(
            DirectAccess(q, VariableOrder(["x"]), db)
        )
        with pytest.raises(OrderError):
            tester.contains((1, 2))

    def test_random_membership(self, rng):
        for _ in range(15):
            query = random_join_query(rng)
            order = random_order(query, rng)
            db = random_database_for(query, rng, rows=10, domain=3)
            access = DirectAccess(query, order, db)
            tester = AnswerTester(access)
            answers = set(lex_answers(query, db, order))
            # every true answer is found
            for answer in answers:
                assert tester.contains(answer)
            # random non-answers are rejected
            width = len(list(order))
            for _ in range(10):
                candidate = tuple(
                    rng.randrange(4) for _ in range(width)
                )
                assert tester.contains(candidate) == (
                    candidate in answers
                )


class TestRank:
    def test_rank_is_inverse_of_access(self, rng):
        query = random_join_query(rng)
        order = random_order(query, rng)
        db = random_database_for(query, rng, rows=15, domain=3)
        access = DirectAccess(query, order, db)
        tester = AnswerTester(access)
        for index in range(len(access)):
            assert tester.rank(access.tuple_at(index)) == index

    def test_rank_of_non_answer(self):
        q = parse_query("Q(x) :- R(x)")
        db = Database({"R": {(1,)}})
        tester = AnswerTester(
            DirectAccess(q, VariableOrder(["x"]), db)
        )
        with pytest.raises(KeyError):
            tester.rank((2,))


class TestPrefixCounts:
    def test_count_with_prefix(self):
        q = parse_query("Q(x, y) :- R(x, y)")
        db = Database({"R": {(1, 2), (1, 3), (2, 9)}})
        tester = AnswerTester(
            DirectAccess(q, VariableOrder(["x", "y"]), db)
        )
        assert tester.count_with_prefix(()) == 3
        assert tester.count_with_prefix((1,)) == 2
        assert tester.count_with_prefix((2,)) == 1
        assert tester.count_with_prefix((7,)) == 0
