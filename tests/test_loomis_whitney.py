"""Tests for Loomis-Whitney joins and the §9 constructions."""

from fractions import Fraction

from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph
from repro.joins.generic_join import evaluate
from repro.lowerbounds.loomis_whitney import (
    MaterializingEnumerator,
    lw_database_from_set_intersection,
    triangle_database_from_set_intersection,
)
from repro.lowerbounds.setdisjointness import SetSystem
from repro.lp.covers import fractional_edge_cover_number
from repro.query.catalog import loomis_whitney_query, triangle_query


class TestLWQueries:
    def test_lw3_is_triangle(self):
        lw3 = loomis_whitney_query(3)
        tri = triangle_query()
        assert {a.scope for a in lw3.atoms} == {
            a.scope for a in tri.atoms
        }

    def test_lw_is_cyclic(self):
        for k in (3, 4, 5):
            assert not is_acyclic(
                Hypergraph.of_query(loomis_whitney_query(k))
            )

    def test_lw_cover_number(self):
        # ρ*(LW_k) = 1 + 1/(k-1): the preprocessing exponent Theorem 53
        # proves optimal.
        for k in (3, 4, 5):
            h = Hypergraph.of_query(loomis_whitney_query(k))
            assert fractional_edge_cover_number(h) == 1 + Fraction(
                1, k - 1
            )


class TestTheorem53Construction:
    def test_triangle_answers_are_enumeration_answers(self):
        instance = SetSystem.random(2, 6, 4, 12, seed=2)
        queries = {(0, 1), (2, 3), (4, 5), (1, 1)}
        db = triangle_database_from_set_intersection(instance, queries)
        answers = {
            tuple(r)
            for r in evaluate(
                triangle_query(), db, ["x1", "x2", "x3"]
            ).rows
        }
        expected = {
            (j1, j2, v)
            for (j1, j2) in queries
            for v in instance.families[0][j1] & instance.families[1][j2]
        }
        assert answers == expected

    def test_lw4_with_padding(self):
        instance = SetSystem.random(3, 4, 3, 8, seed=1)
        queries = {(0, 1, 2), (1, 2, 3), (3, 0, 1)}
        db = lw_database_from_set_intersection(
            instance, queries, padding_domain=4
        )
        lw4 = loomis_whitney_query(4)
        answers = {
            tuple(r)
            for r in evaluate(
                lw4, db, ["x1", "x2", "x3", "x4"]
            ).rows
        }
        expected = {
            (j1, j2, j3, v)
            for (j1, j2, j3) in queries
            for v in (
                instance.families[0][j1]
                & instance.families[1][j2]
                & instance.families[2][j3]
            )
        }
        assert answers == expected

    def test_padding_size_accounting(self):
        instance = SetSystem.random(3, 3, 2, 6, seed=0)
        db = lw_database_from_set_intersection(
            instance, {(0, 0, 0)}, padding_domain=5
        )
        # each pair gets 5^{k-3} = 5 padded copies for k = 4
        for i in range(1, 4):
            family = instance.families[i % 3]
            pairs = sum(len(s) for s in family)
            assert len(db[f"R{i}"]) == pairs * 5


class TestMaterializingEnumerator:
    def test_enumerates_everything(self):
        instance = SetSystem.random(2, 5, 4, 10, seed=3)
        queries = {(0, 0), (1, 2), (3, 4)}
        db = triangle_database_from_set_intersection(instance, queries)
        enumerator = MaterializingEnumerator(triangle_query(), db)
        index = {v: i for i, v in enumerate(enumerator.variables)}
        got = {
            (r[index["x1"]], r[index["x2"]], r[index["x3"]])
            for r in enumerator
        }
        expected = {
            (j1, j2, v)
            for (j1, j2) in queries
            for v in instance.families[0][j1] & instance.families[1][j2]
        }
        assert got == expected
        assert len(enumerator) == len(expected)
        assert enumerator.preprocessing_seconds >= 0
