"""Run the doctests embedded in module docstrings."""

import doctest

import repro
import repro.query.parser


def test_package_quickstart_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_parser_doctest():
    results = doctest.testmod(repro.query.parser, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_facade_doctest():
    import repro.facade

    results = doctest.testmod(repro.facade, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_protocol_doctest():
    import repro.session.protocol

    results = doctest.testmod(repro.session.protocol, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1
