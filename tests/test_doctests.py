"""Run the doctests embedded in module docstrings."""

import doctest

import repro
import repro.query.parser


def test_package_quickstart_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_parser_doctest():
    results = doctest.testmod(repro.query.parser, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_facade_doctest():
    import repro.facade

    results = doctest.testmod(repro.facade, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_protocol_doctest():
    import repro.session.protocol

    results = doctest.testmod(repro.session.protocol, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_cache_doctest():
    """The cost-informed (GreedyDual) eviction example is executable."""
    import repro.session.cache

    results = doctest.testmod(repro.session.cache, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_artifact_store_doctest():
    """Per-worker sessions over one store: encoded exactly once."""
    import repro.session.artifacts

    results = doctest.testmod(repro.session.artifacts, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_server_doctests():
    """The HTTP layer's runnable examples (transport error shape,
    URL normalization); the live-server examples are +SKIP."""
    import repro.server.client
    import repro.server.http

    for module in (repro.server.http, repro.server.client):
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, module.__name__
        assert results.attempted >= 1, module.__name__
