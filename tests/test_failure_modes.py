"""Failure-injection tests: the library must fail loudly and precisely."""

import pytest

from repro.core.access import DirectAccess
from repro.core.projections import partial_order_access
from repro.data.database import Database
from repro.data.relation import Relation
from repro.errors import (
    DatabaseError,
    OrderError,
    OutOfBoundsError,
    QueryError,
    ReproError,
)
from repro.query.catalog import projected_star_query
from repro.query.parser import parse_query
from repro.query.variable_order import VariableOrder


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for error_type in (
            DatabaseError,
            OrderError,
            OutOfBoundsError,
            QueryError,
        ):
            assert issubclass(error_type, ReproError)

    def test_out_of_bounds_is_index_error(self):
        # direct-access objects behave like sequences in for loops
        assert issubclass(OutOfBoundsError, IndexError)

    def test_for_loop_terminates_via_getitem(self):
        q = parse_query("Q(x) :- R(x)")
        db = Database({"R": {(1,), (2,)}})
        access = DirectAccess(q, VariableOrder(["x"]), db)
        collected = [a["x"] for a in access]
        assert collected == [1, 2]


class TestDatabaseMismatches:
    def test_missing_relation(self):
        q = parse_query("Q(x, y) :- R(x, y), S(y)")
        db = Database({"R": {(1, 2)}})
        with pytest.raises(DatabaseError):
            DirectAccess(q, VariableOrder(["x", "y"]), db)

    def test_wrong_arity(self):
        q = parse_query("Q(x, y) :- R(x, y)")
        db = Database({"R": {(1, 2, 3)}})
        with pytest.raises(DatabaseError):
            DirectAccess(q, VariableOrder(["x", "y"]), db)

    def test_extra_relations_are_fine(self):
        q = parse_query("Q(x) :- R(x)")
        db = Database({"R": {(1,)}, "Unused": {(9, 9)}})
        assert len(DirectAccess(q, VariableOrder(["x"]), db)) == 1


class TestOrderMismatches:
    def test_order_with_foreign_variable(self):
        q = parse_query("Q(x) :- R(x)")
        db = Database({"R": {(1,)}})
        with pytest.raises(OrderError):
            DirectAccess(q, VariableOrder(["x", "ghost"]), db)

    def test_projected_must_be_suffix(self):
        q = parse_query("Q(x, y) :- R(x, y)")
        db = Database({"R": {(1, 2)}})
        with pytest.raises(OrderError):
            DirectAccess(
                q,
                VariableOrder(["x", "y"]),
                db,
                projected=frozenset({"x"}),  # x is first, not a suffix
            )

    def test_partial_order_with_projected_variable(self):
        q = projected_star_query(2)
        db = Database({"R1": {(0, 1)}, "R2": {(0, 1)}})
        with pytest.raises(OrderError):
            # z is projected: it cannot be part of the partial order
            partial_order_access(q, VariableOrder(["z"]), db)


class TestDegenerateInputs:
    def test_all_relations_empty(self):
        q = parse_query("Q(x, y) :- R(x, y), S(y, x)")
        db = Database(
            {
                "R": Relation([], arity=2),
                "S": Relation([], arity=2),
            }
        )
        access = DirectAccess(q, VariableOrder(["x", "y"]), db)
        assert len(access) == 0
        with pytest.raises(OutOfBoundsError):
            access.tuple_at(0)

    def test_singleton_everything(self):
        q = parse_query("Q(x) :- R(x), S(x)")
        db = Database({"R": {(7,)}, "S": {(7,)}})
        access = DirectAccess(q, VariableOrder(["x"]), db)
        assert [a for a in access] == [{"x": 7}]

    def test_mixed_type_columns_consistent(self):
        # Strings and ints may coexist across columns, not within one.
        q = parse_query("Q(name, score) :- R(name, score)")
        db = Database({"R": {("alice", 3), ("bob", 1)}})
        access = DirectAccess(
            q, VariableOrder(["score", "name"]), db
        )
        assert access.tuple_at(0) == (1, "bob")

    def test_tuple_valued_constants(self):
        # The reductions pack roles into tuple constants; the engine
        # must order them like any other domain.
        q = parse_query("Q(x, y) :- R(x, y)")
        db = Database({"R": {((1, 2), (0,)), ((1, 1), (5,))}})
        access = DirectAccess(q, VariableOrder(["x", "y"]), db)
        assert access.tuple_at(0) == ((1, 1), (5,))
