"""Shard-by-code-range serving (:mod:`repro.session.sharding`).

The differential law of the sharding router: for every shardable
request, the merged response dict is **bit-identical** to what the
unsharded protocol executor returns over the whole database — same
result values, same error types, same error messages — under both
engines.  Divergences exist only where sharding is read-only by
construction (mutations) or structurally constrained (orders must
start with the partitioned variable), and those are pinned too.

The same law extends across the transport seam: an
:class:`~repro.server.client.HTTPShardExecutor` fanning the identical
requests out to real ``repro serve`` replicas must merge to the same
bits as the in-process :func:`local_shard_executor` — proving shard
backends can live on other hosts without changing a single answer.
"""

from __future__ import annotations

import pytest

from repro.data.database import Database
from repro.errors import QueryError
from repro.facade import connect
from repro.server.client import HTTPShardExecutor
from repro.server.http import ReproServer
from repro.session.protocol import SessionRequest, execute
from repro.session.sharding import (
    ShardedExecutor,
    local_shard_executor,
    plan_shards,
    shard_databases,
)

QUERY = "Q(x, y, z) :- R(x, y), S(y, z)"
RELATIONS = {
    "R": {(i, i % 7) for i in range(80)},
    "S": {(j, j * 2) for j in range(7)},
}
ORDER = ("x", "y", "z")


def request(op, **kwargs):
    kwargs.setdefault("query", QUERY)
    kwargs.setdefault("order", ORDER)
    return SessionRequest(op=op, **kwargs)


@pytest.fixture(params=["python", "numpy"])
def engine(request):
    return request.param


@pytest.fixture()
def executor(engine):
    database = Database(RELATIONS)
    plan = plan_shards(database, QUERY, shards=3, variable="x")
    databases = shard_databases(database, plan)
    return ShardedExecutor(
        plan, local_shard_executor(databases, engine)
    )


@pytest.fixture()
def reference(engine):
    connection = connect(RELATIONS, engine=engine)
    return lambda req: execute(connection, req).to_dict()


class TestPlan:
    def test_cuts_are_monotone_and_route_consistently(self):
        database = Database(RELATIONS)
        plan = plan_shards(database, QUERY, shards=4, variable="x")
        assert plan.relation == "R"  # the largest candidate
        assert plan.column == 0
        assert list(plan.cuts) == sorted(plan.cuts)
        for value in range(-1, 85):
            shard = plan.shard_of(value)
            assert 0 <= shard < plan.shards
            if shard > 0:
                assert value >= plan.cuts[shard - 1]
            if shard < len(plan.cuts):
                assert value < plan.cuts[shard]

    def test_chunks_are_balanced(self):
        database = Database(RELATIONS)
        plan = plan_shards(database, QUERY, shards=4, variable="x")
        sizes = [
            len(mapping["R"])
            for mapping in shard_databases(database, plan)
        ]
        assert sum(sizes) == len(RELATIONS["R"])
        assert max(sizes) - min(sizes) <= 1  # 80 distinct x values

    def test_shard_databases_partition_only_the_planned_relation(self):
        database = Database(RELATIONS)
        plan = plan_shards(database, QUERY, shards=3, variable="x")
        mappings = shard_databases(database, plan)
        assert len(mappings) == plan.shards
        union = set().union(*(m["R"] for m in mappings))
        assert union == RELATIONS["R"]
        for a, b in zip(mappings, mappings[1:]):
            assert not (a["R"] & b["R"])
        for mapping in mappings:
            assert mapping["S"] == RELATIONS["S"]

    def test_unbound_variable_is_rejected(self):
        database = Database(RELATIONS)
        with pytest.raises(QueryError):
            plan_shards(database, QUERY, shards=2, variable="w")
        with pytest.raises(QueryError):
            plan_shards(database, QUERY, shards=0, variable="x")

    def test_self_join_relations_are_not_candidates(self):
        # Filtering one occurrence of R would filter the other too.
        database = Database({"R": {(1, 2), (2, 1), (2, 3)}})
        with pytest.raises(QueryError):
            plan_shards(
                database,
                "Q(x, y, z) :- R(x, y), R(y, z)",
                shards=2,
                variable="x",
            )

    def test_explicit_relation_filter(self):
        database = Database(RELATIONS)
        plan = plan_shards(
            database, QUERY, shards=2, variable="y", relation="S"
        )
        assert plan.relation == "S"
        with pytest.raises(QueryError):
            plan_shards(
                database, QUERY, shards=2, variable="x", relation="S"
            )

    def test_fewer_distinct_values_than_shards(self):
        database = Database(RELATIONS)
        plan = plan_shards(database, QUERY, shards=3, variable="y",
                           relation="S")
        assert plan.shards == 3
        assert len(plan.cuts) <= 2


class TestDifferentialLaw:
    """merged(request) == unsharded(request), bit for bit."""

    CASES = [
        request("count"),
        request("access", indices=(0,)),
        request("access", indices=(0, 5, 17, 105, -1, -106)),
        request("access", indices=(106,)),       # OutOfBoundsError
        request("access", indices=(-107,)),      # OutOfBoundsError
        request("access", indices=()),           # ProtocolError
        request("median"),
        request("page", page_number=0, page_size=7),
        request("page", page_number=15, page_size=7),  # short tail
        request("page", page_number=99, page_size=7),  # past the end
        request("page", page_number=-1, page_size=7),  # OutOfBounds
        request("page", page_number=0, page_size=0),   # OutOfBounds
        request("page", page_number=0, page_size=None),  # Protocol
        request("rank", answer=(3, 3, 6)),
        request("rank", answer=(999, 0, 0)),     # absent -> None
        request("rank"),                         # ProtocolError
        request(
            "rank",
            answers=((0, 0, 0), (79, 2, 4), (5, 5, 10), (42, 42, 42)),
        ),
        request("quit"),
    ]

    @pytest.mark.parametrize(
        "case", CASES, ids=lambda c: f"{c.op}"
    )
    def test_bit_identical(self, case, executor, reference):
        assert executor.execute(case) == reference(case)

    def test_empty_join_is_bit_identical(self, engine):
        empty = {"R": {(1, 2), (3, 4)}, "S": {(99, 0)}}
        database = Database(empty)
        plan = plan_shards(database, QUERY, shards=2, variable="x")
        executor = ShardedExecutor(
            plan,
            local_shard_executor(shard_databases(database, plan),
                                 engine),
        )
        connection = connect(empty, engine=engine)
        for case in (
            request("count"),
            request("median"),                   # quantiles undefined
            request("access", indices=(0,)),     # OutOfBoundsError
            request("page", page_number=0, page_size=5),
            request("rank", answer=(1, 2, 4)),
        ):
            assert executor.execute(case) == execute(
                connection, case
            ).to_dict()


@pytest.fixture(scope="module", params=["python", "numpy"])
def http_sharding(request):
    """Three real ``repro serve`` replicas, one per shard, plus the
    in-process reference executors over the same plan.  Module-scoped:
    one boot serves the whole differential matrix."""
    engine = request.param
    database = Database(RELATIONS)
    plan = plan_shards(database, QUERY, shards=3, variable="x")
    databases = shard_databases(database, plan)
    servers = [
        ReproServer(
            mapping, engine=engine, workers=2, default_query=QUERY
        ).start()
        for mapping in databases
    ]
    transport = HTTPShardExecutor([s.url for s in servers])
    local = ShardedExecutor(
        plan, local_shard_executor(databases, engine)
    )
    remote = ShardedExecutor(plan, transport)
    connection = connect(RELATIONS, engine=engine)
    yield {
        "local": local,
        "remote": remote,
        "reference": lambda req: execute(connection, req).to_dict(),
        "urls": [s.url for s in servers],
        "engine": engine,
    }
    transport.close()
    for server in servers:
        server.shutdown()


class TestHTTPShardExecutor:
    """The executor-protocol seam: shard backends over the network
    answer the same bits as shard connections in this process."""

    @pytest.mark.parametrize(
        "case", TestDifferentialLaw.CASES, ids=lambda c: f"{c.op}"
    )
    def test_http_transport_is_bit_identical(self, case, http_sharding):
        over_http = http_sharding["remote"].execute(case)
        assert over_http == http_sharding["reference"](case)
        assert over_http == http_sharding["local"].execute(case)

    def test_mutations_are_refused_over_http(self, http_sharding):
        reply = http_sharding["remote"].execute(
            request("insert", relation="R", rows=((9, 9),))
        )
        assert reply["ok"] is False
        assert reply["error_type"] == "ReadOnlyError"

    def test_remote_shard_backend_end_to_end(self, http_sharding):
        """A front server whose shards are the replicas: the facade
        client reads through two HTTP hops and still matches a local
        connection exactly."""
        import repro

        engine = http_sharding["engine"]
        reference = connect(RELATIONS, engine=engine)
        expected = reference.prepare(QUERY, order=["x", "y", "z"])
        front = ReproServer(
            RELATIONS,
            engine=engine,
            shard_backends=http_sharding["urls"],
            default_query=QUERY,
            shard_variable="x",
        ).start()
        try:
            assert front.health()["mode"] == "sharded-remote"
            assert front.read_only is True
            client = repro.connect(front.url)
            view = client.prepare(QUERY, order=["x", "y", "z"])
            assert len(view) == len(expected)
            for index in (0, 17, 63, -1):
                assert tuple(view[index]) == tuple(expected[index])
            assert view.median() == expected.median()
            assert view.rank(expected[42]) == 42
            stats = front.stats()
            assert stats["backend"]["replicas"] == http_sharding["urls"]
            client.close()
        finally:
            front.shutdown()


@pytest.fixture()
def cold_remote(http_sharding):
    """A fresh transport + executor over the already-running replicas:
    function-scoped so every degradation test starts with a cold
    merged-view cache and its requests really cross the wire."""
    plan = plan_shards(
        Database(RELATIONS), QUERY, shards=3, variable="x"
    )
    transport = HTTPShardExecutor(http_sharding["urls"])
    yield ShardedExecutor(plan, transport)
    transport.close()


class TestChaosDegradation:
    """Injected transport faults (:mod:`repro.chaos`) against the live
    replicas: every failure mode must surface as a *structured* repro
    error — bounded, typed, carrying the shard index — never a hang,
    and never a poisoned keep-alive pool."""

    def test_injected_timeout_is_a_structured_error(self, http_sharding, cold_remote):
        from repro.chaos import faults

        with faults.armed("client.timeout:once"):
            reply = cold_remote.execute(request("count"))
        assert reply["ok"] is False
        assert reply["error_type"] == "ReproError"
        assert "shard replica" in reply["error"]
        assert "unreachable" in reply["error"]

    def test_injected_disconnect_is_a_structured_error(self, http_sharding, cold_remote):
        from repro.chaos import faults

        with faults.armed("client.disconnect:once"):
            reply = cold_remote.execute(request("count"))
        assert reply["ok"] is False
        assert reply["error_type"] == "ReproError"
        assert "unreachable" in reply["error"]

    def test_unparseable_5xx_is_a_protocol_error(self, http_sharding, cold_remote):
        from repro.chaos import faults

        with faults.armed("client.http_500:once"):
            reply = cold_remote.execute(request("count"))
        assert reply["ok"] is False
        assert reply["error_type"] == "ProtocolError"
        assert "did not answer with JSON" in reply["error"]

    def test_every_request_failing_still_terminates(self, http_sharding, cold_remote):
        """p=1 fails the fan-out on every shard, every time: the
        executor must keep answering structured errors, not wedge."""
        from repro.chaos import faults

        with faults.armed("seed=1,client.timeout:p=1"):
            for _ in range(3):
                reply = cold_remote.execute(request("count"))
                assert reply["ok"] is False
                assert reply["error_type"] == "ReproError"

    def test_pool_is_reusable_once_faults_clear(self, http_sharding, cold_remote):
        """Faults fire before a socket is checked out, so the
        keep-alive pool must come back bit-identical after disarm."""
        from repro.chaos import faults

        case = request("count")
        with faults.armed("client.timeout:once"):
            degraded = cold_remote.execute(case)
            assert degraded["ok"] is False
        # Same executor, same keep-alive pools, faults cleared: the
        # next attempt must answer the reference bits.
        assert cold_remote.execute(case) == http_sharding["reference"](case)


class TestDivergencesByDesign:
    def test_mutations_are_refused(self, executor):
        reply = executor.execute(
            request("insert", relation="R", rows=((9, 9),))
        )
        assert reply["ok"] is False
        assert reply["error_type"] == "ReadOnlyError"

    def test_orders_must_start_with_the_partitioned_variable(
        self, executor, reference
    ):
        # Unsharded happily serves a y-leading order; sharded refuses
        # (the partition only aligns with x-leading answer arrays).
        wrong = request("count", order=("y", "x", "z"))
        assert reference(wrong)["ok"] is True
        reply = executor.execute(wrong)
        assert reply["ok"] is False
        assert reply["error_type"] == "OrderError"

    def test_stats_fans_out(self, executor):
        reply = executor.execute(request("stats"))
        assert reply["ok"] is True
        sharded = reply["result"]["sharded"]
        assert sharded["relation"] == "R"
        assert sharded["shards"] == len(reply["result"]["shards"])

    def test_plan_and_db_version_pass_through(self, executor):
        for op in ("plan", "db_version"):
            reply = executor.execute(request(op))
            assert reply["ok"] is True, reply
            assert reply["op"] == op

    def test_default_query_fill_in(self, engine):
        database = Database(RELATIONS)
        plan = plan_shards(database, QUERY, shards=2, variable="x")
        executor = ShardedExecutor(
            plan,
            local_shard_executor(shard_databases(database, plan),
                                 engine),
            default_query=QUERY,
        )
        reply = executor.execute(
            SessionRequest(op="count", order=ORDER)
        )
        assert reply["ok"] is True

    def test_unknown_protocol_version_is_refused(self, executor):
        reply = executor.execute(request("count", version=99))
        assert reply["ok"] is False
        assert reply["error_type"] == "ProtocolError"
