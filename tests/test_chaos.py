"""Deterministic fault injection (:mod:`repro.chaos`).

Three layers, bottom-up: the fault-point registry and its seeded
schedules (pure unit tests), the crash matrix (a live serving core is
killed at every injection site, in every serving mode, and must
converge after restart), and the harness's own honesty checks — the
double-run determinism law and the mutation-of-the-checker test that
proves the model checker still catches a real lost write.

The crash-matrix cases boot real servers (worker processes under
``--procs``), so this file is the slowest suite after ``test_pool``;
each case keeps ``ops`` small and uses the quick seed database.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro
from repro.chaos import faults
from repro.chaos.deltas import delta_sequence, random_delta, shrink_deltas
from repro.chaos.faults import FAULT_POINTS, ChaosCrash, ChaosPlan
from repro.chaos.runner import run_chaos
from repro.data.database import Database
from repro.data.delta import Delta

ENGINES = repro.available_engines()

WAL_SITES = ("wal.fsync", "wal.torn_write", "wal.corrupt_crc")
POOL_SITES = ("pool.crash_before_publish", "pool.crash_after_publish")


@pytest.fixture(autouse=True)
def _disarmed():
    """No test may leak an armed plan into the rest of the suite."""
    yield
    faults.disarm()


class TestFaultPlan:
    def test_spec_grammar_round_trips(self):
        plan = ChaosPlan(
            "seed=7, wal.fsync:nth=3; client.timeout:p=0.25,shm.attach"
        )
        assert plan.seed == 7
        assert plan.sites() == (
            "client.timeout",
            "shm.attach",
            "wal.fsync",
        )

    def test_unknown_site_is_rejected_with_the_known_list(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            ChaosPlan("wal.fsnyc:once")

    @pytest.mark.parametrize("bad", ["wal.fsync:nth=0", "wal.fsync:p=1.5",
                                     "wal.fsync:every=3"])
    def test_bad_schedules_are_rejected(self, bad):
        with pytest.raises(ValueError):
            ChaosPlan(bad)

    def test_once_fires_exactly_once(self):
        plan = ChaosPlan("shm.attach:once")
        assert [plan.fire("shm.attach") for _ in range(5)] == [
            True, False, False, False, False,
        ]

    def test_nth_fires_every_nth_call(self):
        plan = ChaosPlan("wal.fsync:nth=3")
        assert [plan.fire("wal.fsync") for _ in range(7)] == [
            False, False, True, False, False, True, False,
        ]

    def test_probability_schedule_is_seeded(self):
        def stream(seed):
            plan = ChaosPlan("client.timeout:p=0.5", seed=seed)
            return [plan.fire("client.timeout") for _ in range(64)]

        draws = [stream(9), stream(9), stream(10)]
        assert draws[0] == draws[1]  # same seed, same stream
        assert draws[0] != draws[2]  # a different seed diverges
        assert any(draws[0]) and not all(draws[0])

    def test_sites_not_in_the_plan_never_fire(self):
        plan = ChaosPlan("wal.fsync:once")
        assert plan.fire("wal.torn_write") is False

    def test_counters_track_calls_and_fires(self):
        plan = ChaosPlan("wal.fsync:nth=2")
        for _ in range(5):
            plan.fire("wal.fsync")
        assert plan.counters() == {
            "wal.fsync": {"calls": 5, "fired": 2}
        }
        assert plan.fired_total == 2

    def test_registry_names_all_carry_a_subsystem_prefix(self):
        for name in FAULT_POINTS:
            prefix, _, rest = name.partition(".")
            assert prefix in {"wal", "pool", "shm", "client"} and rest


class TestArming:
    def test_disarmed_is_the_default_and_fires_nothing(self):
        assert faults.active_plan() is None
        assert faults.fire("wal.fsync") is False

    def test_arm_and_disarm(self):
        faults.arm("wal.fsync:once")
        assert faults.active_plan() is not None
        assert faults.fire("wal.fsync") is True
        faults.disarm()
        assert faults.fire("wal.fsync") is False

    def test_armed_context_restores_the_previous_plan(self):
        outer = faults.arm("wal.fsync:once")
        with faults.armed("client.timeout:once") as inner:
            assert faults.active_plan() is inner
        assert faults.active_plan() is outer

    def test_crash_raises_chaos_crash_with_the_site(self):
        with faults.armed("wal.fsync:once"):
            with pytest.raises(ChaosCrash) as excinfo:
                faults.crash("wal.fsync")
        assert excinfo.value.site == "wal.fsync"

    def test_env_spec_arms_fresh_processes(self):
        """The spawn-inheritance seam: a fresh interpreter with
        ``REPRO_CHAOS`` set arms itself at import, exactly like a
        spawned worker process does."""
        env = dict(os.environ)
        env["REPRO_CHAOS"] = "seed=3,wal.fsync:nth=2"
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.chaos import faults; "
                "plan = faults.active_plan(); "
                "print(plan.seed, *plan.sites())",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.split() == ["3", "wal.fsync"]


def matrix_cases():
    """Kill-at-every-fault-point across serving modes and engines.

    Threads mode only reaches the WAL sites (there is no pool); the
    process modes add the worker-kill sites.  ``once`` schedules fire
    on the first pass *per boot*, so a WAL case exercises several
    crash/restart cycles in one run.
    """
    cases = []
    for site in WAL_SITES:
        for engine in ENGINES:
            cases.append((site, engine, None))
    for site in WAL_SITES + POOL_SITES:
        cases.append((site, "python", 1))
        for engine in ENGINES:
            cases.append((site, engine, 2))
    return cases


class TestCrashMatrix:
    @pytest.mark.parametrize(
        "site,engine,procs",
        matrix_cases(),
        ids=lambda v: str(v) if v is not None else "threads",
    )
    def test_killed_at_site_and_converges(self, site, engine, procs):
        report = run_chaos(
            seed=5,
            ops=18,
            faults_spec=f"{site}:once",
            engine=engine,
            procs=procs,
            quick=True,
            workers=2,
        )
        assert report.verdict == "pass", report.violations
        fired = report.fault_counters.get(site, {}).get("fired", 0)
        if site in WAL_SITES:
            # Every WAL fault is a process death: the run must have
            # actually crashed and recovered, at least once.
            assert report.crashes >= 1
            assert report.restarts == report.crashes + 1
            assert fired == report.crashes
        else:
            # Pool faults kill a worker, not the server: the
            # supervisor absorbs them (the one in-flight request may
            # answer WorkerCrashError, which the checker tolerates).
            assert fired >= 1
            assert report.crashes == 0
        assert report.executed + report.crashes == report.ops


class TestShmAttachFailure:
    def test_worker_attach_failure_fails_the_boot_cleanly(self, tmp_path):
        """``shm.attach`` fires inside every spawned worker (the spec
        inherits through :class:`WorkerSpec`), so the pool can never
        become ready: the boot must fail with ``WorkerCrashError`` —
        and close the shared-memory plane on the way out."""
        from repro.errors import WorkerCrashError
        from repro.server.http import ServingCore

        shm_dir = "/dev/shm"
        before = (
            {n for n in os.listdir(shm_dir) if n.startswith("repro_")}
            if os.path.isdir(shm_dir)
            else None
        )
        with pytest.raises(WorkerCrashError):
            ServingCore(
                Database({"R": {(1, 2)}, "S": {(2, 3)}}),
                procs=1,
                chaos="shm.attach:once",
            )
        faults.disarm()  # construction died before close() could
        if before is not None:
            after = {
                n for n in os.listdir(shm_dir) if n.startswith("repro_")
            }
            assert after == before  # no leaked segments


class TestDeterminism:
    def test_same_seed_same_fingerprint(self):
        runs = [
            run_chaos(seed=21, ops=80, quick=True) for _ in range(2)
        ]
        assert runs[0].fingerprint() == runs[1].fingerprint()
        assert runs[0].crashes >= 1  # the default plan really fires

    def test_different_seeds_diverge(self):
        a = run_chaos(seed=21, ops=80, quick=True)
        b = run_chaos(seed=22, ops=80, quick=True)
        assert a.fingerprint() != b.fingerprint()


class TestMutationOfTheChecker:
    def test_a_lost_write_bug_is_caught(self, monkeypatch):
        """Re-introduce the bug the harness exists to catch — applied
        mutations that never reach the WAL — and assert the verdict.
        No faults are injected: only the closing clean-restart
        convergence check can see it, which is exactly the point."""
        from repro.data.wal import WriteAheadLog

        monkeypatch.setattr(
            WriteAheadLog,
            "append_delta",
            lambda self, delta, db_version: db_version,
        )
        report = run_chaos(seed=5, ops=30, faults_spec="", quick=True)
        assert report.verdict == "fail"
        kinds = {violation.kind for violation in report.violations}
        assert kinds == {"lost_acknowledged_write"}
        assert report.repro is not None
        assert report.repro.startswith("repro chaos --seed 5")

    def test_healthy_build_passes_the_same_run(self):
        report = run_chaos(seed=5, ops=30, faults_spec="", quick=True)
        assert report.verdict == "pass"
        assert report.violations == []


class TestDeltaGenerator:
    DATABASE = Database(
        {"R": {(1, 2), (3, 4), (5, 6)}, "S": {(2, 3), (4, 5)}}
    )

    def test_sequences_are_seeded(self):
        a = delta_sequence(3, self.DATABASE, 8)
        b = delta_sequence(3, self.DATABASE, 8)
        c = delta_sequence(4, self.DATABASE, 8)
        assert a == b
        assert a != c

    def test_deltas_respect_arity(self):
        import random

        rng = random.Random(0)
        for _ in range(50):
            delta = random_delta(rng, self.DATABASE)
            for rows in (*delta.inserts.values(), *delta.deletes.values()):
                assert all(len(row) == 2 for row in rows)

    def test_shrink_finds_the_minimal_failing_sequence(self):
        """A predicate that only needs one row — (7, 7) inserted into
        R — must shrink down to exactly that single-row delta no
        matter how much noise the original sequence carries."""
        noise = delta_sequence(1, self.DATABASE, 6)
        poison = Delta(
            inserts={"R": {(7, 7), (8, 8)}, "S": {(9, 9)}},
            deletes={"S": {(2, 3)}},
        )
        sequence = noise[:3] + [poison] + noise[3:]

        def fails(deltas):
            return any(
                (7, 7) in delta.inserts.get("R", ()) for delta in deltas
            )

        minimal = shrink_deltas(sequence, fails)
        assert len(minimal) == 1
        assert minimal[0] == Delta(inserts={"R": {(7, 7)}})

    def test_shrink_rejects_a_passing_sequence(self):
        with pytest.raises(ValueError, match="failing sequence"):
            shrink_deltas([Delta()], lambda deltas: False)


class TestChaosCLI:
    def test_pass_run_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--seed", "1", "--ops", "40", "--quick"]) == 0
        out = capsys.readouterr().out
        assert ": PASS" in out
        assert "executed=" in out

    def test_json_report_and_record_trajectory(self, tmp_path, capsys):
        import json

        from repro.cli import main

        record = tmp_path / "BENCH_serving.json"
        code = main(
            [
                "chaos", "--seed", "2", "--ops", "30", "--quick",
                "--faults", "none", "--json",
                "--record", str(record),
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["verdict"] == "pass"
        assert report["faults"] == ""
        history = json.loads(record.read_text())
        assert len(history) == 1
        assert history[0]["bench"] == "chaos"
        assert history[0]["verdict"] == "pass"

    def test_unknown_fault_site_dies_with_one_line(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown fault point"):
            main(["chaos", "--ops", "5", "--faults", "wal.nope:once"])
