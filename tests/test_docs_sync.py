"""The docs/ tree cannot rot: the protocol spec is diffed against the
op registry, and the architecture page against the module layout.

``docs/protocol.md`` documents every op under a ``### `op` `` heading
followed by its one-line summary; this suite fails if an op is added
to (or removed from, or re-described in) ``repro.session.protocol``
without the spec following along — the acceptance criterion of the
``repro serve`` PR.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.session.protocol import OPS, OP_SUMMARIES, PROTOCOL_VERSION

DOCS = Path(__file__).resolve().parent.parent / "docs"


@pytest.fixture(scope="module")
def protocol_doc() -> str:
    return (DOCS / "protocol.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def architecture_doc() -> str:
    return (DOCS / "architecture.md").read_text(encoding="utf-8")


class TestProtocolSpecSync:
    def test_documented_ops_match_registry(self, protocol_doc):
        documented = set(
            re.findall(r"^### `(\w+)`", protocol_doc, re.MULTILINE)
        )
        missing = OPS - documented
        unknown = documented - OPS
        assert not missing, (
            f"ops registered in protocol.py but undocumented in "
            f"docs/protocol.md: {sorted(missing)}"
        )
        assert not unknown, (
            f"ops documented in docs/protocol.md but not registered "
            f"in protocol.py: {sorted(unknown)}"
        )

    def test_documented_summaries_match_registry(self, protocol_doc):
        # Each op's heading is followed by its registry summary line —
        # re-describing an op in one place only is also rot.
        for op, summary in OP_SUMMARIES.items():
            heading = protocol_doc.find(f"### `{op}`")
            assert heading != -1, f"op {op!r} has no heading"
            tail = protocol_doc[heading : heading + 400]
            assert summary in tail, (
                f"docs/protocol.md describes {op!r} differently from "
                f"OP_SUMMARIES ({summary!r} not found near its heading)"
            )

    def test_staleness_semantics_documented(self, protocol_doc):
        """The mutation ops ship with staleness semantics: the spec
        must explain the db_version pin and StaleViewError replay."""
        assert "StaleViewError" in protocol_doc
        assert "db_version" in protocol_doc

    def test_documented_version_matches(self, protocol_doc):
        match = re.search(
            r"Protocol version: \*\*(\d+)\*\*", protocol_doc
        )
        assert match, "docs/protocol.md must state the protocol version"
        assert int(match.group(1)) == PROTOCOL_VERSION

    def test_documented_http_statuses_are_served(self, protocol_doc):
        """Every status in the doc's table exists in the server's
        transport layer (and vice versa for the error paths) — on
        *both* fronts: the threaded handler and the asyncio one must
        stay wire-identical, status for status."""
        import inspect

        from repro.server import aio as server_aio
        from repro.server import http as server_http

        table = re.findall(
            r"^\| (\d{3}) \|", protocol_doc, re.MULTILINE
        )
        documented = {int(code) for code in table}
        threaded = {200} | {
            int(code)
            for code in re.findall(
                r"_reply\(\s*(\d{3})",
                inspect.getsource(server_http),
            )
        }
        asynced = {
            int(code)
            for code in re.findall(
                r"_send\(\s*\n?\s*writer,\s*\n?\s*(\d{3})",
                inspect.getsource(server_aio),
            )
        }
        assert documented == threaded, (
            f"docs/protocol.md statuses {sorted(documented)} != "
            f"statuses the threaded front can send {sorted(threaded)}"
        )
        assert documented == asynced, (
            f"docs/protocol.md statuses {sorted(documented)} != "
            f"statuses the async front can send {sorted(asynced)}"
        )

    def test_overload_contract_documented(self, protocol_doc):
        """503 + Retry-After is a protocol promise clients build
        backoff against: the spec must state it, and state that
        --async changes no wire shapes."""
        assert "Retry-After" in protocol_doc
        assert "OverloadedError" in protocol_doc
        assert "--async" in protocol_doc


class TestArchitectureDocSync:
    def test_layers_name_real_modules(self, architecture_doc):
        """Every `src/...` path the architecture page cites exists."""
        root = DOCS.parent
        cited = set(
            re.findall(r"`(src/repro/[\w/.]+)`", architecture_doc)
        )
        assert cited, "architecture.md should cite concrete modules"
        missing = {
            path for path in cited if not (root / path).exists()
        }
        assert not missing, (
            f"architecture.md cites nonexistent modules: "
            f"{sorted(missing)}"
        )

    def test_paper_concepts_are_tied_to_modules(self, architecture_doc):
        for concept in (
            "counting forest",
            "disruption-free decomposition",
            "lexicographic direct access",
            "artifact store",
            "db_version",
            "staleviewerror",
        ):
            assert concept in architecture_doc.lower(), (
                f"architecture.md no longer explains {concept!r}"
            )


class TestFailureModelSync:
    """The "Failure model" section is diffed against the fault-point
    registry: a site added to :data:`repro.chaos.faults.FAULT_POINTS`
    without a documented invariant (or documented but deleted from the
    code) fails the build."""

    @pytest.fixture(scope="class")
    def failure_model(self, architecture_doc) -> str:
        start = architecture_doc.find("## Failure model")
        assert start != -1, (
            "docs/architecture.md lost its '## Failure model' section"
        )
        end = architecture_doc.find("\n## ", start + 1)
        return architecture_doc[start : end if end != -1 else None]

    def test_every_fault_point_is_documented(self, failure_model):
        from repro.chaos.faults import FAULT_POINTS

        cited = set(
            re.findall(r"`(\w+\.\w+)`", failure_model)
        ) & set(FAULT_POINTS)
        missing = set(FAULT_POINTS) - cited
        assert not missing, (
            f"fault points registered in repro/chaos/faults.py but "
            f"missing from the Failure model table: {sorted(missing)}"
        )

    def test_documented_table_rows_exist_in_the_registry(
        self, failure_model
    ):
        from repro.chaos.faults import FAULT_POINTS

        rows = re.findall(
            r"^\| `(\w+\.\w+)` \|", failure_model, re.MULTILINE
        )
        assert rows, "the Failure model table went missing"
        unknown = set(rows) - set(FAULT_POINTS)
        assert not unknown, (
            f"the Failure model table documents fault points that no "
            f"longer exist: {sorted(unknown)}"
        )

    def test_reproduction_workflow_is_documented(self, failure_model):
        """A seed must be enough to replay a failure: the section has
        to spell out the arming surfaces and the reproduction line."""
        for needle in (
            "REPRO_CHAOS",
            "--chaos",
            "repro chaos --seed",
            "seed=",
        ):
            assert needle in failure_model, (
                f"Failure model section no longer mentions {needle!r}"
            )


@pytest.fixture(scope="module")
def analysis_doc() -> str:
    return (DOCS / "analysis.md").read_text(encoding="utf-8")


class TestAnalysisDocsSync:
    """``docs/analysis.md`` is diffed both ways against the rule
    registry: a rule cannot be added, retired, reclassified, or
    re-described without the documentation following along."""

    def test_rule_table_matches_registry_both_ways(self, analysis_doc):
        from repro.analysis import RULES

        rows = set(
            re.findall(
                r"^\| `([A-Z0-9-]+)` \|", analysis_doc, re.MULTILINE
            )
        )
        assert rows, "the rule table went missing"
        missing = set(RULES) - rows
        unknown = rows - set(RULES)
        assert not missing, (
            f"rules registered in repro.analysis but missing from the "
            f"docs/analysis.md table: {sorted(missing)}"
        )
        assert not unknown, (
            f"docs/analysis.md documents rules that no longer exist: "
            f"{sorted(unknown)}"
        )

    def test_rule_sections_match_registry_both_ways(self, analysis_doc):
        from repro.analysis import RULES

        sections = set(
            re.findall(
                r"^### `([A-Z0-9-]+)`", analysis_doc, re.MULTILINE
            )
        )
        assert sections == set(RULES), (
            f"per-rule sections out of sync: "
            f"missing {sorted(set(RULES) - sections)}, "
            f"stale {sorted(sections - set(RULES))}"
        )

    def test_documented_severities_match_registry(self, analysis_doc):
        from repro.analysis import RULES

        rows = dict(
            re.findall(
                r"^\| `([A-Z0-9-]+)` \| (error|warning) \|",
                analysis_doc,
                re.MULTILINE,
            )
        )
        for rule_id, rule in RULES.items():
            assert rows.get(rule_id) == rule.severity, (
                f"docs/analysis.md lists {rule_id} as "
                f"{rows.get(rule_id)!r}; the registry says "
                f"{rule.severity!r}"
            )

    def test_invariants_are_quoted_verbatim(self, analysis_doc):
        # Re-describing an invariant in one place only is also rot:
        # each rule's registry invariant appears (modulo wrapping) in
        # its doc section.
        from repro.analysis import RULES

        normalized_doc = " ".join(analysis_doc.split())
        for rule in RULES.values():
            needle = " ".join(rule.invariant.split())
            assert needle in normalized_doc, (
                f"docs/analysis.md no longer quotes the registry "
                f"invariant for {rule.id}"
            )
