"""Property-based tests (hypothesis) for the core invariants."""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.access import DirectAccess
from repro.core.counting import (
    CountingFromDirectAccess,
    PrefixConstraint,
)
from repro.core.decomposition import DisruptionFreeDecomposition
from repro.data.database import Database
from repro.data.relation import Relation
from repro.hypergraph.disruptive_trios import has_disruptive_trio
from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph
from repro.lp.covers import (
    fractional_edge_cover,
    fractional_independent_set_number,
)
from repro.query.atoms import Atom
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder
from tests.conftest import lex_answers

VARIABLES = ["a", "b", "c", "d"]

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def queries(draw):
    variable_count = draw(st.integers(2, 4))
    variables = VARIABLES[:variable_count]
    atom_count = draw(st.integers(1, 3))
    atoms = []
    used: set[str] = set()
    for i in range(atom_count):
        arity = draw(st.integers(1, min(3, variable_count)))
        scope = draw(
            st.permutations(variables).map(lambda p: tuple(p[:arity]))
        )
        atoms.append(Atom(f"R{i}", scope))
        used.update(scope)
    missing = tuple(v for v in variables if v not in used)
    if missing:
        atoms.append(Atom("Rm", missing))
    return JoinQuery(tuple(atoms))


@st.composite
def query_order_database(draw):
    query = draw(queries())
    order = VariableOrder(draw(st.permutations(query.variables)))
    relations = {}
    for symbol in query.relation_symbols:
        arity = query.arity_of(symbol)
        rows = draw(
            st.sets(
                st.tuples(
                    *[st.integers(0, 2) for _ in range(arity)]
                ),
                max_size=10,
            )
        )
        relations[symbol] = Relation(rows, arity=arity)
    return query, order, Database(relations)


@st.composite
def hypergraphs(draw):
    vertex_count = draw(st.integers(1, 5))
    vertices = VARIABLES[:4] + ["e"]
    vertices = vertices[:vertex_count]
    edge_count = draw(st.integers(1, 4))
    edges = []
    covered: set[str] = set()
    for _ in range(edge_count):
        edge = draw(
            st.sets(st.sampled_from(vertices), min_size=1, max_size=3)
        )
        edges.append(frozenset(edge))
        covered |= edge
    uncovered = set(vertices) - covered
    if uncovered:
        edges.append(frozenset(uncovered))
    return Hypergraph(vertices, edges)


class TestDirectAccessProperties:
    @SETTINGS
    @given(query_order_database())
    def test_access_equals_sorted_bruteforce(self, qod):
        query, order, database = qod
        access = DirectAccess(query, order, database)
        expected = lex_answers(query, database, order)
        assert len(access) == len(expected)
        got = [access.tuple_at(i) for i in range(len(access))]
        assert got == expected

    @SETTINGS
    @given(query_order_database(), st.integers(0, 2), st.integers(0, 2))
    def test_counting_matches_filtered_bruteforce(self, qod, low, high):
        query, order, database = qod
        access = DirectAccess(query, order, database)
        counter = CountingFromDirectAccess(access)
        answers = lex_answers(query, database, order)
        constraint = PrefixConstraint((), low, high)
        expected = sum(1 for a in answers if low <= a[0] <= high)
        assert counter.count(constraint) == expected


class TestDecompositionProperties:
    @SETTINGS
    @given(query_order_database())
    def test_proposition6(self, qod):
        query, order, _ = qod
        decomposition = DisruptionFreeDecomposition(query, order)
        h0 = decomposition.decomposition_hypergraph
        assert is_acyclic(h0)
        assert not has_disruptive_trio(h0, order)
        assert decomposition.hypergraph.edges <= h0.edges

    @SETTINGS
    @given(query_order_database())
    def test_lemma7_closed_form(self, qod):
        query, order, _ = qod
        decomposition = DisruptionFreeDecomposition(query, order)
        closed = decomposition.closed_form_edges()
        for bag in decomposition.bags:
            assert closed[bag.index] == bag.edge

    @SETTINGS
    @given(query_order_database())
    def test_incompatibility_at_least_one(self, qod):
        query, order, _ = qod
        decomposition = DisruptionFreeDecomposition(query, order)
        assert decomposition.incompatibility_number >= 1


class TestLPProperties:
    @SETTINGS
    @given(hypergraphs())
    def test_duality(self, hypergraph):
        value, weights = fractional_edge_cover(hypergraph)
        assert value == fractional_independent_set_number(hypergraph)

    @SETTINGS
    @given(hypergraphs())
    def test_cover_is_feasible(self, hypergraph):
        value, weights = fractional_edge_cover(hypergraph)
        for vertex in hypergraph.vertices:
            incident = sum(
                (w for e, w in weights.items() if vertex in e),
                start=Fraction(0),
            )
            assert incident >= 1

    @SETTINGS
    @given(hypergraphs())
    def test_acyclic_implies_integral_cover(self, hypergraph):
        if is_acyclic(hypergraph):
            value, _ = fractional_edge_cover(hypergraph)
            assert value.denominator == 1
