"""Crash recovery: append-before-apply replay convergence.

The durability acceptance of the WAL PR: a crash in the window
*after* the log append but *before* the in-memory apply/publish is
repaired by replay-on-boot — the recovered store lands at the same
``db_version`` with bit-identical answers on every engine — and a
``repro serve --wal`` restart recovers the pre-kill state over HTTP.
"""

from __future__ import annotations

import pytest

import repro
from repro import Database, Delta, WriteAheadLog, connect
from repro.session import ArtifactStore

PATH = "Q(x, y, z) :- R(x, y), S(y, z)"
RELATIONS = {
    "R": {(1, 2), (3, 2), (3, 4)},
    "S": {(2, 7), (2, 9), (4, 1)},
}

D1 = Delta(inserts={"R": {(9, 2)}})
D2 = Delta(inserts={"S": {(2, 42)}}, deletes={"R": {(1, 2)}})


def fresh_database() -> Database:
    return Database({name: set(rows) for name, rows in RELATIONS.items()})


def answers(database, engine=None) -> list[tuple]:
    view = connect(database, engine=engine).prepare(
        PATH, order=["x", "y", "z"]
    )
    return list(view)


class TestKillMidApply:
    @pytest.mark.parametrize("engine", repro.available_engines())
    def test_append_without_apply_converges_on_replay(
        self, tmp_path, engine
    ):
        """Simulate the crash window: the D2 record is durable but the
        in-memory apply never ran (the process died between append and
        publish).  Replay must re-apply it — same db_version, same
        answers as the crash-free run."""
        path = tmp_path / "serve.wal"
        wal = WriteAheadLog(path)
        database, version = wal.recover(fresh_database(), seed=True)
        store = ArtifactStore(
            database, engine=engine, db_version=version, wal=wal
        )
        assert store.apply(D1) == 1  # logged, then applied
        # -- the crash window: append lands, the apply never does.
        wal.append_delta(
            D2.effective_against(store.database), store.db_version + 1
        )
        wal.close()

        recovered, recovered_version = WriteAheadLog(path).recover()
        assert recovered_version == 2
        expected = fresh_database().apply(D1).apply(D2)
        assert recovered == expected
        assert answers(recovered, engine) == answers(expected, engine)

    def test_replayed_answers_are_identical_across_engines(
        self, tmp_path
    ):
        path = tmp_path / "serve.wal"
        with WriteAheadLog(path) as wal:
            wal.recover(fresh_database(), seed=True)
            wal.append_delta(D1, 1)
            wal.append_delta(D2, 2)
        recovered, version = WriteAheadLog(path).recover()
        assert version == 2
        per_engine = [
            answers(recovered, engine)
            for engine in repro.available_engines()
        ]
        assert all(result == per_engine[0] for result in per_engine)

    def test_double_replay_is_idempotent(self, tmp_path):
        path = tmp_path / "serve.wal"
        with WriteAheadLog(path) as wal:
            wal.recover(fresh_database(), seed=True)
            wal.append_delta(D1, 1)
        first = WriteAheadLog(path).recover()
        second = WriteAheadLog(path).recover()
        assert first == second


class TestServerRestart:
    def test_serve_with_wal_recovers_over_http(self, tmp_path):
        from repro.server import ReproServer

        path = tmp_path / "serve.wal"
        with ReproServer(fresh_database(), wal=str(path)) as server:
            conn = connect(server.url)
            assert conn.apply(D1) == 1
            assert conn.apply(D2) == 2
            # An effectively-empty delta must not touch the log.
            seq = conn.stats()["durability"]["wal_seq"]
            assert conn.apply(Delta(deletes={"R": {(0, 0)}})) == 2
            assert conn.stats()["durability"]["wal_seq"] == seq
            before = list(conn.prepare(PATH, order=["x", "y", "z"]))
            version = conn.db_version
            health = server.health()
            assert health["durable"] and health["db_version"] == 2
            conn.close()

        # A cold restart on the same log: the passed database is only
        # the seed fallback — replay must win.
        with ReproServer(fresh_database(), wal=str(path)) as server:
            conn = connect(server.url)
            assert conn.db_version == version
            after = list(conn.prepare(PATH, order=["x", "y", "z"]))
            assert after == before
            durability = conn.stats()["durability"]
            assert durability["db_version"] == version
            assert durability["wal_seq"] == seq
            assert durability["snapshots_retained"] >= 1
            conn.close()

    def test_serve_with_wal_recovers_with_process_workers(
        self, tmp_path
    ):
        from repro.server import ReproServer

        path = tmp_path / "serve.wal"
        with ReproServer(fresh_database(), wal=str(path)) as server:
            conn = connect(server.url)
            conn.apply(D1)
            before = list(conn.prepare(PATH, order=["x", "y", "z"]))
            conn.close()
        with ReproServer(
            fresh_database(), wal=str(path), procs=2
        ) as server:
            conn = connect(server.url)
            assert conn.db_version == 1
            assert list(conn.prepare(PATH, order=["x", "y", "z"])) == before
            # ... and the recovered supervisor keeps logging new deltas.
            assert conn.apply(D2) == 2
            conn.close()
        recovered, version = WriteAheadLog(path).recover()
        assert version == 2
        assert recovered == fresh_database().apply(D1).apply(D2)

    def test_wal_is_exclusive_with_sharding(self, tmp_path):
        from repro.server.http import ServingCore

        with pytest.raises(ValueError, match="read-only"):
            ServingCore(
                fresh_database(),
                wal=str(tmp_path / "serve.wal"),
                shards=2,
            )
