"""Regression tests for the benchmark harness utilities."""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parents[1] / "benchmarks")
)

import harness  # noqa: E402


def test_format_table_empty_rows():
    """Regression: ``max(len(header))`` degenerated to ``max(int)`` and
    raised ``TypeError`` whenever an experiment produced zero rows."""
    table = harness.format_table("Empty", ["alpha", "b"], [])
    lines = table.splitlines()
    assert lines[0] == "Empty"
    assert lines[2] == "alpha  b"
    assert lines[3] == "-----  -"
    assert len(lines) == 4


def test_format_table_pads_to_widest_cell():
    table = harness.format_table(
        "T", ["h", "header"], [["wide-cell", 1], ["x", 22]]
    )
    lines = [line.rstrip() for line in table.splitlines()]
    assert lines[2] == "h          header"
    assert "wide-cell  1" in lines
    assert "x          22" in lines


def test_report_records_engine(monkeypatch, tmp_path, capsys):
    monkeypatch.setattr(harness, "OUT_DIR", tmp_path)
    harness.report("unit", "Unit title", ["h"], [["v"]])
    engine = harness.active_engine()
    printed = capsys.readouterr().out
    assert f"[engine={engine}]" in printed
    assert (tmp_path / "unit.txt").exists()
    payload = json.loads(
        (tmp_path / f"unit.{engine}.json").read_text()
    )
    assert payload["engine"] == engine
    assert payload["rows"] == [["v"]]


def test_report_tolerates_empty_rows(monkeypatch, tmp_path):
    monkeypatch.setattr(harness, "OUT_DIR", tmp_path)
    harness.report("empty", "No rows", ["only", "headers"], [])
    assert (tmp_path / "empty.txt").read_text().count("\n") >= 3
