"""The asyncio serving front: multiplexing, framing, and overload.

The contract under test: ``--async`` is a *front* swap, never a wire
change — same routes, same shapes, same errors as the threaded server
— plus the properties only an event loop can give: many keep-alive
connections over few workers, pipelined requests answered in order
from one buffer, a connection ceiling that rejects loudly, bounded
admission that answers 503 instead of queueing without bound, and a
drain that lets in-flight requests finish.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from multiprocessing import shared_memory

import pytest

import repro
from repro.errors import OverloadedError
from repro.server.aio import AsyncReproServer

QUERY = "Q(x, y, z) :- R(x, y), S(y, z)"
RELATIONS = {
    "R": {(i, i % 7) for i in range(50)},
    "S": {(j, j * 2) for j in range(7)},
}


def drive(connection):
    """A fixed read workload; the tuple must be front-independent."""
    view = connection.prepare(QUERY, order=["x", "y", "z"])
    sample = [tuple(view[i]) for i in (0, 5, -1)]
    ranks = view.ranks([view[3], (999, 0, 0)])
    return len(view), sample, ranks, view.median()


def segment_exists(name: str) -> bool:
    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


def raw_socket(server, timeout: float = 10.0) -> socket.socket:
    sock = socket.create_connection(
        (server.host, server.port), timeout=timeout
    )
    return sock


def post_bytes(op_body: dict) -> bytes:
    body = json.dumps(op_body).encode()
    return (
        b"POST /v1/session HTTP/1.1\r\n"
        b"Host: t\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: " + str(len(body)).encode() + b"\r\n"
        b"\r\n" + body
    )


def read_response(sock) -> tuple[int, dict[str, str], bytes]:
    """One framed HTTP response off ``sock``: (status, headers, body)."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(4096)
        assert chunk, f"connection closed mid-head: {data!r}"
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers["content-length"])
    while len(rest) < length:
        chunk = sock.recv(4096)
        assert chunk, "connection closed mid-body"
        rest += chunk
    body, leftover = rest[:length], rest[length:]
    # Push pipelined leftovers back for the next read_response call.
    if leftover:
        sock._leftover = leftover  # type: ignore[attr-defined]
    return status, headers, body


class TestAsyncFront:
    def test_end_to_end_matches_threaded_semantics(self):
        """The full client workload over the async front answers
        exactly what a local connection answers."""
        expected = drive(repro.connect(RELATIONS))
        with AsyncReproServer(
            RELATIONS, workers=2, default_query=QUERY
        ) as server:
            connection = repro.connect(server.url)
            assert drive(connection) == expected
            health = server.health()
            assert health["front"] == "async"
            assert health["mode"] == "threads"
            stats = server.stats()
            assert stats["front"]["kind"] == "async"
            assert stats["dispatch"]["rejections"] == 0
            connection.close()
        assert server.clean_shutdown is True

    def test_keep_alive_many_requests_one_socket(self):
        """Dozens of requests ride one TCP connection; the front never
        closes it under the client."""
        with AsyncReproServer(
            RELATIONS, workers=2, default_query=QUERY
        ) as server:
            sock = raw_socket(server)
            try:
                for _ in range(25):
                    sock.sendall(
                        post_bytes(
                            {"op": "count", "order": ["x", "y", "z"]}
                        )
                    )
                    status, headers, body = read_response(sock)
                    assert status == 200
                    assert headers["connection"] == "keep-alive"
                    assert json.loads(body)["result"]["count"] == 50
            finally:
                sock.close()
            assert server.stats()["front"]["connections_peak"] >= 1

    def test_pipelined_requests_answered_in_order(self):
        """Two requests in one write get two framed responses in
        request order — leftover buffer bytes are never dropped."""
        with AsyncReproServer(
            RELATIONS, workers=2, default_query=QUERY
        ) as server:
            sock = raw_socket(server)
            try:
                sock.sendall(
                    post_bytes({"op": "count", "order": ["x", "y", "z"]})
                    + post_bytes(
                        {
                            "op": "access",
                            "order": ["x", "y", "z"],
                            "indices": [0],
                        }
                    )
                )
                status, _headers, body = read_response(sock)
                assert status == 200
                first = json.loads(body)
                assert first["op"] == "count"
                leftover = getattr(sock, "_leftover", b"")

                class _Prefixed:
                    def __init__(self, sock, buffered):
                        self._sock, self._buffered = sock, buffered

                    def recv(self, n):
                        if self._buffered:
                            out = self._buffered[:n]
                            self._buffered = self._buffered[n:]
                            return out
                        return self._sock.recv(n)

                status, _headers, body = read_response(
                    _Prefixed(sock, leftover)
                )
                assert status == 200
                second = json.loads(body)
                assert second["op"] == "access"
                assert second["result"]["answers"] == [[0, 0, 0]]
            finally:
                sock.close()

    def test_fan_in_exceeding_worker_count(self):
        """4x more concurrent connections than workers all finish
        correctly — the loop multiplexes, dispatch bounds the work."""
        expected = drive(repro.connect(RELATIONS))
        with AsyncReproServer(
            RELATIONS, workers=2, default_query=QUERY
        ) as server:
            results: list = [None] * 8
            def hit(slot: int) -> None:
                connection = repro.connect(server.url)
                try:
                    results[slot] = drive(connection)
                finally:
                    connection.close()

            threads = [
                threading.Thread(target=hit, args=(slot,))
                for slot in range(len(results))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert results == [expected] * len(results)
            assert (
                server.stats()["front"]["connections_peak"]
                > server.workers
            )
        assert server.clean_shutdown is True

    def test_connection_ceiling_rejects_with_503(self):
        """Connection max_connections+1 gets an immediate structured
        503 with Retry-After and a closed socket."""
        with AsyncReproServer(
            RELATIONS,
            workers=1,
            default_query=QUERY,
            max_connections=1,
        ) as server:
            first = raw_socket(server)
            try:
                # Prove the first connection is registered before the
                # second connects.
                first.sendall(
                    post_bytes({"op": "count", "order": ["x", "y", "z"]})
                )
                status, _headers, _body = read_response(first)
                assert status == 200

                second = raw_socket(server)
                try:
                    status, headers, body = read_response(second)
                    assert status == 503
                    assert headers["retry-after"] == "1"
                    assert headers["connection"] == "close"
                    payload = json.loads(body)
                    assert payload["error_type"] == "OverloadedError"
                    # The server closes after the rejection.
                    assert second.recv(1) == b""
                finally:
                    second.close()
            finally:
                first.close()
            assert server.stats()["front"]["ceiling_rejections"] >= 1

    def test_full_queues_answer_503_with_retry_after(self):
        """Bounded admission: every slot pending → a structured 503
        the HTTP client replays as OverloadedError."""
        with AsyncReproServer(
            RELATIONS, workers=1, default_query=QUERY, queue_depth=1
        ) as server:
            dispatcher = server.core._dispatcher
            index = dispatcher.admit()  # the one slot, now full
            try:
                sock = raw_socket(server)
                try:
                    sock.sendall(
                        post_bytes(
                            {"op": "count", "order": ["x", "y", "z"]}
                        )
                    )
                    status, headers, body = read_response(sock)
                    assert status == 503
                    assert headers["retry-after"] == "1"
                    payload = json.loads(body)
                    assert payload["ok"] is False
                    assert payload["error_type"] == "OverloadedError"
                finally:
                    sock.close()

                connection = repro.connect(server.url)
                with pytest.raises(OverloadedError):
                    connection.prepare(QUERY, order=["x", "y", "z"])
                connection.close()
            finally:
                dispatcher.release(index)
            stats = server.stats()
            assert stats["dispatch"]["rejections"] >= 2
            assert stats["server"]["http_errors"]["503"] >= 2
            # Released: the same request now succeeds.
            connection = repro.connect(server.url)
            assert drive(connection)[0] == 50
            connection.close()

    def test_stalled_client_loses_connection_not_a_worker(self):
        """A half-sent head trips the read timeout; the connection is
        closed and serving continues for healthy clients."""
        with AsyncReproServer(
            RELATIONS,
            workers=1,
            default_query=QUERY,
            request_timeout=0.5,
        ) as server:
            stalled = raw_socket(server)
            try:
                stalled.sendall(b"POST /v1/session HTT")  # ... nothing
                deadline = time.monotonic() + 10
                stalled.settimeout(10)
                assert stalled.recv(1) == b""  # server closed on us
                assert time.monotonic() < deadline
            finally:
                stalled.close()
            connection = repro.connect(server.url)
            assert drive(connection)[0] == 50
            connection.close()

    def test_drain_finishes_in_flight_request(self):
        """Shutdown with a request mid-dispatch: the request completes
        and the drain is clean, not cancelled."""
        with AsyncReproServer(
            RELATIONS, workers=1, default_query=QUERY, queue_depth=4
        ) as server:
            dispatcher = server.core._dispatcher
            held = dispatcher.admit()
            dispatcher.acquire(held)  # the worker slot is now busy
            outcome: dict = {}

            def slow_request() -> None:
                sock = raw_socket(server, timeout=30)
                try:
                    sock.sendall(
                        post_bytes(
                            {"op": "count", "order": ["x", "y", "z"]}
                        )
                    )
                    status, _headers, body = read_response(sock)
                    outcome["status"] = status
                    outcome["body"] = json.loads(body)
                finally:
                    sock.close()

            thread = threading.Thread(target=slow_request)
            thread.start()
            # Let the request reach acquire() and block on the held
            # slot, then begin the drain while it is in flight.
            time.sleep(0.3)
            server.request_shutdown()
            time.sleep(0.2)
            dispatcher.release(held)
            thread.join(timeout=30)
            server.shutdown()
            assert outcome.get("status") == 200
            assert outcome["body"]["result"]["count"] == 50
        assert server.clean_shutdown is True

    def test_async_procs_mode_end_to_end(self):
        """--async composes with --procs: same answers, clean drain,
        no leaked shared-memory segments."""
        expected = drive(repro.connect(RELATIONS, engine="numpy"))
        with AsyncReproServer(
            RELATIONS, engine="numpy", procs=2, default_query=QUERY
        ) as server:
            prefix = server._backend.plane.prefix
            live = server._backend.plane.live_segments()
            connection = repro.connect(server.url)
            assert drive(connection) == expected
            assert server.health()["mode"] == "procs"
            connection.close()
        assert server.clean_shutdown is True
        assert not any(
            segment_exists(s) for s in live if s.startswith(prefix)
        )


class TestAsyncCLI:
    def test_sigterm_drains_cleanly(self, tmp_path):
        """`repro serve --async` + SIGTERM exits 0 after a drain."""
        import os
        import signal
        import subprocess
        import sys
        import urllib.request

        csv = tmp_path / "r.csv"
        csv.write_text("1,2\n2,3\n3,4\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--async",
                "--relation",
                f"R={csv}",
                "--query",
                "Q(x, y) :- R(x, y)",
                "--port",
                "0",
                "--workers",
                "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "repro serving on http://" in banner, banner
            url = banner.split("repro serving on ")[1].split()[0]
            deadline = time.monotonic() + 30
            while True:
                try:
                    with urllib.request.urlopen(
                        url + "/healthz", timeout=5
                    ) as response:
                        health = json.loads(response.read())
                    assert health["front"] == "async"
                    break
                except OSError:
                    assert time.monotonic() < deadline
                    time.sleep(0.1)
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
