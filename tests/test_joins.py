"""Unit tests for relational operators, Generic Join, Yannakakis."""

import random

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.errors import DatabaseError
from repro.joins.generic_join import (
    evaluate,
    generic_join,
    generic_join_iter,
    tables_of_query,
)
from repro.joins.operators import Table
from repro.joins.trie import Trie
from repro.joins.yannakakis import (
    acyclic_join,
    count_acyclic_join,
    full_reduce,
)
from repro.query.atoms import Atom
from repro.query.catalog import triangle_query
from repro.query.parser import parse_query
from tests.conftest import random_database_for


class TestTable:
    def test_from_atom_repeated_variable(self):
        relation = Relation([(1, 1), (1, 2)])
        table = Table.from_atom(Atom("R", ("x", "x")), relation)
        assert table.schema == ("x",)
        assert table.rows == frozenset({(1,)})

    def test_from_atom_arity_check(self):
        with pytest.raises(DatabaseError):
            Table.from_atom(Atom("R", ("x",)), Relation([(1, 2)]))

    def test_project(self):
        t = Table(("x", "y"), {(1, 2), (3, 2)})
        assert t.project(("y",)).rows == frozenset({(2,)})

    def test_select(self):
        t = Table(("x", "y"), {(1, 2), (3, 2)})
        assert t.select({"x": 1}).rows == frozenset({(1, 2)})

    def test_semijoin(self):
        t = Table(("x", "y"), {(1, 2), (3, 4)})
        other = Table(("y", "z"), {(2, 9)})
        assert t.semijoin(other).rows == frozenset({(1, 2)})

    def test_semijoin_no_shared_columns(self):
        t = Table(("x",), {(1,)})
        assert t.semijoin(Table(("y",), {(5,)})).rows == t.rows
        assert t.semijoin(Table(("y",), set())).rows == frozenset()

    def test_natural_join(self):
        t = Table(("x", "y"), {(1, 2)})
        u = Table(("y", "z"), {(2, 3), (2, 4), (9, 9)})
        joined = t.natural_join(u)
        assert joined.schema == ("x", "y", "z")
        assert joined.rows == frozenset({(1, 2, 3), (1, 2, 4)})

    def test_schema_repeat_rejected(self):
        with pytest.raises(DatabaseError):
            Table(("x", "x"), set())


class TestTrie:
    def test_structure(self):
        t = Table(("x", "y"), {(1, 2), (1, 3)})
        trie = Trie(t, ["x", "y"])
        assert set(trie.root) == {1}
        assert set(trie.root[1]) == {2, 3}

    def test_column_order_validation(self):
        t = Table(("x", "y"), {(1, 2)})
        with pytest.raises(ValueError):
            Trie(t, ["x"])


class TestGenericJoin:
    def test_triangle(self):
        r = Table(("x", "y"), {(1, 2), (2, 3)})
        s = Table(("y", "z"), {(2, 3), (3, 1)})
        t = Table(("z", "x"), {(3, 1), (1, 2)})
        joined = generic_join([r, s, t], ["x", "y", "z"])
        assert joined.rows == frozenset({(1, 2, 3), (2, 3, 1)})

    def test_yields_in_lexicographic_order(self):
        rng = random.Random(4)
        q = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        db = random_database_for(q, rng, rows=30, domain=5)
        tables = tables_of_query(q, db)
        answers = list(generic_join_iter(tables, ["z", "x", "y"]))
        assert answers == sorted(answers)

    def test_uncovered_variable_rejected(self):
        r = Table(("x",), {(1,)})
        with pytest.raises(ValueError):
            generic_join([r], ["x", "y"])

    def test_cartesian_components(self):
        r = Table(("x",), {(1,), (2,)})
        s = Table(("y",), {(7,)})
        joined = generic_join([r, s], ["x", "y"])
        assert joined.rows == frozenset({(1, 7), (2, 7)})

    def test_evaluate_with_projection(self):
        q = parse_query("Q(x) :- R(x, y)")
        db = Database({"R": {(1, 2), (1, 3), (4, 2)}})
        assert evaluate(q, db).rows == frozenset({(1,), (4,)})


class TestYannakakis:
    def _path_tables(self, rng):
        q = parse_query("Q(x, y, z, w) :- R(x, y), S(y, z), T(z, w)")
        db = random_database_for(q, rng, rows=25, domain=5)
        return q, db, tables_of_query(q, db)

    def test_full_reduce_keeps_only_participating_rows(self, rng):
        q, db, tables = self._path_tables(rng)
        reduced = full_reduce(tables)
        answers = evaluate(q, db)
        participating = [set() for _ in tables]
        index = {v: i for i, v in enumerate(q.variables)}
        for row in answers.rows:
            for t, table in enumerate(tables):
                participating[t].add(
                    tuple(row[index[v]] for v in table.schema)
                )
        for t, table in enumerate(reduced):
            assert table.rows == frozenset(participating[t])

    def test_acyclic_join_matches_generic_join(self, rng):
        q, db, tables = self._path_tables(rng)
        expected = evaluate(q, db).rows
        got = acyclic_join(tables).project(q.variables).rows
        assert got == expected

    def test_count_matches(self, rng):
        q, db, tables = self._path_tables(rng)
        assert count_acyclic_join(tables) == len(evaluate(q, db).rows)

    def test_cyclic_rejected(self):
        tables = tables_of_query(
            triangle_query(),
            Database(
                {
                    "R1": {(1, 1)},
                    "R2": {(1, 1)},
                    "R3": {(1, 1)},
                }
            ),
        )
        with pytest.raises(ValueError):
            full_reduce(tables)

    def test_disconnected_count(self):
        r = Table(("x",), {(1,), (2,)})
        s = Table(("y",), {(5,), (6,), (7,)})
        assert count_acyclic_join([r, s]) == 6
