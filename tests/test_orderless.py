"""Tests for orderless direct access on the 4-cycle (Lemma 48)."""

import pytest

from repro.core.orderless import OrderlessFourCycleAccess, split_heavy_light
from repro.data.database import Database
from repro.data.generators import four_cycle_database, random_database
from repro.errors import OutOfBoundsError
from repro.joins.generic_join import evaluate
from repro.joins.operators import Table
from repro.query.catalog import four_cycle_query


def brute(database):
    return {
        tuple(row)
        for row in evaluate(
            four_cycle_query(), database, ["x1", "x2", "x3", "x4"]
        ).rows
    }


class TestHeavyLightSplit:
    def test_partition(self):
        table = Table(
            ("a", "b"),
            {(0, i) for i in range(9)} | {(i, 0) for i in range(1, 4)},
        )
        heavy, light = split_heavy_light(table)
        assert heavy.rows | light.rows == table.rows
        assert not heavy.rows & light.rows
        # 0 has degree 9 > sqrt(12); others degree 1
        assert all(row[0] == 0 for row in heavy.rows)

    def test_all_light(self):
        table = Table(("a", "b"), {(i, i) for i in range(10)})
        heavy, light = split_heavy_light(table)
        assert not heavy.rows and len(light.rows) == 10


class TestOrderlessAccess:
    def test_is_a_bijection_onto_answers(self, rng):
        for seed in range(4):
            db = four_cycle_database(50, seed=seed)
            access = OrderlessFourCycleAccess(db)
            expected = brute(db)
            got = [access.tuple_at(i) for i in range(len(access))]
            assert len(got) == len(expected)
            assert set(got) == expected
            assert len(set(got)) == len(got)  # injective

    def test_uniform_random_data(self, rng):
        db = random_database(four_cycle_query(), 80, 9, seed=3)
        access = OrderlessFourCycleAccess(db)
        assert set(
            access.tuple_at(i) for i in range(len(access))
        ) == brute(db)

    def test_out_of_bounds(self):
        db = four_cycle_database(20, seed=0)
        access = OrderlessFourCycleAccess(db)
        with pytest.raises(OutOfBoundsError):
            access.tuple_at(len(access))

    def test_empty_relation(self):
        from repro.data.relation import Relation

        db = Database(
            {
                "R1": Relation([], arity=2),
                "R2": {(1, 2)},
                "R3": {(2, 3)},
                "R4": {(3, 1)},
            }
        )
        access = OrderlessFourCycleAccess(db)
        assert len(access) == 0

    def test_dense_instance_stays_within_budget(self):
        # Complete bipartite relations: |Q(D)| = n^4 answers but the
        # per-bag budget must stay well below materializing the output.
        n = 8
        full = {(a, b) for a in range(n) for b in range(n)}
        db = Database(
            {"R1": full, "R2": full, "R3": full, "R4": full}
        )
        access = OrderlessFourCycleAccess(db)
        assert len(access) == n ** 4
        assert access.bag_budget <= len(db) ** 1.5
        # spot check membership
        assert access.tuple_at(0) in brute(db)


class TestBooleanAndCounting:
    """The closing observations of §8.2/§8.3: existence and counting."""

    def test_existence_matches_bruteforce(self):
        from repro.core.orderless import four_cycle_answer_exists

        positive = four_cycle_database(40, seed=2)
        assert four_cycle_answer_exists(positive) == bool(
            brute(positive)
        )
        from repro.data.relation import Relation

        empty = Database(
            {
                "R1": {(1, 2)},
                "R2": {(2, 3)},
                "R3": {(3, 4)},
                "R4": Relation([], arity=2),
            }
        )
        assert not four_cycle_answer_exists(empty)

    def test_count_matches_bruteforce(self):
        from repro.core.orderless import four_cycle_count

        for seed in range(3):
            db = four_cycle_database(40, seed=seed)
            assert four_cycle_count(db) == len(brute(db))
