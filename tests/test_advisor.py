"""Tests for the order advisor."""

from fractions import Fraction

from repro.core.advisor import (
    cheapest_order,
    cheapest_order_with_prefix,
    order_cost_spread,
    rank_orders,
)
from repro.core.htw import fractional_hypertree_width
from repro.query.catalog import (
    example5_query,
    four_cycle_query,
    path_query,
    star_query,
    triangle_query,
)
from repro.query.variable_order import VariableOrder


class TestRanking:
    def test_star_cheapest_is_tractable(self):
        # One leaf before the center is still trio-free; the center must
        # come no later than second for ι = 1.
        report = cheapest_order(star_query(3))
        assert report.iota == 1
        assert "z" in (report.order[0], report.order[1])
        assert report.disruptive_trio is None

    def test_star_ranking_is_monotone(self):
        reports = rank_orders(star_query(2))
        iotas = [r.iota for r in reports]
        assert iotas == sorted(iotas)
        assert iotas[0] == 1 and iotas[-1] == 2

    def test_limit(self):
        assert len(rank_orders(path_query(2), limit=3)) == 3

    def test_cheapest_matches_fhtw(self):
        for query in (
            star_query(3),
            triangle_query(),
            four_cycle_query(),
            example5_query(),
        ):
            width, _ = fractional_hypertree_width(query)
            assert cheapest_order(query).iota == width

    def test_describe_mentions_iota(self):
        report = cheapest_order(star_query(2))
        assert "ι = 1" in report.describe()


class TestPrefixPlanning:
    def test_star_with_leaf_prefix_is_forced_bad(self):
        # Requiring the x-variables first forces the bad order cost.
        query = star_query(2)
        report = cheapest_order_with_prefix(
            query, VariableOrder(["x1", "x2"])
        )
        assert report.iota == 2

    def test_star_with_center_prefix_stays_cheap(self):
        query = star_query(2)
        report = cheapest_order_with_prefix(
            query, VariableOrder(["z"])
        )
        assert report.iota == 1
        assert report.order[0] == "z"

    def test_single_leaf_prefix_recovers_tractability(self):
        # (x1, z, x2) has no disruptive trio: ι = 1.
        query = star_query(2)
        report = cheapest_order_with_prefix(
            query, VariableOrder(["x1"])
        )
        assert report.iota == 1
        assert list(report.order)[1] == "z"


class TestSpread:
    def test_star_spread(self):
        low, high = order_cost_spread(star_query(2))
        assert (low, high) == (1, 2)

    def test_triangle_has_no_spread(self):
        low, high = order_cost_spread(triangle_query())
        assert low == high == Fraction(3, 2)

    def test_four_cycle_spread(self):
        low, high = order_cost_spread(four_cycle_query())
        assert low == 2 and high == 2
