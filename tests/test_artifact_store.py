"""The shared artifact store: per-artifact build locks, cost-informed
eviction, per-worker sessions over one store.

This is the concurrency backbone of ``repro serve``
(tests/test_server.py exercises it over HTTP; here it is pinned down
at the library layer where failures are easiest to localize).
"""

from __future__ import annotations

import threading
from fractions import Fraction

import pytest

from repro import Database, parse_query
from repro.session import (
    AccessSession,
    ArtifactStore,
    CacheStats,
    CostAwareCache,
)

STAR = "Q(x, y, z, w) :- R(x, y), S(x, z), T(x, w)"
PATH = "Q(x, y, z) :- R(x, y), S(y, z)"


def path_database() -> Database:
    return Database(
        {"R": {(1, 2), (3, 2), (3, 4)}, "S": {(2, 7), (2, 9), (4, 1)}}
    )


class TestCostAwareCache:
    def test_expensive_artifact_survives_cheap_pressure(self):
        cache = CostAwareCache(2, CacheStats())
        cache.put("hard", "H", cost=Fraction(2))
        for index in range(3):
            cache.put(f"easy-{index}", index, cost=1)
        assert "hard" in cache  # ι=2 outlives a wave of ι=1 entries
        # A plain LRU would have evicted it on the second put.

    def test_expensive_artifact_ages_out_eventually(self):
        # GreedyDual, not pinning: the clock advances with every
        # eviction, so an unused expensive entry eventually loses to
        # fresh cheap ones instead of squatting forever.
        cache = CostAwareCache(2, CacheStats())
        cache.put("hard", "H", cost=Fraction(2))
        for index in range(8):
            cache.put(f"easy-{index}", index, cost=1)
        assert "hard" not in cache

    def test_uniform_costs_degenerate_to_lru(self):
        cache = CostAwareCache(2, CacheStats())
        cache.put("a", 1, cost=1)
        cache.put("b", 2, cost=1)
        assert cache.get("a") == 1  # refresh a's recency/credit
        cache.put("c", 3, cost=1)  # evicts b, the LRU entry
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_hit_renews_credit(self):
        cache = CostAwareCache(2, CacheStats())
        cache.put("a", 1, cost=1)
        cache.put("b", 2, cost=1)
        cache.put("c", 3, cost=1)  # evicts a, advances the clock
        assert cache.get("b") == 2  # renews b's credit at the new clock
        cache.put("d", 4, cost=1)  # now c is the victim, not hot b
        assert "b" in cache and "c" not in cache

    def test_stats_attribution_aggregate_and_extra(self):
        aggregate, mine = CacheStats(), CacheStats()
        cache = CostAwareCache(4, aggregate)
        cache.put("k", "v")
        assert cache.get("k", extra=mine) == "v"
        assert cache.get("absent", extra=mine) is None
        assert cache.get("k") == "v"  # no extra: aggregate only
        assert (aggregate.hits, aggregate.misses) == (2, 1)
        assert (mine.hits, mine.misses) == (1, 1)

    def test_peek_and_contains_touch_nothing(self):
        stats = CacheStats()
        cache = CostAwareCache(4, stats)
        cache.put("k", "v")
        assert cache.peek("k") == "v"
        assert "k" in cache
        assert cache.peek("absent") is None
        assert stats.hits == stats.misses == 0

    def test_zero_capacity_disables_caching(self):
        cache = CostAwareCache(0, CacheStats())
        cache.put("k", "v", cost=5)
        assert cache.peek("k") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            CostAwareCache(-1, CacheStats())

    def test_clear_resets_clock(self):
        cache = CostAwareCache(1, CacheStats())
        cache.put("a", 1, cost=10)
        cache.put("b", 2, cost=1)  # eviction advances the clock
        cache.clear()
        assert len(cache) == 0
        assert cache._clock == 0


class TestArtifactStore:
    def test_database_encoded_once_across_sessions(self):
        store = ArtifactStore(path_database())
        sessions = [store.session() for _ in range(4)]
        for session in sessions:
            session.access(PATH, order=["x", "y", "z"])
        assert store.stats.database_encodes == 1
        assert store.stats.sessions == 4

    def test_mapping_database_converted(self):
        store = ArtifactStore({"R": {(1, 2)}})
        assert isinstance(store.database, Database)

    def test_racing_workers_build_once(self):
        store = ArtifactStore(path_database())
        built = []
        release = threading.Event()

        def builder():
            built.append(threading.get_ident())
            release.wait(timeout=10)
            return "artifact"

        results = []

        def worker():
            results.append(
                store.get_or_build("preprocessing", "k", builder)
            )

        threads = [
            threading.Thread(target=worker) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        while not built:  # let the first builder enter
            pass
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert results == ["artifact"] * 4
        assert len(built) == 1  # one build, three waiters
        assert store.stats.build_waits >= 1
        assert store.stats.artifact_builds == 1

    def test_distinct_keys_build_concurrently(self):
        """The acceptance property at the store layer: two artifacts
        under different keys proceed under different locks — with one
        global lock the rendezvous below would deadlock."""
        store = ArtifactStore(path_database())
        barrier = threading.Barrier(2, timeout=10)

        def builder(tag):
            def build():
                barrier.wait()  # both builders must be in flight
                return tag

            return build

        errors = []

        def worker(tag):
            try:
                store.get_or_build("forest", tag, builder(tag))
            except BaseException as error:  # noqa: BLE001 (collected)
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(tag,))
            for tag in ("decomposition-a", "decomposition-b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=15)
        assert not errors
        assert store.stats.build_concurrency_peak >= 2

    def test_clear_keeps_in_flight_build_locks(self):
        """clear() during a build must not mint a second lock for the
        same key: the racer waits for the in-flight builder instead of
        starting a duplicate build."""
        store = ArtifactStore(path_database())
        entered = threading.Event()
        release = threading.Event()
        builds = []

        def slow_builder():
            builds.append("slow")
            entered.set()
            release.wait(timeout=10)
            return "first"

        def fast_builder():
            builds.append("fast")  # must never run
            return "second"

        first = threading.Thread(
            target=store.get_or_build,
            args=("forest", "k", slow_builder),
        )
        first.start()
        assert entered.wait(timeout=10)
        store.clear()  # while the build is in flight
        racer_result = []
        racer = threading.Thread(
            target=lambda: racer_result.append(
                store.get_or_build("forest", "k", fast_builder)
            )
        )
        racer.start()
        release.set()
        first.join(timeout=10)
        racer.join(timeout=10)
        assert builds == ["slow"]  # exactly one build ran
        assert racer_result == ["first"]
        assert store.stats.build_waits == 1

    def test_pruned_lock_is_not_trusted(self):
        """A build lock acquired after being pruned from the registry
        is retaken, so two builders can never hold different locks for
        one key (regression for the prune race)."""
        store = ArtifactStore(path_database())
        store.LOCK_REGISTRY_LIMIT = 0  # prune on every _build_lock call
        results = [
            store.get_or_build("forest", "k", lambda: "v")
            for _ in range(3)
        ]
        assert results == ["v"] * 3
        assert store.stats.artifact_builds == 1

    def test_failed_build_does_not_poison_the_key(self):
        store = ArtifactStore(path_database())

        def failing():
            raise RuntimeError("transient")

        with pytest.raises(RuntimeError):
            store.get_or_build("access", "k", failing)
        assert (
            store.get_or_build("access", "k", lambda: "ok") == "ok"
        )

    def test_clear_drops_artifacts_keeps_counters_and_encoding(self):
        store = ArtifactStore(path_database())
        session = store.session()
        session.access(PATH, order=["x", "y", "z"])
        builds = store.stats.artifact_builds
        assert builds > 0
        store.clear()
        assert len(store.cache("preprocessing")) == 0
        assert store.stats.artifact_builds == builds
        assert store.stats.database_encodes == 1
        # And serving still works after the wipe.
        assert len(session.access(PATH, order=["x", "y", "z"])) == 5

    def test_attached_session_rejects_conflicting_setup(self):
        store = ArtifactStore(path_database())
        with pytest.raises(ValueError):
            AccessSession(path_database(), store=store)
        with pytest.raises(ValueError):
            AccessSession(engine="python", store=store)

    def test_session_requires_database_or_store(self):
        with pytest.raises(ValueError):
            AccessSession()

    def test_shared_session_clear_leaves_siblings_warm(self):
        store = ArtifactStore(path_database())
        worker_a, worker_b = store.session(), store.session()
        worker_a.access(PATH, order=["x", "y", "z"])
        worker_a.clear()  # must NOT wipe the shared store
        worker_b.access(PATH, order=["x", "y", "z"])
        assert worker_b.stats.bag_materializations == 0
        assert worker_b.stats.access.hits == 1

    def test_per_worker_counters_shared_artifacts(self):
        query = parse_query(STAR)
        database = Database(
            {
                "R": {(m, v) for m in range(2) for v in range(8)},
                "S": {(m, v) for m in range(2) for v in range(8)},
                "T": {(m, v) for m in range(2) for v in range(8)},
            }
        )
        store = ArtifactStore(database)
        cold, warm = store.session(), store.session()
        cold.access(query, order=["x", "y", "z", "w"])
        # A sibling order on the *other* worker: same decomposition,
        # zero new tuple work, and the reuse shows up in the warm
        # worker's own counters.
        warm.access(query, order=["x", "w", "z", "y"])
        assert cold.stats.bag_materializations == 4
        assert warm.stats.bag_materializations == 0
        assert warm.stats.preprocessing.hits == 1
        assert warm.stats.forest.hits == 1
        # The store aggregate saw both workers.
        assert store.stats.preprocessing.hits >= 1
        assert store.stats.preprocessing.misses >= 1

    def test_store_repr_and_session_stats_nest_store(self):
        store = ArtifactStore(path_database())
        session = store.session()
        session.access(PATH, order=["x", "y", "z"])
        assert "ArtifactStore" in repr(store)
        stats = session.cache_stats()
        assert stats["store"]["database_encodes"] == 1
        assert stats["store"]["artifact_builds"] >= 1
