"""Unit tests for repro.query.query and the parser."""

import pytest

from repro.errors import QueryError
from repro.query.atoms import Atom
from repro.query.parser import parse_query
from repro.query.query import ConjunctiveQuery, JoinQuery


class TestJoinQuery:
    def test_variables_in_first_occurrence_order(self):
        q = JoinQuery((Atom("R", ("y", "x")), Atom("S", ("x", "z"))))
        assert q.variables == ("y", "x", "z")

    def test_free_variables_equal_variables(self):
        q = JoinQuery((Atom("R", ("x", "y")),))
        assert q.free_variables == q.variables

    def test_self_join_detection(self):
        q = JoinQuery((Atom("R", ("x",)), Atom("R", ("y",))))
        assert q.has_self_joins
        q2 = JoinQuery((Atom("R", ("x",)), Atom("S", ("y",))))
        assert not q2.has_self_joins

    def test_arity_consistency_enforced(self):
        with pytest.raises(QueryError):
            JoinQuery((Atom("R", ("x",)), Atom("R", ("x", "y"))))

    def test_arity_of(self):
        q = JoinQuery((Atom("R", ("x", "y")),))
        assert q.arity_of("R") == 2
        with pytest.raises(QueryError):
            q.arity_of("S")

    def test_needs_an_atom(self):
        with pytest.raises(QueryError):
            JoinQuery(())

    def test_scopes(self):
        q = JoinQuery((Atom("R", ("x", "x", "y")),))
        assert q.scopes() == (frozenset({"x", "y"}),)

    def test_str_roundtrip_shape(self):
        q = JoinQuery((Atom("R", ("x", "y")), Atom("S", ("y", "z"))))
        assert str(q) == "Q(x, y, z) :- R(x, y), S(y, z)"


class TestConjunctiveQuery:
    def test_projection(self):
        q = JoinQuery((Atom("R", ("x", "y")),)).project(("x",))
        assert isinstance(q, ConjunctiveQuery)
        assert q.free_variables == ("x",)
        assert q.projected_variables == ("y",)

    def test_head_variable_must_be_in_body(self):
        with pytest.raises(QueryError):
            JoinQuery((Atom("R", ("x",)),)).project(("z",))

    def test_duplicate_head_variables_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                (Atom("R", ("x", "y")),), free=("x", "x")
            )

    def test_as_join_query(self):
        q = JoinQuery((Atom("R", ("x", "y")),)).project(("x",))
        assert q.as_join_query().free_variables == ("x", "y")


class TestParser:
    def test_parse_join_query(self):
        q = parse_query("Q(x, y) :- R(x, y)")
        assert isinstance(q, JoinQuery)
        assert not isinstance(q, ConjunctiveQuery)
        assert q.name == "Q"

    def test_parse_projection(self):
        q = parse_query("Q(x) :- R(x, y)")
        assert isinstance(q, ConjunctiveQuery)
        assert q.free_variables == ("x",)

    def test_parse_self_join(self):
        q = parse_query("Q(x, y) :- R(x), R(y)")
        assert q.has_self_joins

    def test_whitespace_insensitive(self):
        q = parse_query("  Q( x ,y )  :-  R( x , y )  ")
        assert q.variables == ("x", "y")

    def test_missing_arrow_rejected(self):
        with pytest.raises(QueryError):
            parse_query("Q(x) = R(x)")

    def test_bad_atom_rejected(self):
        with pytest.raises(QueryError):
            parse_query("Q(x) :- R(x,)")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(QueryError):
            parse_query("Q(x) :- R((x)")
