"""Cross-module integration tests: full pipelines on one database."""

import random

from repro.core.access import DirectAccess
from repro.core.counting import (
    CountingFromDirectAccess,
    DirectAccessFromCounting,
    PrefixConstraint,
)
from repro.core.selfjoins import SelfJoinFreeAccess
from repro.core.tasks import boxplot, median, sample_without_repetition
from repro.data.database import Database
from repro.data.generators import random_database
from repro.joins.generic_join import evaluate
from repro.lowerbounds.setdisjointness import (
    SetSystem,
    StarSetIntersection,
)
from repro.lowerbounds.zeroclique import (
    MultipartiteInstance,
    ZeroCliqueViaSetIntersection,
    brute_force_zero_clique,
)
from repro.query.catalog import example18_query, example5_order
from repro.query.parser import parse_query
from repro.query.transforms import self_join_free_version
from repro.query.variable_order import VariableOrder


class TestOrderStatisticsPipeline:
    """The §1 motivation: median/boxplot on a join without materializing."""

    def test_median_of_cyclic_query(self):
        query = example18_query()
        db = random_database(query, 40, 6, seed=5)
        order = example5_order()
        access = DirectAccess(query, order, db)
        if len(access) == 0:
            raise AssertionError("workload produced no answers")
        answers = sorted(
            order.key_of_tuple(tuple(r), query.variables)
            for r in evaluate(query, db, list(query.variables)).rows
        )
        assert median(access) == answers[(len(answers) - 1) // 2]
        summary = boxplot(access)
        assert summary["min"] == answers[0]
        assert summary["max"] == answers[-1]

    def test_sampling_distribution_support(self):
        query = parse_query("Q(x, y) :- R(x, y)")
        db = Database({"R": {(i, i % 3) for i in range(30)}})
        access = DirectAccess(query, VariableOrder(["x", "y"]), db)
        samples = sample_without_repetition(access, 30, seed=1)
        assert sorted(samples) == [
            access.tuple_at(i) for i in range(30)
        ]


class TestFullSelfJoinRoundtrip:
    """Q with self-joins -> counting -> colored -> Q^sf access (Thm 33),
    then re-derive counting from the produced access (Prop 35)."""

    def test_roundtrip(self):
        query = parse_query("Q(x, y) :- R(x), R(y)")
        db_sf = Database(
            {"R__x": {(1,), (3,)}, "R__y": {(2,), (3,)}}
        )
        order = VariableOrder(["x", "y"])
        access = SelfJoinFreeAccess(query, order, db_sf)
        expected = sorted(
            tuple(r)
            for r in evaluate(
                self_join_free_version(query), db_sf, ["x", "y"]
            ).rows
        )
        got = [access.tuple_at(i) for i in range(len(access))]
        assert got == expected

        counter = CountingFromDirectAccess(access)
        # count answers with x = 1
        assert counter.count(PrefixConstraint((), 1, 1)) == sum(
            1 for a in expected if a[0] == 1
        )
        rebuilt = DirectAccessFromCounting(
            counter, 2, sorted(db_sf.domain())
        )
        assert [
            rebuilt.tuple_at(i) for i in range(len(rebuilt))
        ] == expected


class TestHardnessPipeline:
    """Zero-3-Clique solved through the paper's full reduction chain,
    with the set-intersection oracle realized by star direct access."""

    def test_end_to_end(self):
        instance = MultipartiteInstance.random(
            3, 6, weight_bound=25, plant_zero=True, seed=13
        )
        expected = brute_force_zero_clique(instance)
        assert expected is not None
        reduction = ZeroCliqueViaSetIntersection(
            instance,
            intervals=4,
            oracle_factory=StarSetIntersection,
            seed=3,
        )
        clique = reduction.find_zero_clique()
        assert clique is not None
        assert instance.clique_weight(clique) == 0

    def test_star_oracle_against_merge(self):
        rng = random.Random(3)
        instance = SetSystem.random(3, 5, 4, 9, seed=4)
        oracle = StarSetIntersection(instance)
        for _ in range(20):
            indices = tuple(rng.randrange(5) for _ in range(3))
            expected = sorted(
                instance.families[0][indices[0]]
                & instance.families[1][indices[1]]
                & instance.families[2][indices[2]]
            )
            assert oracle.intersect(indices, 50) == expected
