"""Tests for the public facade: connect / Connection / AnswerView.

This module (plus ``tests/test_protocol.py``) is the new-API surface;
CI runs it with ``-W error::DeprecationWarning`` to prove the facade
never routes through a deprecated shim.  Deprecation of the old entry
points themselves is asserted here too (inside ``pytest.warns``, which
is compatible with that leg).
"""

from __future__ import annotations

import collections.abc
import threading
import warnings
from fractions import Fraction

import pytest

from repro import (
    Database,
    NotAnAnswerError,
    OutOfBoundsError,
    ReproError,
    connect,
)
from repro.engine import available_engines
from repro.facade import AnswerView, Connection

TWO_PATH = "Q(x, y, z) :- R(x, y), S(y, z)"


def two_path_connection(engine=None) -> Connection:
    return connect(
        {
            "R": {(1, 2), (3, 2), (3, 5)},
            "S": {(2, 7), (2, 9), (5, 1)},
        },
        engine=engine,
    )


def two_path_view(engine=None) -> AnswerView:
    return two_path_connection(engine).prepare(
        TWO_PATH, order=["x", "y", "z"]
    )


# Sorted by (x, y, z):
TWO_PATH_ANSWERS = [
    (1, 2, 7),
    (1, 2, 9),
    (3, 2, 7),
    (3, 2, 9),
    (3, 5, 1),
]


class TestConnect:
    def test_accepts_plain_mapping_and_database(self):
        for database in (
            {"R": {(1, 2)}},
            Database({"R": {(1, 2)}}),
        ):
            view = connect(database).prepare(
                "Q(x, y) :- R(x, y)", order=["x", "y"]
            )
            assert list(view) == [(1, 2)]

    def test_connection_context_manager_closes(self):
        with two_path_connection() as conn:
            assert not conn.closed
            conn.prepare(TWO_PATH, order=["x", "y", "z"])
        assert conn.closed
        with pytest.raises(ReproError):
            conn.prepare(TWO_PATH, order=["x", "y", "z"])

    def test_prepare_is_cache_aware_planning(self):
        conn = two_path_connection()
        conn.prepare(TWO_PATH, order=["x", "y", "z"])
        cold = conn.stats()["bag_materializations"]
        conn.prepare(TWO_PATH, order=["x", "y", "z"])
        assert conn.stats()["bag_materializations"] == cold

    def test_prepare_without_order_uses_planner(self):
        conn = two_path_connection()
        view = conn.prepare(TWO_PATH)
        assert list(view.order) == list(conn.plan(TWO_PATH).order)

    def test_prefix_constrains_planner(self):
        view = two_path_connection().prepare(TWO_PATH, prefix=["z"])
        assert list(view.order)[0] == "z"

    def test_engine_pinned(self):
        for engine in available_engines():
            conn = two_path_connection(engine)
            assert conn.engine_name == engine
            view = conn.prepare(TWO_PATH, order=["x", "y", "z"])
            assert view.engine_name == engine


class TestSequenceContract:
    def test_isinstance_sequence(self):
        view = two_path_view()
        assert isinstance(view, collections.abc.Sequence)
        assert isinstance(view[1:], collections.abc.Sequence)

    def test_len_and_positional_access(self):
        view = two_path_view()
        assert len(view) == 5
        assert [view[i] for i in range(5)] == TWO_PATH_ANSWERS

    def test_negative_indices(self):
        view = two_path_view()
        assert view[-1] == TWO_PATH_ANSWERS[-1]
        assert view[-5] == TWO_PATH_ANSWERS[0]

    def test_out_of_bounds_is_index_error(self):
        view = two_path_view()
        for bad in (5, -6, 99):
            with pytest.raises(OutOfBoundsError):
                view[bad]
            with pytest.raises(IndexError):  # the Sequence contract
                view[bad]

    def test_iter_and_reversed(self):
        view = two_path_view()
        assert list(view) == TWO_PATH_ANSWERS
        assert list(reversed(view)) == TWO_PATH_ANSWERS[::-1]

    def test_iteration_is_chunked(self):
        view = two_path_view()
        assert view.ITER_CHUNK >= 1
        counters = view.op_counters()
        list(view)
        after = view.op_counters()
        assert (
            after.get("access_batches", 0)
            - counters.get("access_batches", 0)
            == 1  # 5 answers, one batch
        )

    def test_slices_are_lazy_views(self):
        view = two_path_view()
        sub = view[1:4]
        assert isinstance(sub, AnswerView)
        assert list(sub) == TWO_PATH_ANSWERS[1:4]
        assert len(sub) == 3
        assert sub[-1] == TWO_PATH_ANSWERS[3]

    @pytest.mark.parametrize(
        "sl",
        [
            slice(None),
            slice(1, 4),
            slice(None, None, 2),
            slice(4, None, -1),
            slice(-2, None),
            slice(None, -2),
            slice(-1, 0, -2),
            slice(10, 20),
            slice(3, 1),
        ],
    )
    def test_slice_law(self, sl):
        view = two_path_view()
        assert list(view[sl]) == TWO_PATH_ANSWERS[sl]

    def test_slice_of_slice(self):
        view = two_path_view()
        assert (
            list(view[1:5][::-2]) == TWO_PATH_ANSWERS[1:5][::-2]
        )

    def test_bool(self):
        view = two_path_view()
        assert view
        assert not view[0:0]


class TestInverseAccess:
    @pytest.mark.parametrize("engine", available_engines())
    def test_rank_round_trips(self, engine):
        view = two_path_view(engine)
        for i, answer in enumerate(TWO_PATH_ANSWERS):
            assert view.rank(answer) == i
            assert view[view.rank(answer)] == answer

    @pytest.mark.parametrize("engine", available_engines())
    def test_contains_index_count(self, engine):
        view = two_path_view(engine)
        for i, answer in enumerate(TWO_PATH_ANSWERS):
            assert answer in view
            assert view.index(answer) == i
            assert view.count(answer) == 1
        assert (9, 9, 9) not in view
        assert "junk" not in view
        assert (1, 2) not in view
        assert view.count((9, 9, 9)) == 0

    @pytest.mark.parametrize("engine", available_engines())
    def test_rank_of_non_answer_raises_value_error(self, engine):
        view = two_path_view(engine)
        with pytest.raises(NotAnAnswerError):
            view.rank((9, 9, 9))
        with pytest.raises(ValueError):  # Sequence contract
            view.index((9, 9, 9))
        with pytest.raises(ValueError):
            view.index(("a", [], None))

    def test_index_start_stop(self):
        view = two_path_view()
        assert view.index((3, 2, 7), 1) == 2
        assert view.index((3, 2, 7), 1, 3) == 2
        assert view.index((3, 2, 7), -4) == 2
        with pytest.raises(ValueError):
            view.index((3, 2, 7), 3)
        with pytest.raises(ValueError):
            view.index((3, 2, 7), 0, 2)
        with pytest.raises(ValueError):
            view.index((3, 2, 7), 0, -4)

    def test_rank_respects_slice_windows(self):
        view = two_path_view()
        sub = view[1:4]
        assert sub.rank(TWO_PATH_ANSWERS[2]) == 1
        assert TWO_PATH_ANSWERS[0] not in sub
        with pytest.raises(NotAnAnswerError):
            sub.rank(TWO_PATH_ANSWERS[0])
        back = view[::-1]
        assert back.rank(TWO_PATH_ANSWERS[0]) == 4
        assert back[back.rank(TWO_PATH_ANSWERS[0])] == TWO_PATH_ANSWERS[0]

    def test_batch_ranks(self):
        view = two_path_view()
        rows = [TWO_PATH_ANSWERS[3], (9, 9, 9), TWO_PATH_ANSWERS[0]]
        assert view.ranks(rows) == [3, None, 0]

    @pytest.mark.parametrize("engine", available_engines())
    def test_rank_never_enumerates(self, engine):
        """Acceptance criterion: inverse access on a >= 10^4 answer view
        performs zero positional accesses (no enumeration fallback),
        asserted via the engine op counters."""
        n = 100
        conn = connect(
            {"R": {(i, j) for i in range(n) for j in range(n)}},
            engine=engine,
        )
        view = conn.prepare("Q(x, y) :- R(x, y)", order=["x", "y"])
        assert len(view) == n * n == 10_000
        before = view.op_counters()
        assert view.rank((57, 93)) == 57 * n + 93
        assert (13, 99) in view
        assert view.index((0, 1)) == 1
        with pytest.raises(NotAnAnswerError):
            view.rank((n, 0))
        after = view.op_counters()
        for scan_key in ("answer_walks", "access_batches", "access_indices"):
            assert after.get(scan_key, 0) == before.get(scan_key, 0), (
                f"rank lookup resolved positional accesses ({scan_key})"
            )
        assert after["rank_batches"] - before.get("rank_batches", 0) == 4

    @pytest.mark.parametrize("engine", available_engines())
    def test_rank_with_projection(self, engine):
        conn = connect(
            {
                "R": {(1, 2), (1, 3), (4, 2)},
                "S": {(2, 5), (2, 6), (3, 7)},
            },
            engine=engine,
        )
        view = conn.prepare(
            TWO_PATH, order=["x", "y", "z"], projected={"z"}
        )
        answers = list(view)
        assert answers == [(1, 2), (1, 3), (4, 2)]
        for i, answer in enumerate(answers):
            assert view.rank(answer) == i
        assert (4, 3) not in view


class TestTaskMethods:
    def test_match_sorted_list_semantics(self):
        view = two_path_view()
        full = TWO_PATH_ANSWERS
        assert view.median() == full[(len(full) - 1) // 2]
        assert view.quantile(0) == full[0]
        assert view.quantile(1) == full[-1]
        assert view.quantile(Fraction(1, 4)) == full[1]
        box = view.boxplot()
        assert box["min"] == full[0] and box["max"] == full[-1]
        assert view.page(1, 2) == full[2:4]
        assert view.page(9, 2) == []
        sample = view.sample(3, seed=7)
        assert len(sample) == len(set(sample)) == 3
        assert all(answer in view for answer in sample)
        assert view.to_list() == full

    def test_tasks_on_sliced_views(self):
        view = two_path_view()
        sub = view[1:4]
        assert sub.median() == TWO_PATH_ANSWERS[2]
        assert sub.page(0, 2) == TWO_PATH_ANSWERS[1:3]
        assert sub.sample(3, seed=0)

    def test_task_errors(self):
        view = two_path_view()
        with pytest.raises(OutOfBoundsError):
            view.page(-1, 2)
        with pytest.raises(OutOfBoundsError):
            view.sample(-1)
        with pytest.raises(OutOfBoundsError):
            view.sample(len(view) + 1)
        with pytest.raises(OutOfBoundsError):
            view[0:0].median()


class TestDeprecatedShims:
    """The old entry points still work, warn, and agree with the facade."""

    def test_direct_access_attribute_warns_and_works(self):
        import repro

        with pytest.warns(DeprecationWarning, match="repro.connect"):
            DirectAccess = repro.DirectAccess
        from repro import Database, VariableOrder, parse_query

        access = DirectAccess(
            parse_query(TWO_PATH),
            VariableOrder(["x", "y", "z"]),
            Database(
                {
                    "R": {(1, 2), (3, 2), (3, 5)},
                    "S": {(2, 7), (2, 9), (5, 1)},
                }
            ),
        )
        assert [access.tuple_at(i) for i in range(len(access))] == (
            TWO_PATH_ANSWERS
        )

    def test_preprocessing_attribute_warns(self):
        import repro

        with pytest.warns(DeprecationWarning):
            repro.Preprocessing

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.DoesNotExist

    def test_task_functions_warn_and_agree(self):
        from repro.core import tasks

        view = two_path_view()
        with pytest.warns(DeprecationWarning):
            assert tasks.median(view) == view.median()
        with pytest.warns(DeprecationWarning):
            assert tasks.boxplot(view) == view.boxplot()
        with pytest.warns(DeprecationWarning):
            assert tasks.page(view, 0, 2) == view.page(0, 2)
        with pytest.warns(DeprecationWarning):
            assert tasks.quantile(view, 0.5) == view.quantile(0.5)
        with pytest.warns(DeprecationWarning):
            assert tasks.answer_count(view) == len(view)
        with pytest.warns(DeprecationWarning):
            assert tasks.sample_without_repetition(
                view, 2, seed=3
            ) == view.sample(2, seed=3)
        with pytest.warns(DeprecationWarning):
            assert list(tasks.enumerate_in_order(view)) == list(view)

    def test_facade_is_deprecation_clean(self):
        """The facade itself must never route through a shim."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            conn = two_path_connection()
            view = conn.prepare(TWO_PATH, order=["x", "y", "z"])
            list(view)
            list(reversed(view))
            view.rank(TWO_PATH_ANSWERS[0])
            view.median()
            view.boxplot()
            view.page(0, 2)
            view.sample(2, seed=0)
            view[1:3].median()
            conn.plan(TWO_PATH)
            conn.stats()


class TestThreadSafety:
    def test_connections_have_independent_op_counters(self):
        first = two_path_view()
        second = two_path_view()
        baseline = second.op_counters().get("answer_walks", 0)
        first[0]
        first[1]
        assert (
            second.op_counters().get("answer_walks", 0) == baseline
        ), "one connection's work moved another's counters"

    def test_concurrent_sessions_keep_their_engines(self):
        """Two connections pinning different engines must never build
        on each other's engine, however their threads interleave."""
        engines = available_engines()
        if len(engines) < 2:
            pytest.skip("needs two engines")
        connections = {
            engine: two_path_connection(engine) for engine in engines
        }
        errors: list[BaseException] = []
        observed: list[list[tuple]] = []

        def worker(engine):
            try:
                conn = connections[engine]
                for index in range(6):
                    # Alternate orders so builds keep happening.
                    order = (
                        ["x", "y", "z"]
                        if index % 2
                        else ["z", "y", "x"]
                    )
                    view = conn.prepare(TWO_PATH, order=order)
                    assert view.engine_name == engine
                    # Canonicalize: tuples are laid out per order, so
                    # compare variable->value bindings instead.
                    observed.append(
                        sorted(
                            tuple(sorted(zip(view.columns, answer)))
                            for answer in view
                        )
                    )
            except BaseException as error:  # noqa: BLE001 (collected)
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(engine,))
            for engine in engines * 4
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len({tuple(rows) for rows in observed}) == 1

    def test_concurrent_prepare_and_stats(self):
        conn = connect(
            {
                "R": {(i, i % 7) for i in range(60)},
                "S": {(i % 7, i % 5) for i in range(60)},
            }
        )
        orders = [["x", "y", "z"], ["z", "y", "x"], ["y", "x", "z"], None]
        errors: list[BaseException] = []
        results: list[int] = []

        def worker(order):
            try:
                for _ in range(5):
                    view = conn.prepare(TWO_PATH, order=order)
                    results.append(len(view))
                    snapshot = conn.stats()
                    assert isinstance(snapshot, dict)
                    assert snapshot["requests"] >= 1
            except BaseException as error:  # noqa: BLE001 (re-raised)
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(order,))
            for order in orders * 3
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(set(results)) == 1  # every order serves the same count
        stats = conn.stats()
        assert stats["requests"] == 5 * len(threads)
