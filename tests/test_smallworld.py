"""Exhaustive small-world verification.

Model-checking style: enumerate *every* join query shape up to a small
size bound, *every* variable order, and a deterministic family of
databases, and check the core invariants on all of them. Complements the
randomized and property-based suites with full coverage of a finite
world.
"""

import itertools

from repro.core.access import DirectAccess
from repro.core.classify import classify
from repro.core.decomposition import DisruptionFreeDecomposition
from repro.data.database import Database
from repro.data.relation import Relation
from repro.hypergraph.disruptive_trios import has_disruptive_trio
from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.atoms import Atom
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder
from tests.conftest import lex_answers

VARIABLES = ("a", "b", "c")


def all_small_queries():
    """Every self-join-free query with <= 2 atoms over <= 3 variables.

    Scopes are nonempty ordered tuples without repeats; every variable
    must occur somewhere. Modulo relation naming this enumerates all
    query shapes in the small world.
    """
    scopes = []
    for size in (1, 2, 3):
        scopes.extend(itertools.permutations(VARIABLES, size))
    for first in scopes:
        for second in scopes:
            covered = set(first) | set(second)
            atoms = (Atom("R0", first), Atom("R1", second))
            missing = tuple(v for v in VARIABLES if v not in covered)
            if missing:
                atoms = atoms + (Atom("R2", missing),)
            yield JoinQuery(atoms)


def deterministic_database(query: JoinQuery, pattern: int) -> Database:
    """A small deterministic database derived from ``pattern``."""
    relations = {}
    for offset, symbol in enumerate(query.relation_symbols):
        arity = query.arity_of(symbol)
        rows = set()
        for row_index in range(4):
            seedling = pattern * 37 + offset * 11 + row_index * 5
            rows.add(
                tuple(
                    (seedling // (3 ** col)) % 3
                    for col in range(arity)
                )
            )
        relations[symbol] = Relation(rows, arity=arity)
    return Database(relations)


class TestSmallWorld:
    def test_decomposition_invariants_everywhere(self):
        for query in all_small_queries():
            hypergraph = Hypergraph.of_query(query)
            for perm in itertools.permutations(query.variables):
                order = VariableOrder(perm)
                decomposition = DisruptionFreeDecomposition(
                    query, order
                )
                h0 = decomposition.decomposition_hypergraph
                assert is_acyclic(h0)
                assert not has_disruptive_trio(h0, order)
                assert hypergraph.edges <= h0.edges
                # dichotomy: ι = 1 <=> acyclic & trio-free
                tractable = is_acyclic(
                    hypergraph
                ) and not has_disruptive_trio(hypergraph, order)
                assert (
                    decomposition.incompatibility_number == 1
                ) == tractable

    def test_access_equals_oracle_everywhere(self):
        # Every query shape x every variable order x one deterministic
        # database per query: full coverage of the small world.
        for query_index, query in enumerate(all_small_queries()):
            database = deterministic_database(query, query_index)
            for perm in itertools.permutations(query.variables):
                order = VariableOrder(perm)
                access = DirectAccess(query, order, database)
                expected = lex_answers(query, database, order)
                got = [
                    access.tuple_at(i) for i in range(len(access))
                ]
                assert got == expected, (query, list(order))

    def test_classification_is_total(self):
        for query in all_small_queries():
            order = VariableOrder(query.variables)
            verdict = classify(query, order)
            assert verdict.iota >= 1
            assert verdict.upper_bound
            assert verdict.lower_bound
