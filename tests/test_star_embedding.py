"""Tests for the Lemma 15/17 star embeddings."""

import pytest

from repro.core.access import DirectAccess
from repro.data.generators import random_database
from repro.errors import QueryError
from repro.joins.generic_join import evaluate
from repro.lowerbounds.star_queries import StarEmbedding, X_ROLE, Z_ROLE
from repro.query.catalog import (
    example5_order,
    example5_query,
    example18_query,
    running_selfjoin_query,
    star_bad_order,
    star_query,
)
from repro.query.variable_order import VariableOrder


def star_answers_bad_order(k, star_db):
    sq = star_query(k)
    bad = star_bad_order(k)
    rows = evaluate(sq, star_db, list(sq.variables)).rows
    return sorted(
        bad.key_of_tuple(tuple(r), sq.variables) for r in rows
    )


def check_embedding(query, order, seed=0, sets=10, universe=4):
    embedding = StarEmbedding(query, order)
    k = embedding.star_size
    star_db = random_database(star_query(k), sets, universe, seed=seed)
    database = embedding.transform_database(star_db)
    access = DirectAccess(query, order, database)
    mapped = [
        embedding.star_answer(access.answer_at(i))
        for i in range(len(access))
    ]
    assert mapped == star_answers_bad_order(k, star_db)
    return embedding


class TestRoleAssignment:
    def test_example16(self):
        """Example 16: ι = 3, roles x1..x3 on v1..v3; z on v3, v4, v5."""
        embedding = StarEmbedding(example5_query(), example5_order())
        assert embedding.star_size == 3
        assert embedding.blowup == 1
        x_carriers = {
            role[1]: var
            for var, roles in embedding.roles.items()
            for role in roles
            if role[0] == X_ROLE
        }
        assert set(x_carriers) == {1, 2, 3}
        z_carriers = {
            var
            for var, roles in embedding.roles.items()
            if (Z_ROLE,) in roles
        }
        assert z_carriers == {"v3", "v4", "v5"}

    def test_example18_fractional(self):
        """Example 18: ι = 3/2, λ = 2, k = λι = 3 (Lemma 17's formula)."""
        embedding = StarEmbedding(example18_query(), example5_order())
        assert embedding.blowup == 2
        assert embedding.star_size == 3

    def test_selfjoin_rejected(self):
        with pytest.raises(QueryError):
            StarEmbedding(
                running_selfjoin_query(), VariableOrder(["x", "y", "z"])
            )


class TestLexPreservation:
    def test_example5(self):
        check_embedding(example5_query(), example5_order(), seed=1)

    def test_example18(self):
        check_embedding(example18_query(), example5_order(), seed=2)

    def test_star_itself(self):
        # Embedding the star into itself with its own bad order: k = 2.
        q = star_query(2)
        embedding = check_embedding(q, star_bad_order(2), seed=3)
        assert embedding.star_size == 2

    def test_path_with_hard_order(self):
        # 2-path with order (x1, x3, x2): x2 last creates a 2-star.
        from repro.query.catalog import path_query

        q = path_query(2)
        order = VariableOrder(["x1", "x3", "x2"])
        embedding = check_embedding(q, order, seed=4)
        assert embedding.star_size == 2

    def test_several_seeds(self):
        for seed in range(3):
            check_embedding(
                example5_query(), example5_order(), seed=seed
            )


class TestBlowup:
    def test_database_size_bounded(self):
        # |D| = O(|D*|^λ) — check the constructed database respects it
        # grossly (with the query-dependent constant <= atom count).
        embedding = StarEmbedding(example18_query(), example5_order())
        star_db = random_database(
            star_query(embedding.star_size), 15, 5, seed=0
        )
        database = embedding.transform_database(star_db)
        budget = len(embedding.query.atoms) * (
            (len(star_db) + 5) ** embedding.blowup
        )
        assert len(database) <= budget
