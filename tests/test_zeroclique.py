"""Tests for Zero-k-Clique instances and the Theorem 27 reduction."""

import pytest

from repro.lowerbounds.setdisjointness import SetSystem
from repro.lowerbounds.zeroclique import (
    MultipartiteInstance,
    ZeroCliqueViaSetIntersection,
    brute_force_zero_clique,
)


class _MergeIntersection:
    """A plain set-intersection oracle used as an alternative backend."""

    def __init__(self, instance: SetSystem):
        self.instance = instance

    def intersect(self, indices, limit):
        sets = [
            self.instance.families[i][j]
            for i, j in enumerate(indices)
        ]
        out = sets[0]
        for s in sets[1:]:
            out = out & s
        return sorted(out)[:limit]


class TestInstances:
    def test_planting_creates_a_zero_clique(self):
        for seed in range(5):
            instance = MultipartiteInstance.random(
                3, 6, weight_bound=40, plant_zero=True, seed=seed
            )
            clique = brute_force_zero_clique(instance)
            assert clique is not None
            assert instance.clique_weight(clique) == 0

    def test_huge_weights_have_no_zero_clique(self):
        instance = MultipartiteInstance.random(
            3, 5, weight_bound=10 ** 9, plant_zero=False, seed=1
        )
        assert brute_force_zero_clique(instance) is None

    def test_weight_symmetric_lookup(self):
        instance = MultipartiteInstance.random(3, 3, seed=0)
        assert instance.weight((0, 1), (1, 2)) == instance.weight(
            (1, 2), (0, 1)
        )

    def test_clique_weight_sums_pairs(self):
        instance = MultipartiteInstance.random(3, 2, seed=2)
        clique = ((0, 0), (1, 1), (2, 0))
        expected = (
            instance.weight((0, 0), (1, 1))
            + instance.weight((0, 0), (2, 0))
            + instance.weight((1, 1), (2, 0))
        )
        assert instance.clique_weight(clique) == expected


class TestReduction:
    def test_finds_planted_zero_triangle(self):
        instance = MultipartiteInstance.random(
            3, 7, weight_bound=30, plant_zero=True, seed=5
        )
        reduction = ZeroCliqueViaSetIntersection(
            instance, intervals=4, seed=11
        )
        clique = reduction.find_zero_clique()
        assert clique is not None
        assert instance.clique_weight(clique) == 0

    def test_no_false_positives(self):
        instance = MultipartiteInstance.random(
            3, 5, weight_bound=10 ** 6, plant_zero=False, seed=9
        )
        reduction = ZeroCliqueViaSetIntersection(
            instance, intervals=3, seed=2
        )
        assert reduction.find_zero_clique() is None

    def test_zero_four_clique(self):
        instance = MultipartiteInstance.random(
            4, 4, weight_bound=15, plant_zero=True, seed=3
        )
        reduction = ZeroCliqueViaSetIntersection(
            instance, intervals=3, seed=4
        )
        clique = reduction.find_zero_clique()
        assert clique is not None
        assert instance.clique_weight(clique) == 0

    def test_success_across_seeds(self):
        # The reduction is randomized; success probability is high per
        # round on planted instances.
        instance = MultipartiteInstance.random(
            3, 6, weight_bound=25, plant_zero=True, seed=7
        )
        successes = sum(
            1
            for seed in range(5)
            if ZeroCliqueViaSetIntersection(
                instance, intervals=4, seed=seed
            ).find_zero_clique()
            is not None
        )
        assert successes >= 4

    def test_alternative_oracle_backend(self):
        instance = MultipartiteInstance.random(
            3, 6, weight_bound=20, plant_zero=True, seed=8
        )
        reduction = ZeroCliqueViaSetIntersection(
            instance,
            intervals=4,
            oracle_factory=_MergeIntersection,
            seed=1,
        )
        clique = reduction.find_zero_clique()
        assert clique is not None
        assert instance.clique_weight(clique) == 0

    def test_needs_three_parts(self):
        instance = MultipartiteInstance.random(2, 3, seed=0)
        with pytest.raises(ValueError):
            ZeroCliqueViaSetIntersection(instance)

    def test_stats_accounting(self):
        instance = MultipartiteInstance.random(
            3, 5, weight_bound=10 ** 6, plant_zero=False, seed=4
        )
        reduction = ZeroCliqueViaSetIntersection(
            instance, intervals=3, seed=0
        )
        reduction.find_zero_clique()
        # m^k prefixes, O(1) completions each (the paper's accounting)
        assert reduction.stats["instances"] >= 3 ** 2
        assert reduction.stats["instances"] <= 3 ** 2 * 6


class TestLemma52Enumeration:
    """The §9.1 variant: reduction to Set-Intersection-Enumeration."""

    def test_finds_planted_zero_triangle(self):
        from repro.lowerbounds.zeroclique import ZeroCliqueViaEnumeration

        instance = MultipartiteInstance.random(
            3, 7, weight_bound=30, plant_zero=True, seed=5
        )
        reduction = ZeroCliqueViaEnumeration(
            instance, intervals=4, seed=1
        )
        clique = reduction.find_zero_clique()
        assert clique is not None
        assert instance.clique_weight(clique) == 0
        assert reduction.stats["instances"] >= 1

    def test_no_false_positives(self):
        from repro.lowerbounds.zeroclique import ZeroCliqueViaEnumeration

        instance = MultipartiteInstance.random(
            3, 5, weight_bound=10 ** 6, plant_zero=False, seed=2
        )
        reduction = ZeroCliqueViaEnumeration(
            instance, intervals=3, seed=0
        )
        assert reduction.find_zero_clique() is None

    def test_zero_four_clique(self):
        from repro.lowerbounds.zeroclique import ZeroCliqueViaEnumeration

        instance = MultipartiteInstance.random(
            4, 4, weight_bound=15, plant_zero=True, seed=3
        )
        clique = ZeroCliqueViaEnumeration(
            instance, intervals=3, seed=1
        ).find_zero_clique()
        assert clique is not None
        assert instance.clique_weight(clique) == 0

    def test_success_across_seeds(self):
        from repro.lowerbounds.zeroclique import ZeroCliqueViaEnumeration

        instance = MultipartiteInstance.random(
            3, 6, weight_bound=25, plant_zero=True, seed=7
        )
        successes = sum(
            1
            for seed in range(5)
            if ZeroCliqueViaEnumeration(
                instance, intervals=4, seed=seed
            ).find_zero_clique()
            is not None
        )
        assert successes >= 4
