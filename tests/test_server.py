"""The HTTP serving layer: transport behavior, the facade client, and
the concurrency acceptance test of the ``repro serve`` PR.

Part of the new-API surface: CI runs this module with
``-W error::DeprecationWarning`` and under both engines.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro
from repro import connect
from repro.core.decomposition import DisruptionFreeDecomposition
from repro.errors import (
    NotAnAnswerError,
    OutOfBoundsError,
    ProtocolError,
    ReproError,
)
from repro.query.parser import parse_query
from repro.query.variable_order import VariableOrder
from repro.server import HTTPConnection, ReproServer
from repro.server.client import normalize_base_url
from repro.session.protocol import PROTOCOL_VERSION

QUERY = "Q(x, y, z) :- R(x, y), S(y, z)"
RELATIONS = {
    "R": {(1, 2), (3, 2), (3, 4)},
    "S": {(2, 7), (2, 9), (4, 1)},
}


def http_get(url: str):
    """(status, parsed JSON body) for a GET, errors included."""
    try:
        with urllib.request.urlopen(url, timeout=10) as reply:
            return reply.status, json.loads(reply.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def http_post(url: str, body: bytes, headers: dict | None = None):
    """(status, parsed JSON body) for a raw POST, errors included."""
    request = urllib.request.Request(
        url, data=body, method="POST", headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as reply:
            return reply.status, json.loads(reply.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def post_op(server: ReproServer, payload: dict):
    return http_post(
        server.url + "/v1/session", json.dumps(payload).encode()
    )


@pytest.fixture()
def server():
    with ReproServer(RELATIONS, workers=4) as running:
        yield running


@pytest.fixture()
def local():
    return connect(RELATIONS)


class TestTransport:
    def test_healthz(self, server):
        status, body = http_get(server.url + "/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["version"] == repro.__version__
        assert body["protocol"] == PROTOCOL_VERSION
        assert body["workers"] == 4

    def test_stats_endpoint_shape(self, server):
        post_op(server, {"op": "count", "query": QUERY})
        status, body = http_get(server.url + "/stats")
        assert status == 200
        assert body["server"]["requests"] == 1
        assert body["server"]["ops"] == {"count": 1}
        assert body["store"]["database_encodes"] == 1
        # Worker counters arrive aggregated: one totals dict, not one
        # dict per worker (the response is O(1) in --workers).
        assert body["workers"]["count"] == 4
        assert body["workers"]["totals"]["requests"] == 1
        assert "per_worker" not in body["workers"]

    def test_stats_per_worker_escape_hatch(self):
        with ReproServer(
            RELATIONS, workers=3, stats_per_worker=True
        ) as server:
            post_op(server, {"op": "count", "query": QUERY})
            _status, body = http_get(server.url + "/stats")
            per_worker = body["workers"]["per_worker"]
            assert len(per_worker) == 3
            assert sum(w["requests"] for w in per_worker) == 1
            assert "truncated" not in body["workers"]

    def test_malformed_json_is_structured_400(self, server):
        status, body = http_post(
            server.url + "/v1/session", b"{not json"
        )
        assert status == 400
        assert body["ok"] is False
        assert "bad JSON request" in body["error"]

    def test_unknown_request_field_is_400(self, server):
        status, body = post_op(
            server, {"op": "count", "frobnicate": 1}
        )
        assert status == 400
        assert body["ok"] is False and "frobnicate" in body["error"]

    def test_newer_protocol_version_is_400(self, server):
        status, body = post_op(server, {"op": "count", "version": 99})
        assert status == 400
        assert "protocol 99" in body["error"]

    def test_non_utf8_body_is_400(self, server):
        status, body = http_post(
            server.url + "/v1/session", b"\xff\xfe{}"
        )
        assert status == 400
        assert "UTF-8" in body["error"]

    def test_unknown_path_is_404(self, server):
        status, body = http_get(server.url + "/nope")
        assert status == 404
        assert body["ok"] is False and "/v1/session" in body["error"]
        status, _ = http_post(server.url + "/v2/session", b"{}")
        assert status == 404

    def test_get_on_session_route_is_405(self, server):
        status, body = http_get(server.url + "/v1/session")
        assert status == 405
        assert "POST" in body["error"]

    def test_negative_content_length_is_411_not_a_hang(self, server):
        import http.client

        conn = http.client.HTTPConnection(
            server.host, server.port, timeout=5
        )
        conn.putrequest("POST", "/v1/session")
        conn.putheader("Content-Length", "-1")
        conn.endheaders()
        response = conn.getresponse()
        body = json.loads(response.read())
        assert response.status == 411
        assert body["ok"] is False
        conn.close()

    def test_connect_to_non_repro_server_fails_cleanly(self):
        from http.server import (
            BaseHTTPRequestHandler,
            ThreadingHTTPServer,
        )

        class NotRepro(BaseHTTPRequestHandler):
            def do_GET(self):
                page = b"<html>hello</html>"
                self.send_response(200)
                self.send_header("Content-Length", str(len(page)))
                self.end_headers()
                self.wfile.write(page)

            def log_message(self, *args):
                pass

        other = ThreadingHTTPServer(("127.0.0.1", 0), NotRepro)
        thread = threading.Thread(
            target=other.serve_forever, daemon=True
        )
        thread.start()
        try:
            with pytest.raises(ProtocolError, match="really a repro"):
                connect(
                    f"http://127.0.0.1:{other.server_address[1]}"
                )
        finally:
            other.shutdown()

    def test_oversized_body_is_413(self, server):
        from repro.server.http import MAX_BODY_BYTES

        status, body = http_post(
            server.url + "/v1/session",
            b'{"op": "count", "query": "' + b"x" * MAX_BODY_BYTES,
        )
        assert status == 413
        assert body["ok"] is False

    def test_library_errors_are_200_with_ok_false(self, server):
        # Executed-but-failed requests use the protocol's own error
        # channel — the transport worked fine.
        status, body = post_op(
            server,
            {"op": "access", "query": QUERY, "indices": [999]},
        )
        assert status == 200
        assert body["ok"] is False
        assert body["error_type"] == "OutOfBoundsError"

    def test_missing_query_without_default(self, server):
        status, body = post_op(server, {"op": "count"})
        assert status == 200
        assert body["ok"] is False and "needs a query" in body["error"]

    def test_default_query_binding(self):
        with ReproServer(
            RELATIONS, workers=1, default_query=QUERY
        ) as server:
            status, body = post_op(server, {"op": "count"})
            assert status == 200
            assert body["result"]["count"] == 5

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ReproServer(RELATIONS, workers=0)

    def test_invalid_default_query_fails_at_startup(self):
        from repro.errors import ReproError as Error

        with pytest.raises(Error):
            ReproServer(
                RELATIONS, default_query="Q(a, b) :- Missing(a, b)"
            )


class TestServingOps:
    """Every protocol op over HTTP answers exactly like a local view."""

    def test_ops_round_trip(self, server, local):
        view = local.prepare(QUERY, order=["x", "y", "z"])
        base = {"query": QUERY, "order": ["x", "y", "z"]}

        _, count = post_op(server, dict(base, op="count"))
        assert count["result"]["count"] == len(view)

        _, access = post_op(
            server, dict(base, op="access", indices=[0, 2, -1])
        )
        assert access["result"]["answers"] == [
            list(view[0]), list(view[2]), list(view[-1])
        ]

        _, median = post_op(server, dict(base, op="median"))
        assert tuple(median["result"]["answer"]) == view.median()

        _, page = post_op(
            server, dict(base, op="page", page_number=1, page_size=2)
        )
        assert [tuple(a) for a in page["result"]["answers"]] == (
            view.page(1, 2)
        )

        _, rank = post_op(
            server, dict(base, op="rank", answer=list(view[3]))
        )
        assert rank["result"]["rank"] == 3

        _, plan = post_op(
            server, {"op": "plan", "query": QUERY}
        )
        assert plan["result"]["order"] == list(local.plan(QUERY).order)

        _, stats = post_op(server, {"op": "stats"})
        assert stats["ok"] and "store" in stats["result"]

        _, quit_ = post_op(server, {"op": "quit"})
        assert quit_["ok"] and quit_["result"] is None


class TestHTTPConnectionFacade:
    """repro.connect(url): the remote view obeys the local view's laws."""

    def test_connect_dispatches_on_url(self, server):
        conn = connect(server.url)
        assert isinstance(conn, HTTPConnection)
        assert conn.engine_name == server.store.engine.name

    def test_connect_url_rejects_local_knobs(self, server):
        with pytest.raises(ReproError):
            connect(server.url, engine="numpy")

    def test_connect_bad_address_fails_fast(self):
        with pytest.raises(ReproError):
            HTTPConnection("http://127.0.0.1:9", timeout=2)

    def test_normalize_base_url(self):
        assert (
            normalize_base_url("localhost:8080/")
            == "http://localhost:8080"
        )

    def test_remote_view_matches_local(self, server, local):
        remote = connect(server.url).prepare(
            QUERY, order=["x", "y", "z"]
        )
        view = local.prepare(QUERY, order=["x", "y", "z"])
        assert len(remote) == len(view)
        assert remote.order == tuple(view.order)
        assert remote[0] == view[0] and remote[-1] == view[-1]
        assert list(remote) == list(view)
        assert list(reversed(remote)) == list(reversed(view))
        assert remote.to_list() == view.to_list()
        assert remote.median() == view.median()
        assert remote.page(0, 2) == view.page(0, 2)
        assert remote.boxplot() == view.boxplot()
        assert remote.sample(3, seed=7) == view.sample(3, seed=7)
        assert remote.quantile(0.5) == view.quantile(0.5)

    def test_remote_slices_are_lazy_windows(self, server, local):
        remote = connect(server.url).prepare(
            QUERY, order=["x", "y", "z"]
        )
        view = local.prepare(QUERY, order=["x", "y", "z"])
        assert list(remote[1:4]) == list(view[1:4])
        assert list(remote[::-1]) == list(view[::-1])
        assert list(remote[1:4][::2]) == list(view[1:4][::2])
        assert len(remote[2:]) == len(view[2:])

    def test_remote_inverse_access_laws(self, server, local):
        remote = connect(server.url).prepare(
            QUERY, order=["x", "y", "z"]
        )
        view = local.prepare(QUERY, order=["x", "y", "z"])
        for answer in view:
            assert remote.rank(answer) == view.rank(answer)
            assert remote[remote.rank(answer)] == answer
            assert answer in remote
            assert remote.index(answer) == view.index(answer)
        assert (9, 9, 9) not in remote
        assert remote.ranks([view[0], (9, 9, 9)]) == [0, None]
        with pytest.raises(NotAnAnswerError):
            remote.rank((9, 9, 9))
        # An answer outside a sliced window is not *in* that window.
        window = remote[1:3]
        with pytest.raises(NotAnAnswerError):
            window.rank(view[0])

    def test_large_batches_are_chunked_under_the_body_cap(
        self, server, local, monkeypatch
    ):
        """tuples_at over more indices than one request carries splits
        into ITER_CHUNK-sized ops (regression: one giant body tripped
        the server's 413 cap)."""
        from repro.server.client import RemoteAnswerView

        monkeypatch.setattr(RemoteAnswerView, "ITER_CHUNK", 2)
        remote = connect(server.url).prepare(
            QUERY, order=["x", "y", "z"]
        )
        view = local.prepare(QUERY, order=["x", "y", "z"])
        requests_before = connect(server.url).stats()["server"][
            "requests"
        ]
        assert remote.tuples_at(range(5)) == view.tuples_at(range(5))
        requests_after = connect(server.url).stats()["server"][
            "requests"
        ]
        assert requests_after - requests_before == 3  # ceil(5/2) ops
        assert remote.sample(5, seed=3) == view.sample(5, seed=3)

    def test_remote_bounds_checked_client_side(self, server):
        remote = connect(server.url).prepare(
            QUERY, order=["x", "y", "z"]
        )
        before = remote._connection.stats()["server"]["requests"]
        with pytest.raises(OutOfBoundsError):
            remote[99]
        with pytest.raises(OutOfBoundsError):
            remote.tuples_at([0, 99])
        after = remote._connection.stats()["server"]["requests"]
        assert after == before  # no round-trip was spent on them

    def test_remote_errors_replay_local_exception_types(self, server):
        conn = connect(server.url)
        with pytest.raises(ProtocolError):
            conn.prepare(QUERY, order=None, prefix=None)._connection \
                ._call("access", query=QUERY)  # access without indices
        remote = conn.prepare(QUERY, order=["x", "y", "z"])
        with pytest.raises(OutOfBoundsError):
            remote.page(-1, 2)

    def test_planned_remote_prepare_pins_served_order(self, server):
        conn = connect(server.url)
        remote = conn.prepare(QUERY)  # advisor-chosen
        assert list(remote.order) == list(
            tuple(conn.plan(QUERY)["order"])
        )
        assert len(remote) == 5

    def test_closed_connection_refuses_requests(self, server):
        conn = connect(server.url)
        with conn:
            pass
        assert conn.closed
        with pytest.raises(ReproError):
            conn.prepare(QUERY, order=["x", "y", "z"])


class TestConcurrentServing:
    """The acceptance test: N concurrent HTTP clients, different
    orders, answers identical to a local Connection — database encoded
    once and two *distinct* decompositions preprocessed concurrently
    (per-artifact locks, not one global lock)."""

    ORDER_A = ["x", "y", "z"]
    ORDER_B = ["z", "y", "x"]

    def test_orders_induce_distinct_decompositions(self):
        query = parse_query(QUERY)
        key_a = DisruptionFreeDecomposition(
            query, VariableOrder(self.ORDER_A)
        ).cache_key()
        key_b = DisruptionFreeDecomposition(
            query, VariableOrder(self.ORDER_B)
        ).cache_key()
        assert key_a != key_b  # otherwise the test below proves nothing

    def test_concurrent_clients_distinct_decompositions(
        self, monkeypatch, local
    ):
        import repro.session.session as session_module

        real = session_module.Preprocessing
        barrier = threading.Barrier(2, timeout=20)
        served_database = []  # set once the server exists

        class RendezvousPreprocessing(real):
            """Cold materializations on the *served* database must
            overlap: both builders reach the barrier inside their
            per-artifact build section.  A global build lock would
            serialize them and trip the barrier timeout, failing the
            test.  (Scoped to the server's database so the local
            reference connection is unaffected.)"""

            def __init__(self, query, order, database, **kwargs):
                if (
                    kwargs.get("bag_tables") is None
                    and served_database
                    and database is served_database[0]
                ):
                    barrier.wait()
                super().__init__(query, order, database, **kwargs)

        monkeypatch.setattr(
            session_module, "Preprocessing", RendezvousPreprocessing
        )

        with ReproServer(RELATIONS, workers=4) as server:
            served_database.append(server.store.database)
            results: dict[str, object] = {}
            errors: list[BaseException] = []

            def cold_client(name: str, order: list[str]) -> None:
                try:
                    results[name] = post_op(
                        server,
                        {
                            "op": "access",
                            "query": QUERY,
                            "order": order,
                            "indices": [0, -1],
                        },
                    )
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [
                threading.Thread(
                    target=cold_client, args=(name, order)
                )
                for name, order in (
                    ("a", self.ORDER_A),
                    ("b", self.ORDER_B),
                )
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            for name, order in (
                ("a", self.ORDER_A),
                ("b", self.ORDER_B),
            ):
                status, body = results[name]
                assert status == 200 and body["ok"], body
                view = local.prepare(QUERY, order=order)
                assert body["result"]["answers"] == [
                    list(view[0]), list(view[-1])
                ]

            # Now the fan-out: more clients than workers, mixed ops
            # across both (warm) orders, all answers law-checked
            # against the local connection.
            checks: list[tuple] = []

            def client(index: int) -> None:
                try:
                    order = (
                        self.ORDER_A if index % 2 == 0 else self.ORDER_B
                    )
                    view = local.prepare(QUERY, order=order)
                    base = {"query": QUERY, "order": order}
                    status, body = post_op(
                        server,
                        dict(base, op="access", indices=[index % 5]),
                    )
                    checks.append(
                        (
                            body["result"]["answers"],
                            [list(view[index % 5])],
                        )
                    )
                    status, body = post_op(
                        server, dict(base, op="count")
                    )
                    checks.append(
                        (body["result"]["count"], len(view))
                    )
                    status, body = post_op(
                        server,
                        dict(
                            base,
                            op="rank",
                            answer=list(view[index % 5]),
                        ),
                    )
                    checks.append(
                        (body["result"]["rank"], index % 5)
                    )
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            fleet = [
                threading.Thread(target=client, args=(index,))
                for index in range(8)
            ]
            for thread in fleet:
                thread.start()
            for thread in fleet:
                thread.join(timeout=30)
            assert not errors
            assert len(checks) == 24
            for got, expected in checks:
                assert got == expected

            stats = server.stats()
            # One dictionary encoding for the whole fleet ...
            assert stats["store"]["database_encodes"] == 1
            # ... two decompositions actually preprocessed, in flight
            # at the same time (per-artifact locks, not one big lock).
            assert stats["store"]["build_concurrency_peak"] >= 2
            assert (
                stats["store"]["preprocessing"]["misses"] >= 2
            )
            # And the transport saw every request.
            assert stats["server"]["requests"] == 2 + 24
            # Every view-serving request checked a worker session out
            # (26 POSTs, 24 of them prepared a view).
            assert stats["workers"]["totals"]["requests"] >= 24

    def test_racing_same_artifact_builds_once_over_http(self):
        """The dual guarantee: many clients, one order — exactly one
        preprocessing pass, everyone gets answers."""
        with ReproServer(RELATIONS, workers=4) as server:
            errors: list[BaseException] = []

            def client() -> None:
                try:
                    status, body = post_op(
                        server,
                        {
                            "op": "count",
                            "query": QUERY,
                            "order": self.ORDER_A,
                        },
                    )
                    assert status == 200 and body["ok"], body
                    assert body["result"]["count"] == 5
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [
                threading.Thread(target=client) for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            stats = server.stats()
            total_materializations = stats["workers"]["totals"][
                "bag_materializations"
            ]
            assert total_materializations == 3  # one pass, three bags


class TestSlowClientRobustness:
    """A stalled client must cost a socket, never a serving thread."""

    def test_half_sent_body_times_out_and_frees_the_thread(self):
        import socket
        import time

        with ReproServer(
            RELATIONS,
            workers=1,
            default_query=QUERY,
            request_timeout=0.5,
        ) as server:
            stalled = socket.create_connection(
                (server.host, server.port), timeout=10
            )
            try:
                # Promise 50 body bytes, deliver 5, then stall: the
                # socket timeout must close the connection instead of
                # pinning the handler thread on rfile.read().
                stalled.sendall(
                    b"POST /v1/session HTTP/1.1\r\n"
                    b"Host: t\r\n"
                    b"Content-Length: 50\r\n"
                    b"\r\n"
                    b'{"op"'
                )
                deadline = time.monotonic() + 10
                closed = b"x"
                while closed and time.monotonic() < deadline:
                    closed = stalled.recv(4096)
                assert closed == b"", (
                    "server never closed the stalled connection"
                )
            finally:
                stalled.close()
            # The (single) worker is free: a healthy request succeeds.
            status, body = post_op(
                server, {"op": "count", "query": QUERY}
            )
            assert status == 200 and body["ok"]
