"""Tests for the static-analysis pass (``repro analyze``).

Each rule gets a bad fixture that must fire and a good fixture that
must stay silent; suppression, rule selection, strictness, and the
deterministic JSON report are exercised through both the library API
(:func:`repro.analysis.analyze_paths`) and the CLI (``main``).
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import RULES, analyze_paths
from repro.analysis.registry import severity_of
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def run(tmp_path: Path, name: str, source: str, **kwargs):
    """Write one fixture module under ``tmp_path`` and analyze it."""
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return analyze_paths([tmp_path], root=tmp_path, **kwargs)


def rules_fired(report) -> set:
    return {finding.rule for finding in report.findings}


class TestRegistry:
    def test_every_rule_is_fully_specified(self):
        assert RULES, "registry must not be empty"
        for rule_id, rule in RULES.items():
            assert rule.id == rule_id
            assert rule.severity in ("error", "warning")
            assert rule.invariant.strip()
            assert rule.summary.strip()
            assert severity_of(rule_id) == rule.severity

    def test_unknown_rule_selection_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            run(tmp_path, "m.py", "x = 1\n", rules=["NO-SUCH-RULE"])


class TestLockOrder:
    CYCLE = """
    import threading

    class Pair:
        def __init__(self):
            self.a_lock = threading.Lock()
            self.b_lock = threading.Lock()

        def forward(self):
            with self.a_lock:
                with self.b_lock:
                    return 1

        def backward(self):
            with self.b_lock:
                with self.a_lock:
                    return 2
    """

    def test_injected_cycle_is_detected_with_its_path(self, tmp_path):
        report = run(tmp_path, "cycle.py", self.CYCLE)
        cycles = [
            f for f in report.findings if f.rule == "LOCK-ORDER"
        ]
        assert len(cycles) == 1
        message = cycles[0].message
        assert "cycle" in message
        # The full cycle path is spelled out, with the edge sites.
        assert "Pair.a_lock -> Pair.b_lock -> Pair.a_lock" in message
        assert "at line" in message

    def test_consistent_order_is_clean(self, tmp_path):
        report = run(
            tmp_path,
            "ordered.py",
            """
            import threading

            class Pair:
                def __init__(self):
                    self.a_lock = threading.Lock()
                    self.b_lock = threading.Lock()

                def one(self):
                    with self.a_lock:
                        with self.b_lock:
                            return 1

                def two(self):
                    with self.a_lock:
                        with self.b_lock:
                            return 2
            """,
        )
        assert "LOCK-ORDER" not in rules_fired(report)

    def test_interprocedural_cycle_through_local_calls(self, tmp_path):
        report = run(
            tmp_path,
            "indirect.py",
            """
            import threading

            class Store:
                def __init__(self):
                    self.a_lock = threading.Lock()
                    self.b_lock = threading.Lock()

                def _grab_a(self):
                    with self.a_lock:
                        return 1

                def _grab_b(self):
                    with self.b_lock:
                        return 2

                def forward(self):
                    with self.a_lock:
                        return self._grab_b()

                def backward(self):
                    with self.b_lock:
                        return self._grab_a()
            """,
        )
        assert "LOCK-ORDER" in rules_fired(report)

    def test_self_deadlock_on_plain_lock(self, tmp_path):
        report = run(
            tmp_path,
            "selfdead.py",
            """
            import threading

            class Once:
                def __init__(self):
                    self.my_lock = threading.Lock()

                def outer(self):
                    with self.my_lock:
                        return self.inner()

                def inner(self):
                    with self.my_lock:
                        return 1
            """,
        )
        messages = [
            f.message
            for f in report.findings
            if f.rule == "LOCK-ORDER"
        ]
        assert any("re-acquired" in m for m in messages)

    def test_rlock_reentry_is_fine(self, tmp_path):
        report = run(
            tmp_path,
            "reentrant.py",
            """
            import threading

            class Once:
                def __init__(self):
                    self.my_lock = threading.RLock()

                def outer(self):
                    with self.my_lock:
                        return self.inner()

                def inner(self):
                    with self.my_lock:
                        return 1
            """,
        )
        assert "LOCK-ORDER" not in rules_fired(report)


class TestLockBlocking:
    def test_fsync_under_lock_is_flagged(self, tmp_path):
        report = run(
            tmp_path,
            "fsync.py",
            """
            import os
            import threading

            class Log:
                def __init__(self):
                    self.my_lock = threading.Lock()

                def append(self, fd):
                    with self.my_lock:
                        os.fsync(fd)
            """,
        )
        blocking = [
            f for f in report.findings if f.rule == "LOCK-BLOCKING"
        ]
        assert len(blocking) == 1
        assert "os.fsync" in blocking[0].message
        assert "Log.my_lock" in blocking[0].message

    def test_fsync_outside_lock_is_fine(self, tmp_path):
        report = run(
            tmp_path,
            "nolock.py",
            """
            import os

            def flush(fd):
                os.fsync(fd)
            """,
        )
        assert "LOCK-BLOCKING" not in rules_fired(report)


class TestAsyncBlocking:
    def test_time_sleep_in_async_def(self, tmp_path):
        report = run(
            tmp_path,
            "aio_bad.py",
            """
            import time

            async def handler():
                time.sleep(0.1)
            """,
        )
        hits = [
            f for f in report.findings if f.rule == "ASYNC-BLOCKING"
        ]
        assert len(hits) == 1
        assert "time.sleep" in hits[0].message
        assert "handler" in hits[0].message

    def test_asyncio_sleep_is_fine(self, tmp_path):
        report = run(
            tmp_path,
            "aio_good.py",
            """
            import asyncio

            async def handler():
                await asyncio.sleep(0.1)
            """,
        )
        assert "ASYNC-BLOCKING" not in rules_fired(report)

    def test_nested_sync_def_runs_elsewhere(self, tmp_path):
        report = run(
            tmp_path,
            "aio_nested.py",
            """
            import time

            async def handler(loop):
                def work():
                    time.sleep(0.1)

                return await loop.run_in_executor(None, work)
            """,
        )
        assert "ASYNC-BLOCKING" not in rules_fired(report)


class TestExceptionRules:
    def test_builtin_raise_in_governed_package(self, tmp_path):
        report = run(
            tmp_path,
            "repro/server/bad.py",
            """
            def check(flag):
                if not flag:
                    raise ValueError("nope")
            """,
        )
        assert "EXC-TAXONOMY" in rules_fired(report)

    def test_taxonomy_raises_are_fine(self, tmp_path):
        report = run(
            tmp_path,
            "repro/server/good.py",
            """
            from repro.errors import ReproError, QueryError

            class LocalError(ReproError):
                pass

            def check(flag):
                if flag == 1:
                    raise QueryError("library error")
                if flag == 2:
                    raise LocalError("local subclass")
                if flag == 3:
                    raise NotImplementedError
            """,
        )
        assert "EXC-TAXONOMY" not in rules_fired(report)

    def test_outside_governed_packages_builtins_are_fine(
        self, tmp_path
    ):
        report = run(
            tmp_path,
            "tools/script.py",
            """
            def check(flag):
                if not flag:
                    raise ValueError("scripts may use builtins")
            """,
        )
        assert "EXC-TAXONOMY" not in rules_fired(report)

    def test_bare_except_is_flagged_anywhere(self, tmp_path):
        report = run(
            tmp_path,
            "tools/script.py",
            """
            def swallow(fn):
                try:
                    return fn()
                except:
                    return None
            """,
        )
        assert "EXC-BARE" in rules_fired(report)

    def test_unguarded_except_exception_in_server(self, tmp_path):
        report = run(
            tmp_path,
            "repro/server/handler.py",
            """
            def serve(fn):
                try:
                    return fn()
                except Exception:
                    return "error response"
            """,
        )
        assert "EXC-CHAOS" in rules_fired(report)

    def test_chaoscrash_guard_satisfies_the_contract(self, tmp_path):
        report = run(
            tmp_path,
            "repro/server/handler.py",
            """
            from repro.chaos.faults import ChaosCrash

            def serve(fn):
                try:
                    return fn()
                except ChaosCrash:
                    raise
                except Exception:
                    return "error response"
            """,
        )
        assert "EXC-CHAOS" not in rules_fired(report)

    def test_reraising_handler_is_fine(self, tmp_path):
        report = run(
            tmp_path,
            "repro/server/handler.py",
            """
            def serve(fn, log):
                try:
                    return fn()
                except Exception:
                    log("failed")
                    raise
            """,
        )
        assert "EXC-CHAOS" not in rules_fired(report)


class TestImportRules:
    def test_unused_import_is_flagged(self, tmp_path):
        report = run(tmp_path, "m.py", "import os\n\nx = 1\n")
        hits = [
            f for f in report.findings if f.rule == "UNUSED-IMPORT"
        ]
        assert len(hits) == 1
        assert "'os'" in hits[0].message

    def test_used_import_is_fine(self, tmp_path):
        report = run(
            tmp_path, "m.py", "import os\n\nx = os.getpid()\n"
        )
        assert "UNUSED-IMPORT" not in rules_fired(report)

    def test_package_surface_is_exempt(self, tmp_path):
        report = run(
            tmp_path, "pkg/__init__.py", "from os import getpid\n"
        )
        assert "UNUSED-IMPORT" not in rules_fired(report)

    def test_numpy_in_purity_pinned_module(self, tmp_path):
        report = run(
            tmp_path,
            "repro/engine/python_engine.py",
            "import numpy\n\nx = numpy.int64\n",
        )
        assert "PURITY-ENGINE" in rules_fired(report)

    def test_layer_inversion_is_flagged(self, tmp_path):
        report = run(
            tmp_path,
            "repro/data/bad.py",
            """
            from repro.server import http

            x = http
            """,
        )
        assert "LAYER-DAG" in rules_fired(report)


class TestRegistrySync:
    def test_unknown_fault_site_is_flagged(self, tmp_path):
        report = run(
            tmp_path,
            "m.py",
            """
            from repro.chaos.faults import fire

            def step():
                if fire("no.such.site"):
                    raise SystemExit(1)
            """,
        )
        hits = [f for f in report.findings if f.rule == "REG-FAULT"]
        assert len(hits) == 1
        assert "no.such.site" in hits[0].message

    def test_registered_fault_site_is_fine(self, tmp_path):
        report = run(
            tmp_path,
            "m.py",
            """
            from repro.chaos.faults import fire

            def step():
                return fire("wal.fsync")
            """,
        )
        assert "REG-FAULT" not in rules_fired(report)

    def test_unregistered_op_literal_in_protocol(self, tmp_path):
        report = run(
            tmp_path,
            "repro/session/protocol.py",
            """
            OPS = frozenset({"quit", "stats"})

            def dispatch(command):
                if command == "quit":
                    return "bye"
                if command == "reboot":
                    return "not registered"
                return None
            """,
        )
        hits = [f for f in report.findings if f.rule == "REG-OPS"]
        assert len(hits) == 1
        assert "'reboot'" in hits[0].message


class TestSuppression:
    BAD = """
    def check(flag):
        if not flag:
            raise ValueError("nope")  # repro: noqa[EXC-TAXONOMY] -- fixture pass-through
    """

    def test_justified_noqa_moves_finding_to_suppressed(
        self, tmp_path
    ):
        report = run(tmp_path, "repro/server/bad.py", self.BAD)
        assert "EXC-TAXONOMY" not in rules_fired(report)
        assert [f.rule for f in report.suppressed] == ["EXC-TAXONOMY"]

    def test_unjustified_noqa_fails_strict(self, tmp_path):
        # The marker is assembled at runtime so this test file's own
        # source never contains an unjustified suppression line.
        marker = "# repro: " + "noqa[EXC-TAXONOMY]"
        source = f"""
        def check(flag):
            if not flag:
                raise ValueError("nope")  {marker}
        """
        lax = run(tmp_path, "repro/server/bad.py", source)
        assert "NOQA-BARE" not in rules_fired(lax)
        strict = run(
            tmp_path, "repro/server/bad.py", source, strict=True
        )
        assert "NOQA-BARE" in rules_fired(strict)

    def test_rule_selection_filters_the_report(self, tmp_path):
        report = run(
            tmp_path,
            "repro/server/bad.py",
            """
            import os

            def check(flag):
                if not flag:
                    raise ValueError("nope")
            """,
            rules=["UNUSED-IMPORT"],
        )
        assert rules_fired(report) == {"UNUSED-IMPORT"}


class TestAnalyzeCLI:
    def write_bad(self, tmp_path: Path) -> Path:
        target = tmp_path / "bad.py"
        target.write_text("import os\n\nraise ValueError(1)\n")
        return target

    def test_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["analyze", str(clean)]) == 0
        bad = tmp_path / "pkg" / "repro" / "server" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f():\n    raise ValueError(1)\n")
        assert main(["analyze", str(bad)]) == 1
        capsys.readouterr()

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        target = tmp_path / "warn.py"
        target.write_text("import os\n\nx = 1\n")
        assert main(["analyze", str(target)]) == 0
        assert main(["analyze", "--strict", str(target)]) == 1
        capsys.readouterr()

    def test_json_report_is_byte_identical_across_runs(
        self, tmp_path, capsys
    ):
        self.write_bad(tmp_path)
        runs = []
        for _ in range(2):
            main(["analyze", "--json", str(tmp_path)])
            runs.append(capsys.readouterr().out)
        assert runs[0] == runs[1]
        report = json.loads(runs[0])
        assert report["version"] == 1
        assert report["files"] == 1
        assert {f["rule"] for f in report["findings"]} >= {
            "UNUSED-IMPORT"
        }

    def test_query_classification_mode_still_works(self, capsys):
        assert (
            main(["analyze", "Q(x,y) :- R(x,y)", "--order", "x,y"])
            == 0
        )
        out = capsys.readouterr().out
        assert "acyclic" in out

    def test_repository_baseline_is_clean_under_strict(self, capsys):
        """The CI gate: zero findings, strict, over the whole repo."""
        code = main(
            [
                "analyze",
                "--strict",
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "benchmarks"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert out.strip().endswith("rule(s)")


class TestMypyGate:
    """The strict-typed core (config in pyproject.toml) typechecks.

    mypy is a CI-only dependency — the package itself stays
    stdlib-only — so this gate skips wherever mypy is not installed
    and runs for real in the analysis-smoke CI job.
    """

    def test_typed_core_passes_mypy(self):
        pytest.importorskip("mypy", reason="mypy is a CI-only dependency")
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "mypy"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, (
            completed.stdout + completed.stderr
        )
