"""Unit tests for the exact simplex and hypergraph covers."""

import random
from fractions import Fraction

import pytest

from repro.errors import InfeasibleError, UnboundedError
from repro.hypergraph.hypergraph import Hypergraph
from repro.lp.covers import (
    fractional_edge_cover,
    fractional_edge_cover_number,
    fractional_independent_set_number,
    is_independent_set,
    maximum_independent_set,
)
from repro.lp.simplex import GE, LE, Constraint, maximize_lp, solve_lp
from repro.query.catalog import (
    example5_query,
    loomis_whitney_query,
    star_query,
    triangle_query,
)


class TestSimplex:
    def test_simple_minimization(self):
        # min x + y s.t. x + 2y >= 4, 3x + y >= 6
        solution = solve_lp(
            [1, 1],
            [
                Constraint((Fraction(1), Fraction(2)), GE, Fraction(4)),
                Constraint((Fraction(3), Fraction(1)), GE, Fraction(6)),
            ],
        )
        assert solution.value == Fraction(14, 5)

    def test_simple_maximization(self):
        # max x + y s.t. x <= 2, y <= 3
        solution = maximize_lp(
            [1, 1],
            [
                Constraint((Fraction(1), Fraction(0)), LE, Fraction(2)),
                Constraint((Fraction(0), Fraction(1)), LE, Fraction(3)),
            ],
        )
        assert solution.value == 5

    def test_infeasible(self):
        with pytest.raises(InfeasibleError):
            solve_lp(
                [1],
                [
                    Constraint((Fraction(1),), GE, Fraction(2)),
                    Constraint((Fraction(1),), LE, Fraction(1)),
                ],
            )

    def test_unbounded(self):
        with pytest.raises(UnboundedError):
            maximize_lp(
                [1], [Constraint((Fraction(1),), GE, Fraction(0))]
            )

    def test_negative_rhs_normalization(self):
        # min x s.t. -x <= -3  (i.e. x >= 3)
        solution = solve_lp(
            [1], [Constraint((Fraction(-1),), LE, Fraction(-3))]
        )
        assert solution.value == 3

    def test_matches_scipy_on_random_covering_lps(self):
        scipy_optimize = pytest.importorskip("scipy.optimize")
        rng = random.Random(7)
        for _ in range(20):
            n = rng.randint(2, 5)
            m = rng.randint(2, 5)
            rows = [
                [rng.randint(0, 3) for _ in range(n)] for _ in range(m)
            ]
            # ensure feasibility: every row gets a positive entry
            for row in rows:
                if not any(row):
                    row[rng.randrange(n)] = 1
            constraints = [
                Constraint(tuple(map(Fraction, row)), GE, Fraction(1))
                for row in rows
            ]
            mine = solve_lp([1] * n, constraints)
            result = scipy_optimize.linprog(
                [1.0] * n,
                A_ub=[[-x for x in row] for row in rows],
                b_ub=[-1.0] * m,
                bounds=[(0, None)] * n,
            )
            assert result.success
            assert abs(float(mine.value) - result.fun) < 1e-7


class TestCovers:
    def test_triangle_rho_star(self):
        h = Hypergraph.of_query(triangle_query())
        assert fractional_edge_cover_number(h) == Fraction(3, 2)

    def test_loomis_whitney_rho_star(self):
        # ρ*(LW_k) = 1 + 1/(k-1) = k/(k-1).
        for k in (3, 4, 5):
            h = Hypergraph.of_query(loomis_whitney_query(k))
            assert fractional_edge_cover_number(h) == Fraction(
                k, k - 1
            )

    def test_star_rho_star(self):
        for k in (1, 2, 3):
            h = Hypergraph.of_query(star_query(k))
            assert fractional_edge_cover_number(h) == k

    def test_example5_rho_star(self):
        h = Hypergraph.of_query(example5_query())
        assert fractional_edge_cover_number(h) == 3

    def test_cover_weights_are_a_cover(self):
        h = Hypergraph.of_query(triangle_query())
        value, weights = fractional_edge_cover(h)
        assert sum(weights.values()) == value
        for vertex in h.vertices:
            incident = sum(
                w for edge, w in weights.items() if vertex in edge
            )
            assert incident >= 1

    def test_lp_duality_alpha_equals_rho(self):
        for query in (
            triangle_query(),
            example5_query(),
            star_query(3),
            loomis_whitney_query(4),
        ):
            h = Hypergraph.of_query(query)
            assert fractional_edge_cover_number(
                h
            ) == fractional_independent_set_number(h)

    def test_maximum_independent_set(self):
        h = Hypergraph.of_query(star_query(3))
        independent = maximum_independent_set(h)
        assert is_independent_set(h, independent)
        assert len(independent) == 3  # the leaves

    def test_acyclic_integral_cover_matches_independent_set(self):
        # In acyclic hypergraphs ρ* is integral and equals the max
        # independent set size (fact used in Lemma 15).
        h = Hypergraph.of_query(example5_query())
        rho = fractional_edge_cover_number(h)
        assert rho.denominator == 1
        assert len(maximum_independent_set(h)) == rho

    def test_empty_hypergraph(self):
        h = Hypergraph([], [])
        assert fractional_edge_cover_number(h) == 0
        assert fractional_independent_set_number(h) == 0
