"""Tests for ranked enumeration with delay instrumentation."""

from repro.core.enumeration import (
    DelayInstrumentedEnumerator,
    materializing_enumerator,
    ranked_enumerator,
)
from repro.query.catalog import path_query
from repro.query.variable_order import VariableOrder
from tests.conftest import lex_answers, random_database_for


class TestInstrumentation:
    def test_counts_delays(self):
        enumerator = DelayInstrumentedEnumerator(lambda: iter([1, 2, 3]))
        assert list(enumerator) == [1, 2, 3]
        assert len(enumerator.delays) == 3
        assert enumerator.max_delay_seconds >= 0
        assert enumerator.mean_delay_seconds >= 0

    def test_empty(self):
        enumerator = DelayInstrumentedEnumerator(lambda: iter([]))
        assert list(enumerator) == []
        assert enumerator.max_delay_seconds == 0.0
        assert enumerator.mean_delay_seconds == 0.0


class TestBothBackends:
    def test_agree_and_are_ordered(self, rng):
        query = path_query(2)
        order = VariableOrder(query.variables)
        database = random_database_for(query, rng, rows=25, domain=5)
        expected = lex_answers(query, database, order)

        ranked = ranked_enumerator(query, order, database)
        materialized = materializing_enumerator(query, order, database)
        assert list(ranked) == expected
        assert list(materialized) == expected

    def test_profiles_differ_as_predicted(self, rng):
        # On blow-up data the materializing enumerator pays the whole
        # output during preprocessing while the ranked one does not.
        from repro.data.generators import bipartite_path_database

        query = path_query(2)
        order = VariableOrder(query.variables)
        database = bipartite_path_database(120, 2)

        ranked = ranked_enumerator(query, order, database)
        materialized = materializing_enumerator(query, order, database)
        # consume a small prefix only
        for count, _ in enumerate(ranked):
            if count >= 10:
                break
        for count, _ in enumerate(materialized):
            if count >= 10:
                break
        assert (
            ranked.preprocessing_seconds
            < materialized.preprocessing_seconds
        )
