"""Unit tests for repro.query.atoms."""

import pytest

from repro.errors import QueryError
from repro.query.atoms import Atom


class TestAtomBasics:
    def test_str(self):
        assert str(Atom("R", ("x", "y"))) == "R(x, y)"

    def test_arity_counts_repeats(self):
        assert Atom("R", ("x", "x", "y")).arity == 3

    def test_scope_merges_repeats(self):
        assert Atom("R", ("x", "x", "y")).scope == frozenset({"x", "y"})

    def test_list_variables_coerced_to_tuple(self):
        atom = Atom("R", ["x", "y"])
        assert atom.variables == ("x", "y")

    def test_empty_relation_symbol_rejected(self):
        with pytest.raises(QueryError):
            Atom("", ("x",))

    def test_zero_arity_rejected(self):
        with pytest.raises(QueryError):
            Atom("R", ())


class TestAtomMatching:
    def test_matches_consistent_assignment(self):
        atom = Atom("R", ("x", "y"))
        assert atom.matches((1, 2), {"x": 1})
        assert not atom.matches((1, 2), {"x": 3})

    def test_matches_repeated_variable(self):
        atom = Atom("R", ("x", "x"))
        assert atom.matches((5, 5), {})
        assert not atom.matches((5, 6), {})

    def test_binding_simple(self):
        atom = Atom("R", ("x", "y"))
        assert atom.binding((1, 2)) == {"x": 1, "y": 2}

    def test_binding_conflicting_repeat_is_none(self):
        atom = Atom("R", ("x", "x"))
        assert atom.binding((1, 2)) is None
        assert atom.binding((3, 3)) == {"x": 3}
