"""Tests for projections and partial lexicographic orders (Theorem 50)."""


from repro.core.projections import (
    completions,
    partial_order_access,
    partial_order_incompatibility,
)
from repro.joins.generic_join import evaluate
from repro.query.catalog import (
    four_cycle_query,
    path_query,
    projected_star_query,
    star_query,
)
from repro.query.variable_order import VariableOrder
from tests.conftest import random_database_for


def oracle_projected(query, database, partial):
    """Distinct free-variable answers; sorted by the partial order prefix."""
    base = query.as_join_query() if hasattr(query, "free") else query
    rows = evaluate(base, database, list(base.variables)).rows
    index = {v: i for i, v in enumerate(base.variables)}
    free = query.free_variables
    projected = sorted(
        {tuple(row[index[v]] for v in free) for row in rows},
        key=lambda t: tuple(
            t[free.index(v)] for v in partial
        ),
    )
    return projected


class TestCompletions:
    def test_projected_variables_at_the_end(self):
        q = projected_star_query(2)
        for order in completions(q, VariableOrder(["x1", "x2"])):
            assert list(order)[-1] == "z"

    def test_count(self):
        q = projected_star_query(2)
        # middle empty, one projected variable -> exactly one completion
        assert len(list(completions(q, VariableOrder(["x1", "x2"])))) == 1
        # leaving x2 unlisted doubles nothing (1 middle var, 1 projected)
        assert len(list(completions(q, VariableOrder(["x1"])))) == 1


class TestIncompatibility:
    def test_projected_star(self):
        q = projected_star_query(2)
        iota, completion = partial_order_incompatibility(
            q, VariableOrder(["x1", "x2"])
        )
        assert iota == 2  # z must come last: the bad order
        assert list(completion) == ["x1", "x2", "z"]

    def test_free_choice_recovers_tractability(self):
        # With an empty partial order the completion may put z first.
        q = projected_star_query(2)
        iota, completion = partial_order_incompatibility(
            q, VariableOrder([])
        )
        assert iota == 2  # z is projected, still must come last

    def test_join_query_partial_order(self):
        q = star_query(2)
        iota, completion = partial_order_incompatibility(
            q, VariableOrder(["z"])
        )
        assert iota == 1


class TestAccess:
    def test_projected_star_matches_oracle(self, rng):
        q = projected_star_query(2)
        db = random_database_for(q, rng, rows=20, domain=5)
        partial = VariableOrder(["x1", "x2"])
        access = partial_order_access(q, partial, db)
        expected = oracle_projected(q, db, ["x1", "x2"])
        got = [access.tuple_at(i) for i in range(len(access))]
        assert got == expected

    def test_projection_counts_each_answer_once(self, rng):
        # Many z-extensions per (x1, x2) must still count once.
        from repro.data.database import Database

        q = projected_star_query(2)
        db = Database(
            {
                "R1": {(0, z) for z in range(5)},
                "R2": {(1, z) for z in range(5)},
            }
        )
        access = partial_order_access(
            q, VariableOrder(["x1", "x2"]), db
        )
        assert len(access) == 1
        assert access.tuple_at(0) == (0, 1)

    def test_partial_order_on_join_query(self, rng):
        # No projections: order only x1; ties broken consistently.
        q = path_query(2)
        db = random_database_for(q, rng, rows=20, domain=5)
        partial = VariableOrder(["x2"])
        access = partial_order_access(q, partial, db)
        values = [access.tuple_at(i) for i in range(len(access))]
        # answers sorted by x2 (first variable of the completion)
        x2_position = access.free_variables.index("x2")
        x2_values = [v[x2_position] for v in values]
        assert x2_values == sorted(x2_values)
        # and the full list is the set of all answers
        base = evaluate(q, db, list(access.free_variables))
        assert set(values) == set(base.rows)

    def test_four_cycle_projection(self, rng):
        q = four_cycle_query().project(("x1", "x3"))
        db = random_database_for(q, rng, rows=20, domain=4)
        partial = VariableOrder(["x1", "x3"])
        access = partial_order_access(q, partial, db)
        expected = oracle_projected(q, db, ["x1", "x3"])
        got = [access.tuple_at(i) for i in range(len(access))]
        assert got == expected
