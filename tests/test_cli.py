"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestVersion:
    def test_version_reports_package_and_protocol(self, capsys):
        import repro
        from repro.session.protocol import PROTOCOL_VERSION

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert f"repro {repro.__version__}" in out
        assert f"protocol {PROTOCOL_VERSION}" in out


class TestServeCommand:
    def test_serve_on_ephemeral_port_round_trips(
        self, tmp_path, capsys
    ):
        """`repro serve` boots, prints its URL, and answers HTTP —
        driven through the real CLI codepath on a background thread."""
        import json
        import re
        import threading
        import time
        import urllib.request

        relation = tmp_path / "r.csv"
        relation.write_text("1,2\n3,2\n3,4\n")
        thread = threading.Thread(
            target=main,
            args=(
                [
                    "serve",
                    "--port",
                    "0",
                    "--workers",
                    "2",
                    "--relation",
                    f"R={relation}",
                    "--query",
                    "Q(x,y) :- R(x,y)",
                ],
            ),
            daemon=True,
        )
        thread.start()
        url = None
        for _ in range(100):
            match = re.search(
                r"http://[\d.]+:\d+", capsys.readouterr().out
            )
            if match:
                url = match.group(0)
                break
            time.sleep(0.05)
        assert url, "serve never printed its URL"
        request = urllib.request.Request(
            url + "/v1/session",
            data=b'{"op": "count", "order": ["x", "y"]}',
            method="POST",
        )
        for _ in range(50):  # the socket may lag the banner slightly
            try:
                with urllib.request.urlopen(
                    request, timeout=5
                ) as reply:
                    body = json.loads(reply.read().decode())
                break
            except OSError:
                time.sleep(0.05)
        else:
            pytest.fail("serve URL never became reachable")
        assert body["ok"] is True
        assert body["result"]["count"] == 3

    def test_serve_rejects_bad_relation_spec(self):
        with pytest.raises(SystemExit):
            main(["serve", "--relation", "busted"])

    def test_serve_rejects_negative_capacity(self, tmp_path):
        relation = tmp_path / "r.csv"
        relation.write_text("1,2\n")
        with pytest.raises(SystemExit):
            main(
                [
                    "serve",
                    "--relation",
                    f"R={relation}",
                    "--capacity",
                    "-1",
                ]
            )

    def test_serve_rejects_invalid_default_query(self, tmp_path):
        relation = tmp_path / "r.csv"
        relation.write_text("1,2\n")
        with pytest.raises(SystemExit):
            main(
                [
                    "serve",
                    "--port",
                    "0",
                    "--relation",
                    f"R={relation}",
                    "--query",
                    "Q(a,b) :- Missing(a,b)",
                ]
            )


class TestAnalyze:
    def test_example5(self, capsys):
        code = main(
            [
                "analyze",
                "Q(v1,v2,v3,v4,v5) :- R1(v1,v5), R2(v2,v4), "
                "R3(v3,v4), R4(v3,v5)",
                "--order",
                "v1,v2,v3,v4,v5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "acyclic:      True" in out
        assert "incompatibility number ι = 3" in out
        assert "disruptive trio: (" in out

    def test_tractable_pair(self, capsys):
        code = main(
            ["analyze", "Q(x,y) :- R(x,y)", "--order", "x,y"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ι = 1" in out
        assert "disruptive trio: none" in out


class TestFhtw:
    def test_triangle(self, capsys):
        code = main(["fhtw", "Q(a,b,c) :- R(a,b), S(b,c), T(c,a)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fractional hypertree width: 3/2" in out


class TestAccess:
    def test_with_csv_relations(self, tmp_path, capsys):
        r_file = tmp_path / "r.csv"
        r_file.write_text("1,2\n3,4\n# comment\n\n1,9\n")
        code = main(
            [
                "access",
                "Q(x,y) :- R(x,y)",
                "--order",
                "y,x",
                "--relation",
                f"R={r_file}",
                "--index",
                "0",
                "--median",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 answers" in out
        assert "answers[0] = (2, 1)" in out
        assert "median = (4, 3)" in out

    def test_bad_relation_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "access",
                    "Q(x) :- R(x)",
                    "--order",
                    "x",
                    "--relation",
                    "just-a-path",
                ]
            )

    def test_empty_relation_file(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("\n")
        with pytest.raises(SystemExit):
            main(
                [
                    "access",
                    "Q(x) :- R(x)",
                    "--order",
                    "x",
                    "--relation",
                    f"R={empty}",
                ]
            )


class TestSession:
    def _serve(self, tmp_path, monkeypatch, script):
        import io

        r_file = tmp_path / "r.csv"
        r_file.write_text("1,2\n3,2\n3,4\n")
        s_file = tmp_path / "s.csv"
        s_file.write_text("2,7\n2,9\n4,1\n")
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        return main(
            [
                "session",
                "Q(x,y,z) :- R(x,y), S(y,z)",
                "--relation",
                f"R={r_file}",
                "--relation",
                f"S={s_file}",
            ]
        )

    def test_serves_multiple_requests(self, tmp_path, monkeypatch, capsys):
        code = self._serve(
            tmp_path,
            monkeypatch,
            "access x,y,z 0 -1\n"
            "median -\n"
            "page x,y,z 0 2\n"
            "count x,y,z\n"
            "stats\n"
            "quit\n",
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "session ready" in out
        assert "answers[0] = (1, 2, 7)" in out
        assert "answers[-1] = (3, 4, 1)" in out
        assert "median = (3, 2, 7)" in out
        assert "(1, 2, 9)" in out  # second row of the page
        assert "5 answers over ['x', 'y', 'z']" in out
        assert "bag_materializations: 3" in out
        assert "served 4 requests" in out

    def test_missing_relation_exits_at_startup(self, tmp_path):
        r_file = tmp_path / "r.csv"
        r_file.write_text("1,2\n")
        with pytest.raises(SystemExit):
            main(
                [
                    "session",
                    "Q(x,y) :- R(x,y)",
                    "--relation",
                    f"Wrong={r_file}",
                ]
            )

    def test_negative_capacity_exits_cleanly(self, tmp_path):
        r_file = tmp_path / "r.csv"
        r_file.write_text("1,2\n")
        with pytest.raises(SystemExit):
            main(
                [
                    "session",
                    "Q(x,y) :- R(x,y)",
                    "--relation",
                    f"R={r_file}",
                    "--capacity",
                    "-1",
                ]
            )

    def test_errors_do_not_end_the_session(
        self, tmp_path, monkeypatch, capsys
    ):
        code = self._serve(
            tmp_path,
            monkeypatch,
            "access x,y,z 99\n"  # out of bounds
            "page x,y,z -1 5\n"  # negative page
            "frobnicate\n"  # unknown command
            "count x,y,z\n",  # still served afterwards
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("error:") == 3
        assert "5 answers" in out


class TestSessionRank:
    def test_rank_round_trips_in_text_mode(
        self, tmp_path, monkeypatch, capsys
    ):
        import io

        r_file = tmp_path / "r.csv"
        r_file.write_text("1,2\n3,2\n3,4\n")
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                "access x,y 2\n"
                "rank x,y 3,2\n"
                "rank x,y 9,9\n"
                "quit\n"
            ),
        )
        code = main(
            [
                "session",
                "Q(x,y) :- R(x,y)",
                "--relation",
                f"R={r_file}",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "answers[2] = (3, 4)" in out
        assert "rank[(3, 2)] = 1" in out
        assert "rank[(9, 9)] = not an answer" in out


class TestSessionJson:
    """The --json mode speaks the versioned SessionRequest protocol."""

    def _serve_json(self, tmp_path, monkeypatch, lines):
        import io

        r_file = tmp_path / "r.csv"
        r_file.write_text("1,2\n3,2\n3,4\n")
        s_file = tmp_path / "s.csv"
        s_file.write_text("2,7\n2,9\n4,1\n")
        monkeypatch.setattr("sys.stdin", io.StringIO("".join(lines)))
        return main(
            [
                "session",
                "--json",
                "Q(x,y,z) :- R(x,y), S(y,z)",
                "--relation",
                f"R={r_file}",
                "--relation",
                f"S={s_file}",
            ]
        )

    def test_round_trip(self, tmp_path, monkeypatch, capsys):
        from repro.session import SessionRequest, SessionResponse

        requests = [
            SessionRequest(op="count", order=("x", "y", "z")),
            SessionRequest(
                op="access", order=("x", "y", "z"), indices=(0, -1)
            ),
            SessionRequest(
                op="rank", order=("x", "y", "z"), answer=(3, 4, 1)
            ),
            SessionRequest(op="median"),
            SessionRequest(op="stats"),
            SessionRequest(op="quit"),
        ]
        code = self._serve_json(
            tmp_path,
            monkeypatch,
            [request.to_json() + "\n" for request in requests],
        )
        out = capsys.readouterr().out
        assert code == 0
        responses = [
            SessionResponse.from_json(line)
            for line in out.splitlines()
            if line.strip()
        ]
        assert len(responses) == len(requests)
        assert all(response.ok for response in responses)
        by_op = {response.op: response for response in responses}
        assert by_op["count"].result["count"] == 5
        assert by_op["access"].result["answers"] == [
            [1, 2, 7],
            [3, 4, 1],
        ]
        assert by_op["rank"].result["rank"] == 4
        assert tuple(by_op["median"].result["answer"]) == (3, 2, 7)
        assert by_op["stats"].result["requests"] >= 3

    def test_errors_are_json_and_do_not_end_the_stream(
        self, tmp_path, monkeypatch, capsys
    ):
        import json

        code = self._serve_json(
            tmp_path,
            monkeypatch,
            [
                "this is not json\n",
                '{"op": "frobnicate"}\n',
                '{"op": "count", "version": 99}\n',
                '{"op": "access", "order": ["x", "y", "z"], '
                '"indices": [999]}\n',
                '{"op": "count", "order": ["x", "y", "z"]}\n',
            ],
        )
        out = capsys.readouterr().out
        assert code == 0
        lines = [json.loads(line) for line in out.splitlines() if line]
        assert [line["ok"] for line in lines] == [
            False,
            False,
            False,
            False,
            True,
        ]
        assert lines[-1]["result"]["count"] == 5
