"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_example5(self, capsys):
        code = main(
            [
                "analyze",
                "Q(v1,v2,v3,v4,v5) :- R1(v1,v5), R2(v2,v4), "
                "R3(v3,v4), R4(v3,v5)",
                "--order",
                "v1,v2,v3,v4,v5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "acyclic:      True" in out
        assert "incompatibility number ι = 3" in out
        assert "disruptive trio: (" in out

    def test_tractable_pair(self, capsys):
        code = main(
            ["analyze", "Q(x,y) :- R(x,y)", "--order", "x,y"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ι = 1" in out
        assert "disruptive trio: none" in out


class TestFhtw:
    def test_triangle(self, capsys):
        code = main(["fhtw", "Q(a,b,c) :- R(a,b), S(b,c), T(c,a)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fractional hypertree width: 3/2" in out


class TestAccess:
    def test_with_csv_relations(self, tmp_path, capsys):
        r_file = tmp_path / "r.csv"
        r_file.write_text("1,2\n3,4\n# comment\n\n1,9\n")
        code = main(
            [
                "access",
                "Q(x,y) :- R(x,y)",
                "--order",
                "y,x",
                "--relation",
                f"R={r_file}",
                "--index",
                "0",
                "--median",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 answers" in out
        assert "answers[0] = (2, 1)" in out
        assert "median = (4, 3)" in out

    def test_bad_relation_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "access",
                    "Q(x) :- R(x)",
                    "--order",
                    "x",
                    "--relation",
                    "just-a-path",
                ]
            )

    def test_empty_relation_file(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("\n")
        with pytest.raises(SystemExit):
            main(
                [
                    "access",
                    "Q(x) :- R(x)",
                    "--order",
                    "x",
                    "--relation",
                    f"R={empty}",
                ]
            )
