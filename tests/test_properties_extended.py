"""Further hypothesis property tests: projections, orderless, testing."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.access import DirectAccess
from repro.core.orderless import OrderlessFourCycleAccess
from repro.core.projections import partial_order_access
from repro.core.testing import AnswerTester
from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.generic_join import evaluate
from repro.query.catalog import (
    four_cycle_query,
    projected_star_query,
    star_query,
)
from repro.query.variable_order import VariableOrder

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

binary_relation = st.sets(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=12
)


class TestProjectionProperties:
    @SETTINGS
    @given(binary_relation, binary_relation)
    def test_projected_star_matches_distinct_pairs(self, rows1, rows2):
        query = projected_star_query(2)
        database = Database(
            {
                "R1": Relation(rows1, arity=2),
                "R2": Relation(rows2, arity=2),
            }
        )
        access = partial_order_access(
            query, VariableOrder(["x1", "x2"]), database
        )
        expected = sorted(
            {
                (a, c)
                for a, b in rows1
                for c, d in rows2
                if b == d
            }
        )
        got = [access.tuple_at(i) for i in range(len(access))]
        assert got == expected


class TestOrderlessProperties:
    @SETTINGS
    @given(
        binary_relation,
        binary_relation,
        binary_relation,
        binary_relation,
    )
    def test_four_cycle_bijection(self, r1, r2, r3, r4):
        database = Database(
            {
                "R1": Relation(r1, arity=2),
                "R2": Relation(r2, arity=2),
                "R3": Relation(r3, arity=2),
                "R4": Relation(r4, arity=2),
            }
        )
        access = OrderlessFourCycleAccess(database)
        expected = {
            tuple(row)
            for row in evaluate(
                four_cycle_query(),
                database,
                ["x1", "x2", "x3", "x4"],
            ).rows
        }
        got = [access.tuple_at(i) for i in range(len(access))]
        assert len(got) == len(expected)
        assert set(got) == expected
        assert len(set(got)) == len(got)


class TestTesterProperties:
    @SETTINGS
    @given(binary_relation, binary_relation, st.integers(0, 3), st.integers(0, 3), st.integers(0, 3))
    def test_membership_matches_bruteforce(
        self, r1, r2, a, b, c
    ):
        query = star_query(2)
        database = Database(
            {
                "R1": Relation(r1, arity=2),
                "R2": Relation(r2, arity=2),
            }
        )
        order = VariableOrder(["x1", "x2", "z"])
        tester = AnswerTester(DirectAccess(query, order, database))
        expected = (a, c) in r1 and (b, c) in r2
        assert tester.contains((a, b, c)) == expected
