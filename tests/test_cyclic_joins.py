"""Tests for Lemma 54: cyclic joins embed Loomis-Whitney joins."""

import pytest

from repro.data.generators import loomis_whitney_database
from repro.errors import QueryError
from repro.hypergraph.hypergraph import Hypergraph
from repro.joins.generic_join import evaluate
from repro.lowerbounds.cyclic_joins import (
    CyclicJoinEmbedding,
    find_chordless_cycle,
    find_non_conformal_clique,
)
from repro.query.catalog import (
    cycle_query,
    example5_query,
    four_cycle_query,
    loomis_whitney_query,
    path_query,
    running_selfjoin_query,
    triangle_query,
)
from repro.query.parser import parse_query


def check_bijection(host_query, seed=0, rows=25, domain=4):
    embedding = CyclicJoinEmbedding(host_query)
    lw_query = loomis_whitney_query(embedding.k)
    lw_db = loomis_whitney_database(
        embedding.k, rows, domain, seed=seed
    )
    host_db = embedding.transform_database(lw_db)
    host_answers = evaluate(
        host_query, host_db, list(host_query.variables)
    )
    index = {v: i for i, v in enumerate(host_query.variables)}
    mapped = [
        embedding.lw_answer(
            {v: row[index[v]] for v in host_query.variables}
        )
        for row in host_answers.rows
    ]
    lw_answers = {
        tuple(r)
        for r in evaluate(
            lw_query,
            lw_db,
            [f"x{i + 1}" for i in range(embedding.k)],
        ).rows
    }
    assert set(mapped) == lw_answers
    assert len(mapped) == len(lw_answers)  # exact reduction: bijective
    return embedding, len(lw_answers)


class TestObstructionSearch:
    def test_triangle_is_a_nonconformal_clique(self):
        h = Hypergraph.of_query(triangle_query())
        assert find_non_conformal_clique(h) == ("x1", "x2", "x3")

    def test_four_cycle_is_chordless(self):
        h = Hypergraph.of_query(four_cycle_query())
        assert find_non_conformal_clique(h) is None
        cycle = find_chordless_cycle(h)
        assert cycle is not None and len(cycle) == 4

    def test_acyclic_has_neither(self):
        for query in (path_query(3), example5_query()):
            h = Hypergraph.of_query(query)
            assert find_non_conformal_clique(h) is None
            assert find_chordless_cycle(h) is None

    def test_lw_k_clique_size(self):
        for k in (3, 4):
            h = Hypergraph.of_query(loomis_whitney_query(k))
            clique = find_non_conformal_clique(h)
            assert clique is not None and len(clique) == k


class TestEmbedding:
    def test_triangle(self):
        embedding, count = check_bijection(triangle_query(), seed=1)
        assert embedding.kind == "clique" and embedding.k == 3
        assert count > 0

    def test_lw4(self):
        embedding, count = check_bijection(
            loomis_whitney_query(4), seed=2, rows=60, domain=4
        )
        assert embedding.kind == "clique" and embedding.k == 4
        assert count > 0

    def test_four_and_five_cycles(self):
        for length, seed in ((4, 1), (5, 3)):
            embedding, count = check_bijection(
                cycle_query(length), seed=seed
            )
            assert embedding.kind == "cycle" and embedding.k == 3
            assert count > 0

    def test_cycle_with_pendants(self):
        query = parse_query(
            "Q(a,b,c,d,e,f) :- R1(a,b), R2(b,c), R3(c,d), "
            "R4(d,e), R5(e,a), R6(c,f)"
        )
        embedding, count = check_bijection(query, seed=4)
        assert embedding.k == 3
        assert count > 0

    def test_rejects_acyclic(self):
        with pytest.raises(QueryError):
            CyclicJoinEmbedding(path_query(2))

    def test_rejects_self_joins(self):
        with pytest.raises(QueryError):
            CyclicJoinEmbedding(running_selfjoin_query())

    def test_linear_blowup(self):
        # |D| for the host is O(|D*|) — exact reductions are linear.
        embedding = CyclicJoinEmbedding(cycle_query(6))
        lw_db = loomis_whitney_database(3, 40, 6, seed=5)
        host_db = embedding.transform_database(lw_db)
        domain_size = len(
            {v for rel in lw_db.relations.values()
             for row in rel.tuples for v in row}
        )
        budget = len(embedding.query.atoms) * (
            len(lw_db) + domain_size
        )
        assert len(host_db) <= budget
