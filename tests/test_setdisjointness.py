"""Tests for the set-disjointness/intersection problem family (§4.3, §5)."""

import pytest

from repro.lowerbounds.setdisjointness import (
    MergeDisjointness,
    PrecomputedDisjointness,
    SetIntersectionViaUnique,
    SetSystem,
    StarDisjointness,
    StarSetIntersection,
    UniqueSetIntersectionViaDisjointness,
    star_database,
)


@pytest.fixture
def example21() -> SetSystem:
    """The instance of Example 21 (paper, Section 4.3)."""
    return SetSystem(
        (
            (frozenset({1, 3, 5}), frozenset({1, 2, 4})),
            (
                frozenset({1, 4}),
                frozenset({2, 4}),
                frozenset({1, 2, 3, 4, 5}),
            ),
            (frozenset({3, 4, 5}), frozenset({4})),
        )
    )


class TestSetSystem:
    def test_example21_size(self, example21):
        assert example21.size == 19  # the paper computes ‖I‖ = 19
        assert example21.k == 3
        assert example21.set_count == 7

    def test_universe(self, example21):
        assert example21.universe() == frozenset({1, 2, 3, 4, 5})

    def test_random_is_deterministic(self):
        a = SetSystem.random(2, 5, 3, 10, seed=1)
        b = SetSystem.random(2, 5, 3, 10, seed=1)
        assert a == b


class TestDisjointnessBackends:
    def test_example21_queries(self, example21):
        for backend in (
            MergeDisjointness,
            PrecomputedDisjointness,
            StarDisjointness,
        ):
            oracle = backend(example21)
            # (2,3,2) in the paper (1-based): intersection {4} -> not disjoint
            assert not oracle.disjoint((1, 2, 1))
            # (1,1,1): empty -> disjoint
            assert oracle.disjoint((0, 0, 0))

    def test_backends_agree_on_random_instances(self):
        for seed in range(3):
            instance = SetSystem.random(2, 8, 5, 16, seed=seed)
            merge = MergeDisjointness(instance)
            pre = PrecomputedDisjointness(instance)
            star = StarDisjointness(instance)
            for j1 in range(8):
                for j2 in range(8):
                    q = (j1, j2)
                    assert (
                        merge.disjoint(q)
                        == pre.disjoint(q)
                        == star.disjoint(q)
                    )

    def test_star_database_size_matches_instance(self, example21):
        assert len(star_database(example21)) == example21.size


class TestStarSetIntersection:
    def test_full_intersections(self):
        instance = SetSystem.random(2, 6, 5, 12, seed=4)
        oracle = StarSetIntersection(instance)
        for j1 in range(6):
            for j2 in range(6):
                expected = sorted(
                    instance.families[0][j1] & instance.families[1][j2]
                )
                assert oracle.intersect((j1, j2), 100) == expected

    def test_limit_truncates(self):
        instance = SetSystem(
            ((frozenset(range(10)),), (frozenset(range(10)),))
        )
        oracle = StarSetIntersection(instance)
        assert len(oracle.intersect((0, 0), 3)) == 3

    def test_three_families(self, example21):
        oracle = StarSetIntersection(example21)
        assert oracle.intersect((1, 2, 1), 10) == [4]
        assert oracle.intersect((0, 0, 0), 10) == []


class TestUniqueViaDisjointness:
    def test_matches_definition(self):
        instance = SetSystem.random(2, 8, 4, 12, seed=6)
        oracle = UniqueSetIntersectionViaDisjointness(instance)
        for j1 in range(8):
            for j2 in range(8):
                intersection = (
                    instance.families[0][j1] & instance.families[1][j2]
                )
                expected = (
                    next(iter(intersection))
                    if len(intersection) == 1
                    else None
                )
                assert oracle.unique_element((j1, j2)) == expected

    def test_with_star_backend(self, example21):
        oracle = UniqueSetIntersectionViaDisjointness(
            example21, backend=StarDisjointness
        )
        assert oracle.unique_element((1, 2, 1)) == 4


class TestLemma30Subsampling:
    def test_returns_only_correct_elements(self):
        instance = SetSystem.random(2, 6, 5, 10, seed=8)
        oracle = SetIntersectionViaUnique(instance, limit=4, seed=1)
        for j1 in range(6):
            for j2 in range(6):
                got = set(oracle.intersect((j1, j2)))
                assert got <= (
                    instance.families[0][j1] & instance.families[1][j2]
                )

    def test_high_recall(self):
        instance = SetSystem.random(2, 5, 4, 8, seed=2)
        oracle = SetIntersectionViaUnique(instance, limit=3, seed=5)
        hits = total = 0
        for j1 in range(5):
            for j2 in range(5):
                intersection = (
                    instance.families[0][j1] & instance.families[1][j2]
                )
                want = min(3, len(intersection))
                total += 1
                if len(oracle.intersect((j1, j2))) >= want:
                    hits += 1
        assert hits / total > 0.9  # "with high probability"
