"""Tests for random-order enumeration without repetition."""

import pytest

from repro.core.access import DirectAccess
from repro.core.random_order import (
    FeistelPermutation,
    random_order_enumeration,
    random_prefix,
)
from repro.data.database import Database
from repro.query.parser import parse_query
from repro.query.variable_order import VariableOrder
from tests.conftest import lex_answers, random_database_for


class TestFeistelPermutation:
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 64, 100, 1000])
    def test_is_a_permutation(self, n):
        permutation = FeistelPermutation(n, seed=3)
        images = [permutation(i) for i in range(n)]
        assert sorted(images) == list(range(n))

    def test_seed_changes_order(self):
        n = 50
        first = [FeistelPermutation(n, seed=1)(i) for i in range(n)]
        second = [FeistelPermutation(n, seed=2)(i) for i in range(n)]
        assert first != second

    def test_deterministic(self):
        n = 30
        a = [FeistelPermutation(n, seed=9)(i) for i in range(n)]
        b = [FeistelPermutation(n, seed=9)(i) for i in range(n)]
        assert a == b

    def test_out_of_range(self):
        permutation = FeistelPermutation(5)
        with pytest.raises(IndexError):
            permutation(5)

    def test_not_identity_for_reasonable_sizes(self):
        n = 200
        permutation = FeistelPermutation(n, seed=0)
        moved = sum(1 for i in range(n) if permutation(i) != i)
        assert moved > n // 2


class TestRandomOrderEnumeration:
    def _access(self, rng):
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        db = random_database_for(query, rng, rows=25, domain=5)
        order = VariableOrder(["x", "y", "z"])
        return (
            DirectAccess(query, order, db),
            lex_answers(query, db, order),
        )

    def test_covers_all_answers_exactly_once(self, rng):
        access, answers = self._access(rng)
        stream = list(random_order_enumeration(access, seed=4))
        assert len(stream) == len(answers)
        assert sorted(stream) == answers

    def test_is_not_sorted_order(self, rng):
        access, answers = self._access(rng)
        if len(answers) < 10:
            pytest.skip("too few answers to distinguish orders")
        stream = list(random_order_enumeration(access, seed=4))
        assert stream != answers

    def test_prefix_is_resumable(self, rng):
        access, _ = self._access(rng)
        short = random_prefix(access, 5, seed=7)
        longer = random_prefix(access, 10, seed=7)
        assert longer[:5] == short

    def test_empty_access(self):
        query = parse_query("Q(x) :- R(x)")
        from repro.data.relation import Relation

        db = Database({"R": Relation([], arity=1)})
        access = DirectAccess(query, VariableOrder(["x"]), db)
        assert list(random_order_enumeration(access)) == []
