"""Tests for the order-sensitive task layer (median, sampling, ...)."""

import pytest

from repro.core.access import DirectAccess
from repro.core.tasks import (
    answer_count,
    boxplot,
    enumerate_in_order,
    median,
    page,
    quantile,
    sample_without_repetition,
)
from repro.data.database import Database
from repro.errors import OutOfBoundsError
from repro.query.parser import parse_query
from repro.query.variable_order import VariableOrder
from tests.conftest import lex_answers, random_database_for


@pytest.fixture
def access(rng):
    query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
    db = random_database_for(query, rng, rows=25, domain=5)
    order = VariableOrder(["x", "y", "z"])
    return (
        DirectAccess(query, order, db),
        lex_answers(query, db, order),
    )


class TestOrderStatistics:
    def test_median(self, access):
        da, answers = access
        assert median(da) == answers[(len(answers) - 1) // 2]

    def test_quantiles(self, access):
        da, answers = access
        n = len(answers)
        assert quantile(da, 0) == answers[0]
        assert quantile(da, 1) == answers[-1]
        assert quantile(da, 0.25) == answers[(n - 1) // 4]

    def test_quantile_bounds(self, access):
        da, _ = access
        with pytest.raises(ValueError):
            quantile(da, 1.5)

    def test_boxplot(self, access):
        da, answers = access
        summary = boxplot(da)
        assert summary["min"] == answers[0]
        assert summary["max"] == answers[-1]
        assert summary["median"] == median(da)

    def test_empty_access_raises(self):
        from repro.data.relation import Relation

        q = parse_query("Q(x) :- R(x)")
        da = DirectAccess(
            q,
            VariableOrder(["x"]),
            Database({"R": Relation([], arity=1)}),
        )
        with pytest.raises(OutOfBoundsError):
            median(da)


class TestSamplingAndPagination:
    def test_sample_without_repetition(self, access):
        da, answers = access
        sample = sample_without_repetition(da, 10, seed=3)
        assert len(sample) == len(set(sample)) == 10
        assert set(sample) <= set(answers)

    def test_sample_too_large(self, access):
        da, _ = access
        with pytest.raises(OutOfBoundsError):
            sample_without_repetition(da, len(da) + 1)

    def test_sample_negative_k(self, access):
        """A negative k is the same caller bug as k > n: the library's
        OutOfBoundsError, not random.Random.sample's bare ValueError."""
        da, _ = access
        with pytest.raises(OutOfBoundsError):
            sample_without_repetition(da, -1)

    def test_sample_zero_k(self, access):
        da, _ = access
        assert sample_without_repetition(da, 0) == []

    def test_pagination(self, access):
        da, answers = access
        size = 7
        collected = []
        number = 0
        while True:
            chunk = page(da, number, size)
            if not chunk:
                break
            collected.extend(chunk)
            number += 1
        assert collected == answers

    def test_negative_page_raises(self, access):
        """Regression: negative pages used to clamp silently to page 0."""
        da, answers = access
        with pytest.raises(OutOfBoundsError):
            page(da, -1, 5)
        with pytest.raises(OutOfBoundsError):
            page(da, -100, 5)
        # Pages past the end stay empty (they end forward scans).
        assert page(da, len(answers), 5) == []

    def test_bad_page_size_raises(self, access):
        da, _ = access
        with pytest.raises(OutOfBoundsError):
            page(da, 0, 0)
        with pytest.raises(OutOfBoundsError):
            page(da, 2, -3)

    def test_enumeration(self, access):
        da, answers = access
        assert list(enumerate_in_order(da)) == answers
        assert answer_count(da) == len(answers)

    def test_enumeration_chunked(self, access):
        """Chunk boundaries are invisible in the enumeration order."""
        da, answers = access
        assert list(enumerate_in_order(da, chunk=3)) == answers
        assert list(enumerate_in_order(da, chunk=10**6)) == answers

    def test_enumeration_rejects_bad_chunk(self, access):
        da, _ = access
        with pytest.raises(ValueError):
            list(enumerate_in_order(da, chunk=0))
        with pytest.raises(ValueError):
            list(enumerate_in_order(da, chunk=-5))


class TestBatchedTaskLayer:
    """The task helpers resolve index sets through one batch access."""

    def test_tasks_route_through_batch_api(self, access):
        da, _ = access

        calls = {"batch": 0, "scalar": 0}

        class Spy:
            def __len__(self):
                return len(da)

            def tuple_at(self, index):
                calls["scalar"] += 1
                return da.tuple_at(index)

            def tuples_at(self, indices):
                calls["batch"] += 1
                return da.tuples_at(indices)

        spy = Spy()
        boxplot(spy)
        sample_without_repetition(spy, min(5, len(da)), seed=0)
        page(spy, 0, 5)
        list(enumerate_in_order(spy))
        assert calls["batch"] >= 4
        assert calls["scalar"] == 0

    def test_batched_results_match_scalar(self, access):
        """Bit-identical to resolving every index with tuple_at."""
        da, answers = access

        class ScalarOnly:
            def __len__(self):
                return len(da)

            def tuple_at(self, index):
                return da.tuple_at(index)

        scalar = ScalarOnly()
        assert boxplot(da) == boxplot(scalar)
        assert sample_without_repetition(
            da, 8, seed=11
        ) == sample_without_repetition(scalar, 8, seed=11)
        assert page(da, 1, 6) == page(scalar, 1, 6)
        assert list(enumerate_in_order(da)) == list(
            enumerate_in_order(scalar)
        )

    def test_direct_access_iter_is_chunked_and_lazy(self, access):
        da, answers = access
        assert DirectAccess.ITER_CHUNK > 0
        expected = [
            {v: value for v, value in zip(da.free_variables, row)}
            for row in answers
        ]
        assert list(iter(da)) == expected
        # A tiny chunk size must not change the stream.
        old = DirectAccess.ITER_CHUNK
        try:
            DirectAccess.ITER_CHUNK = 2
            assert list(iter(da)) == expected
        finally:
            DirectAccess.ITER_CHUNK = old

    def test_tuples_at_matches_tuple_at(self, access):
        da, answers = access
        n = len(da)
        indices = [0, n // 2, n - 1, -1, -n]
        assert da.tuples_at(indices) == [
            da.tuple_at(i % n) for i in indices
        ]
