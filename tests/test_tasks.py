"""Tests for the order-sensitive task layer (median, sampling, ...)."""

import pytest

from repro.core.access import DirectAccess
from repro.core.tasks import (
    answer_count,
    boxplot,
    enumerate_in_order,
    median,
    page,
    quantile,
    sample_without_repetition,
)
from repro.data.database import Database
from repro.errors import OutOfBoundsError
from repro.query.parser import parse_query
from repro.query.variable_order import VariableOrder
from tests.conftest import lex_answers, random_database_for


@pytest.fixture
def access(rng):
    query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
    db = random_database_for(query, rng, rows=25, domain=5)
    order = VariableOrder(["x", "y", "z"])
    return (
        DirectAccess(query, order, db),
        lex_answers(query, db, order),
    )


class TestOrderStatistics:
    def test_median(self, access):
        da, answers = access
        assert median(da) == answers[(len(answers) - 1) // 2]

    def test_quantiles(self, access):
        da, answers = access
        n = len(answers)
        assert quantile(da, 0) == answers[0]
        assert quantile(da, 1) == answers[-1]
        assert quantile(da, 0.25) == answers[(n - 1) // 4]

    def test_quantile_bounds(self, access):
        da, _ = access
        with pytest.raises(ValueError):
            quantile(da, 1.5)

    def test_boxplot(self, access):
        da, answers = access
        summary = boxplot(da)
        assert summary["min"] == answers[0]
        assert summary["max"] == answers[-1]
        assert summary["median"] == median(da)

    def test_empty_access_raises(self):
        from repro.data.relation import Relation

        q = parse_query("Q(x) :- R(x)")
        da = DirectAccess(
            q,
            VariableOrder(["x"]),
            Database({"R": Relation([], arity=1)}),
        )
        with pytest.raises(OutOfBoundsError):
            median(da)


class TestSamplingAndPagination:
    def test_sample_without_repetition(self, access):
        da, answers = access
        sample = sample_without_repetition(da, 10, seed=3)
        assert len(sample) == len(set(sample)) == 10
        assert set(sample) <= set(answers)

    def test_sample_too_large(self, access):
        da, _ = access
        with pytest.raises(OutOfBoundsError):
            sample_without_repetition(da, len(da) + 1)

    def test_pagination(self, access):
        da, answers = access
        size = 7
        collected = []
        number = 0
        while True:
            chunk = page(da, number, size)
            if not chunk:
                break
            collected.extend(chunk)
            number += 1
        assert collected == answers

    def test_enumeration(self, access):
        da, answers = access
        assert list(enumerate_in_order(da)) == answers
        assert answer_count(da) == len(answers)
