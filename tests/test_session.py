"""Tests for the serving layer: AccessSession, caches, shared encoding."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro import (
    AccessSession,
    Database,
    DirectAccess,
    EncodedDatabase,
    Relation,
    VariableOrder,
    parse_query,
    use_engine,
)
from repro.core.decomposition import DisruptionFreeDecomposition
from repro.data.columnar import numpy_available
from repro.engine import available_engines
from repro.errors import OrderError
from repro.session.cache import CacheStats, LRUCache
from tests.conftest import (
    lex_answers,
    random_database_for,
    random_join_query,
)

STAR = "Q(x, y, z, w) :- R(x, y), S(x, z), T(x, w)"


def star_database(seed=0, rows=40, domain=6) -> Database:
    rng = random.Random(seed)
    return random_database_for(
        parse_query(STAR), rng, rows=rows, domain=domain
    )


def enumerate_all(access) -> list[tuple]:
    return [access.tuple_at(i) for i in range(len(access))]


class TestCrossOrderSharing:
    """Orders inducing one decomposition share one preprocessing pass."""

    @pytest.mark.parametrize("engine", available_engines())
    def test_sibling_order_hits_cache(self, engine):
        query = parse_query(STAR)
        session = AccessSession(star_database(), engine=engine)
        first = session.access(query, order=["x", "y", "z", "w"])
        cold_materializations = session.stats.bag_materializations
        cold_builds = session.stats.forest_builds
        assert cold_materializations == 4  # one table per bag

        # A different order, same decomposition: zero new tuple work.
        second = session.access(query, order=["x", "w", "z", "y"])
        assert session.stats.bag_materializations == cold_materializations
        assert session.stats.forest_builds == cold_builds
        assert session.stats.preprocessing.hits == 1
        assert session.stats.forest.hits == 1

        # ... and the cached structures answer bit-identically to a
        # cold, session-free DirectAccess for that order.
        with use_engine(engine):
            cold = DirectAccess(
                query,
                VariableOrder(["x", "w", "z", "y"]),
                session.database,
            )
        assert len(second) == len(cold) == len(first)
        assert enumerate_all(second) == enumerate_all(cold)

    @pytest.mark.parametrize("engine", available_engines())
    def test_exact_repeat_returns_cached_structure(self, engine):
        query = parse_query(STAR)
        session = AccessSession(star_database(), engine=engine)
        first = session.access(query, order=["x", "y", "z", "w"])
        again = session.access(query, order=["x", "y", "z", "w"])
        assert again is first
        assert session.stats.access.hits == 1

    def test_projected_requests_cache_separately(self):
        query = parse_query(STAR)
        session = AccessSession(star_database())
        full = session.access(query, order=["x", "y", "z", "w"])
        materialized = session.stats.bag_materializations
        projected = session.access(
            query, order=["x", "y", "z", "w"], projected={"w"}
        )
        # Bag relations are shared with the full-order request ...
        assert session.stats.bag_materializations == materialized
        assert session.stats.preprocessing.hits == 1
        # ... but the counting forest is projected-set specific.
        assert session.stats.forest.misses == 2
        expected = sorted({t[:3] for t in enumerate_all(full)})
        assert enumerate_all(projected) == expected

    def test_structurally_equal_query_shares_cache(self):
        session = AccessSession(star_database())
        session.access(parse_query(STAR), order=["x", "y", "z", "w"])
        materialized = session.stats.bag_materializations
        renamed = parse_query(
            "P(x, y, z, w) :- R(x, y), S(x, z), T(x, w)"
        )
        session.access(renamed, order=["x", "z", "w", "y"])
        assert session.stats.bag_materializations == materialized

    def test_renamed_query_served_after_artifact_eviction(self):
        """Regression: a warm plan for query A must be reusable to
        rebuild evicted artifacts for a same-body query named B (the
        decomposition guard compares signatures, not head names)."""
        query_a = parse_query("A(x, y, z) :- R(x, y), S(y, z)")
        query_b = parse_query("B(x, y, z) :- R(x, y), S(y, z)")
        other = parse_query("O(u, v) :- T(u, v)")
        database = Database(
            {
                "R": {(1, 2), (3, 2)},
                "S": {(2, 7), (2, 9)},
                "T": {(0, 0)},
            }
        )
        session = AccessSession(database, capacity=1)
        session.access(query_a)  # plan + artifacts for A
        session.access(other, order=["u", "v"])  # evicts A's artifacts
        access = session.access(query_b)  # warm plan, cold artifacts
        assert len(access) == 4


class TestDecompositionCacheKey:
    """cache_key is canonical: equal iff the decompositions are equal."""

    def test_property_random_order_pairs(self):
        rng = random.Random(2024)
        checked_equal = 0
        for _ in range(60):
            query = random_join_query(rng)
            variables = list(query.variables)
            order_a = VariableOrder(
                rng.sample(variables, len(variables))
            )
            order_b = VariableOrder(
                rng.sample(variables, len(variables))
            )
            da = DisruptionFreeDecomposition(query, order_a)
            db_ = DisruptionFreeDecomposition(query, order_b)
            structure = lambda d: {
                bag.variable: (bag.edge, bag.interface)
                for bag in d.bags
            }
            same_structure = structure(da) == structure(db_)
            assert (da.cache_key() == db_.cache_key()) == same_structure
            if not same_structure:
                continue
            checked_equal += 1
            # Same decomposition => the session serves order_b from
            # order_a's preprocessing, with identical answers.
            database = random_database_for(query, rng)
            session = AccessSession(database)
            session.access(query, order=order_a)
            materialized = session.stats.bag_materializations
            warm = session.access(query, order=order_b)
            assert (
                session.stats.bag_materializations == materialized
            ), f"{query} {list(order_a)} {list(order_b)}"
            assert enumerate_all(warm) == lex_answers(
                query, database, order_b
            )
        assert checked_equal >= 5  # the property was actually exercised

    def test_key_differs_across_decompositions(self):
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        cheap = DisruptionFreeDecomposition(
            query, VariableOrder(["x", "y", "z"])
        )
        costly = DisruptionFreeDecomposition(
            query, VariableOrder(["x", "z", "y"])
        )
        assert cheap.cache_key() != costly.cache_key()


class TestPlanning:
    def test_advisor_picks_cheapest_cold(self):
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        session = AccessSession(
            random_database_for(query, random.Random(1))
        )
        report = session.plan(query)
        assert report.iota == 1
        access = session.access(query)
        assert list(access.order) == list(report.order)

    def test_prefix_planning(self):
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        session = AccessSession(
            random_database_for(query, random.Random(2))
        )
        access = session.access(query, prefix=["y"])
        assert list(access.order)[0] == "y"
        assert enumerate_all(access) == lex_answers(
            query, session.database, access.order
        )

    def test_cache_aware_order_choice(self):
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        database = random_database_for(query, random.Random(3))
        # Slack 1 admits the iota-2 order (x, z, y) once it is warm.
        session = AccessSession(database, cache_slack=1)
        warm_order = ["x", "z", "y"]
        session.access(query, order=warm_order)
        report = session.plan(query)
        assert list(report.order) == warm_order
        assert session.stats.cache_preferred_orders == 1
        # With the default slack 0 the cold optimum still wins.
        strict = AccessSession(database)
        strict.access(query, order=warm_order)
        assert strict.plan(query).iota == 1

    def test_mutated_cache_slack_replans(self):
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        database = random_database_for(query, random.Random(9))
        session = AccessSession(database)
        session.plan(query)  # caches the slack-0 (ties-only) window
        session.cache_slack = Fraction(1)
        session.access(query, order=["x", "z", "y"])  # warm iota-2
        assert list(session.plan(query).order) == ["x", "z", "y"]

    def test_plan_accepts_plain_list_prefix(self):
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        session = AccessSession(
            random_database_for(query, random.Random(8))
        )
        report = session.plan(query, ["y"])  # cold plan cache
        assert list(report.order)[0] == "y"

    def test_injected_forest_must_match_request(self):
        from repro.errors import QueryError

        query = parse_query(STAR)
        order = VariableOrder(["x", "y", "z", "w"])
        database = star_database()
        full = DirectAccess(query, order, database)
        # Same decomposition, different projection: must be rejected,
        # not silently double-counted.
        with pytest.raises(QueryError):
            DirectAccess(
                query,
                order,
                database,
                projected={"w"},
                forest=full.forest,
            )
        # Different decomposition of the same variables: rejected too.
        path = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        path_db = Database({"R": {(1, 2)}, "S": {(2, 3)}})
        cheap = DirectAccess(
            path, VariableOrder(["x", "y", "z"]), path_db
        )
        with pytest.raises(QueryError):
            DirectAccess(
                path,
                VariableOrder(["x", "z", "y"]),
                path_db,
                forest=cheap.forest,
            )
        # A different database: rejected (stale counts, not answers).
        with pytest.raises(QueryError):
            DirectAccess(
                query, order, star_database(seed=1), forest=full.forest
            )
        # The matching forest is accepted (the session's warm path).
        warm = DirectAccess(
            query,
            VariableOrder(["x", "w", "z", "y"]),
            database,
            forest=full.forest,
        )
        assert len(warm) == len(full)

    def test_injected_bag_tables_must_match_database(self):
        from repro.core.preprocessing import Preprocessing
        from repro.errors import QueryError

        query = parse_query("Q(x, y) :- R(x, y)")
        order = VariableOrder(["x", "y"])
        db_old = Database({"R": {(1, 2)}})
        db_new = Database({"R": {(1, 2), (3, 4)}})
        old = Preprocessing(query, order, db_old)
        with pytest.raises(QueryError):
            Preprocessing(
                query, order, db_new, bag_tables=old.bag_tables()
            )
        # The matching carrier replays without re-materializing.
        warm = Preprocessing(
            query, order, db_old, bag_tables=old.bag_tables()
        )
        assert warm.materialized_bag_count == 0

    def test_injected_preprocessing_must_match_database(self):
        from repro.core.preprocessing import Preprocessing
        from repro.errors import QueryError

        query = parse_query("Q(x, y) :- R(x, y)")
        order = VariableOrder(["x", "y"])
        db_old = Database({"R": {(1, 2)}})
        db_new = Database({"R": {(1, 2), (3, 4)}})
        prep = Preprocessing(query, order, db_old)
        with pytest.raises(QueryError):
            DirectAccess(query, order, db_new, preprocessing=prep)

    def test_plan_results_are_memoized(self):
        query = parse_query(STAR)
        session = AccessSession(star_database())
        session.access(query)
        session.access(query)
        assert session.stats.advisor_calls == 1

    def test_projected_needs_explicit_order(self):
        session = AccessSession(star_database())
        with pytest.raises(OrderError):
            session.access(parse_query(STAR), projected={"w"})

    def test_conflicting_order_and_prefix_raise(self):
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        session = AccessSession(
            random_database_for(query, random.Random(7))
        )
        with pytest.raises(OrderError):
            session.access(query, order=["x", "y", "z"], prefix=["y"])
        # A consistent pair is served normally.
        access = session.access(
            query, order=["y", "x", "z"], prefix=["y"]
        )
        assert list(access.order) == ["y", "x", "z"]

    def test_plan_cache_keeps_only_the_slack_window(self):
        query = parse_query(STAR)  # 4 variables, 24 orders
        session = AccessSession(star_database())
        session.plan(query)
        (stored,) = session._plans._entries.values()
        best = stored[0].iota
        assert all(report.iota == best for report in stored)
        assert len(stored) < 24


class TestSessionMechanics:
    def test_task_conveniences(self):
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        database = random_database_for(query, random.Random(4))
        session = AccessSession(database)
        order = ["x", "y", "z"]
        answers = lex_answers(query, database, VariableOrder(order))
        assert session.count(query, order=order) == len(answers)
        if answers:
            assert (
                session.median(query, order=order)
                == answers[(len(answers) - 1) // 2]
            )
            assert session.page(query, 0, 3, order=order) == answers[:3]

    def test_lru_eviction_keeps_serving(self):
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        database = random_database_for(query, random.Random(5))
        session = AccessSession(database, capacity=1)
        orders = (["x", "y", "z"], ["y", "x", "z"], ["x", "y", "z"])
        for order in orders:
            access = session.access(query, order=order)
            assert enumerate_all(access) == lex_answers(
                query, database, VariableOrder(order)
            )
        assert session.stats.preprocessing.evictions >= 1

    def test_clear_drops_artifacts_but_keeps_counters(self):
        query = parse_query(STAR)
        session = AccessSession(star_database())
        session.access(query, order=["x", "y", "z", "w"])
        session.clear()
        session.access(query, order=["x", "y", "z", "w"])
        assert session.stats.bag_materializations == 8

    def test_cache_stats_snapshot_shape(self):
        session = AccessSession(star_database())
        stats = session.cache_stats()
        assert set(stats) == {
            "requests",
            "advisor_calls",
            "cache_preferred_orders",
            "bag_materializations",
            "forest_builds",
            "preprocessing",
            "forest",
            "access",
            "plans",
            "decompositions",
            "store",
        }
        assert stats["store"]["database_encodes"] == 1
        assert stats["store"]["sessions"] == 1

    def test_session_engine_is_pinned(self):
        query = parse_query("Q(x, y) :- R(x, y)")
        database = Database({"R": {(1, 2), (2, 3)}})
        for engine in available_engines():
            session = AccessSession(database, engine=engine)
            access = session.access(query, order=["x", "y"])
            assert access.engine_name == engine

    def test_lru_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(-1, CacheStats())


class TestEncodedDatabase:
    def test_relations_share_one_dictionary(self):
        database = EncodedDatabase(
            {"R": {(1, 2), (3, 4)}, "S": {(2, 5)}}
        )
        if not numpy_available():
            assert database.shared_dictionary is None
            return
        dictionary = database.shared_dictionary
        assert dictionary is not None
        assert dictionary.values == [1, 2, 3, 4, 5]
        for relation in database.relations.values():
            assert relation._columnar.dictionary is dictionary

    def test_same_answers_as_plain_database(self):
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        rng = random.Random(6)
        relations = {
            "R": Relation(
                {(rng.randrange(6), rng.randrange(6)) for _ in range(20)},
                arity=2,
            ),
            "S": Relation(
                {(rng.randrange(6), rng.randrange(6)) for _ in range(20)},
                arity=2,
            ),
        }
        order = VariableOrder(["x", "y", "z"])
        expected = lex_answers(query, Database(relations), order)
        for engine in available_engines():
            with use_engine(engine):
                access = DirectAccess(
                    query, order, EncodedDatabase(relations)
                )
            assert enumerate_all(access) == expected

    def test_incomparable_domain_degrades_gracefully(self):
        database = EncodedDatabase(
            {"R": {(1, "u"), (2, "v")}, "S": {("u",)}}
        )
        assert database.shared_dictionary is None
        query = parse_query("Q(x, y) :- R(x, y), S(y)")
        session = AccessSession(database)
        access = session.access(query, order=["x", "y"])
        assert enumerate_all(access) == [(1, "u")]

    def test_extended_reencodes(self):
        database = EncodedDatabase({"R": {(1, 2)}})
        extended = database.extended({"S": {(9,)}})
        assert isinstance(extended, EncodedDatabase)
        if numpy_available():
            assert extended.shared_dictionary.values == [1, 2, 9]
            # ... without stealing the original's mirrors: db1's
            # relations must keep pointing at db1's dictionary.
            assert (
                database.relations["R"]._columnar.dictionary
                is database.shared_dictionary
            )

    def test_lazy_prefix_is_consumed_once(self):
        query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        session = AccessSession(
            random_database_for(query, random.Random(10))
        )
        access = session.access(
            query, order=["y", "x", "z"], prefix=iter(["y"])
        )
        assert list(access.order) == ["y", "x", "z"]


class TestThreadSafety:
    """ROADMAP follow-up: cache mutation is guarded by an RLock and
    SessionStats snapshots are atomic."""

    def test_concurrent_requests_one_preprocessing_pass(self):
        import threading

        query = parse_query(STAR)
        session = AccessSession(star_database(), capacity=None)
        # Sibling orders: same decomposition, one bag-materialization
        # pass total no matter how the threads interleave.
        orders = [
            ["x", "y", "z", "w"],
            ["x", "w", "z", "y"],
            ["x", "z", "y", "w"],
            None,
        ]
        errors: list[BaseException] = []
        counts: list[int] = []

        def worker(order):
            try:
                for _ in range(4):
                    access = session.access(query, order=order)
                    counts.append(len(access))
                    snapshot = session.cache_stats()
                    # Atomic snapshot: work counters can never run
                    # ahead of the requests that caused them.
                    assert (
                        snapshot["bag_materializations"]
                        <= 4 * snapshot["requests"]
                    )
            except BaseException as error:  # noqa: BLE001 (collected)
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(order,))
            for order in orders * 4
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(set(counts)) == 1
        stats = session.cache_stats()
        assert stats["requests"] == 4 * len(threads)
        # The lock serializes building: the decomposition is shared, so
        # exactly one preprocessing pass happened (4 bags).
        assert stats["bag_materializations"] == 4

    def test_snapshot_is_a_plain_copy(self):
        session = AccessSession(star_database())
        first = session.cache_stats()
        session.access(parse_query(STAR), order=["x", "y", "z", "w"])
        second = session.cache_stats()
        assert first["requests"] == 0  # unaffected by later mutation
        assert second["requests"] == 1

    def test_use_engine_scope_does_not_deadlock_with_session_lock(self):
        """Regression: use_engine is thread-local (lock-free), so a
        thread serving inside a use_engine scope and a thread serving
        directly can never deadlock on lock order."""
        import threading

        from repro import use_engine

        query = parse_query(STAR)
        session = AccessSession(star_database(), capacity=None)
        errors: list[BaseException] = []
        done = threading.Event()

        def scoped():
            try:
                for index in range(10):
                    with use_engine("python"):
                        order = ["x", "y", "z", "w"]
                        order[1 + index % 3], order[1] = (
                            order[1], order[1 + index % 3],
                        )
                        session.access(query, order=order)
            except BaseException as error:  # noqa: BLE001 (collected)
                errors.append(error)

        def direct():
            try:
                for _ in range(10):
                    session.access(query, order=["x", "y", "z", "w"])
            except BaseException as error:  # noqa: BLE001 (collected)
                errors.append(error)

        threads = [
            threading.Thread(target=scoped, daemon=True),
            threading.Thread(target=direct, daemon=True),
            threading.Thread(target=scoped, daemon=True),
            threading.Thread(target=direct, daemon=True),
        ]
        for thread in threads:
            thread.start()

        def joiner():
            for thread in threads:
                thread.join()
            done.set()

        threading.Thread(target=joiner, daemon=True).start()
        assert done.wait(timeout=30), "threads deadlocked"
        assert not errors
