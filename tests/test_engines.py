"""Cross-engine differential tests.

Hypothesis-style randomized (seeded) queries and databases asserting
that the Python and numpy engines are observationally identical: same
answer counts, same ``answer_at`` results, same enumeration order, same
relational-operator outputs.  Skipped numpy legs degrade to a Python
self-consistency check when numpy is unavailable.
"""

from __future__ import annotations

import itertools
import random
import zlib

import pytest

from repro import (
    AccessSession,
    Database,
    DirectAccess,
    OutOfBoundsError,
    Relation,
    VariableOrder,
    parse_query,
)
from repro.data.columnar import numpy_available
from repro.engine import (
    available_engines,
    get_engine,
    set_engine,
    use_engine,
)
from repro.errors import EngineError
from repro.joins.generic_join import evaluate, generic_join
from repro.joins.operators import Table

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

QUERIES = [
    "Q(x, y, z) :- R(x, y), S(y, z)",
    "Q(x, y, z) :- R(x, y), S(y, z), T(z, x)",
    "Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d)",
    "Q(x, y) :- R(x, y), S(y, x)",
    "Q(x, y, z, w) :- R(x, y), S(y, z), T(z, w), U(w, x)",
    "Q(x, y) :- R(x, x, y)",
    "Q(x, y, z) :- R(x, y), R(y, z)",
    "Q(u, v, w) :- R(u), S(u, v), T(u, v, w)",
]


def random_database(query, rng, max_rows=14, max_value=5):
    relations = {}
    for symbol in query.relation_symbols:
        arity = query.arity_of(symbol)
        tuples = {
            tuple(rng.randint(0, max_value) for _ in range(arity))
            for _ in range(rng.randint(0, max_rows))
        }
        relations[symbol] = Relation(tuples, arity=arity)
    return Database(relations)


def direct_access_observation(query, order, database, projected):
    access = DirectAccess(query, order, database, projected=projected)
    count = len(access)
    enumeration = [access.tuple_at(i) for i in range(count)]
    batch = access.answers_at(range(count))
    sample = (
        access.answers_at([-1, 0, count // 2]) if count else []
    )
    return count, enumeration, batch, sample


@needs_numpy
@pytest.mark.parametrize("query_text", QUERIES)
def test_direct_access_differential(query_text):
    """len / answer_at / enumeration order agree across engines."""
    query = parse_query(query_text)
    rng = random.Random(zlib.crc32(query_text.encode()))
    for _ in range(8):
        database = random_database(query, rng)
        order = VariableOrder(
            rng.choice(list(itertools.permutations(query.variables)))
        )
        observations = {}
        for engine in ("python", "numpy"):
            with use_engine(engine):
                observations[engine] = direct_access_observation(
                    query, order, database, frozenset()
                )
        assert observations["python"] == observations["numpy"], (
            f"engines disagree on {query_text} / {list(order)}"
        )


@needs_numpy
@pytest.mark.parametrize("query_text", QUERIES)
def test_session_differential(query_text):
    """Session-served access (cold and warm) agrees across engines.

    Each engine gets its own session over the same database; every
    request is served twice — the repeat must come from the cache and
    still observe identical answers, so this differentially tests the
    cache layers, not just the engines.
    """
    query = parse_query(query_text)
    rng = random.Random(zlib.crc32(b"session:" + query_text.encode()))
    database = random_database(query, rng)
    orders = [
        VariableOrder(
            rng.choice(list(itertools.permutations(query.variables)))
        )
        for _ in range(3)
    ]
    observations = {}
    for engine in ("python", "numpy"):
        session = AccessSession(database, engine=engine)
        trace = []
        for order in orders + orders:  # second half: warm requests
            access = session.access(query, order=order)
            trace.append(
                (
                    len(access),
                    [access.tuple_at(i) for i in range(len(access))],
                    access.answers_at(range(len(access))),
                )
            )
        trace.append(session.stats.bag_materializations)
        observations[engine] = trace
    assert observations["python"] == observations["numpy"], (
        f"sessions disagree on {query_text}"
    )


@needs_numpy
def test_direct_access_projected_differential():
    """Theorem 50 projected suffixes agree across engines."""
    query = parse_query("Q(x, y, z, w) :- R(x, y), S(y, z), T(z, w)")
    order = VariableOrder(["x", "y", "z", "w"])
    rng = random.Random(99)
    for _ in range(10):
        database = random_database(query, rng, max_value=3)
        for projected in ({"w"}, {"z", "w"}, {"y", "z", "w"}):
            observations = {}
            for engine in ("python", "numpy"):
                with use_engine(engine):
                    observations[engine] = direct_access_observation(
                        query, order, database, frozenset(projected)
                    )
            assert observations["python"] == observations["numpy"]


@needs_numpy
def test_table_operators_differential():
    """project / select / semijoin / join / sort agree across engines."""
    rng = random.Random(2022)
    names = ["a", "b", "c", "d"]
    for trial in range(150):
        k1, k2 = rng.randint(1, 3), rng.randint(1, 3)
        schema1, schema2 = rng.sample(names, k1), rng.sample(names, k2)
        top = rng.randint(0, 5)
        rows1 = {
            tuple(rng.randint(0, top) for _ in range(k1))
            for _ in range(rng.randint(0, 12))
        }
        rows2 = {
            tuple(rng.randint(0, top) for _ in range(k2))
            for _ in range(rng.randint(0, 12))
        }
        onto = tuple(rng.sample(schema1, rng.randint(1, k1)))
        constant = rng.randint(0, top)
        observed = {}
        for engine in ("python", "numpy"):
            with use_engine(engine):
                left = Table(schema1, set(rows1))
                right = Table(schema2, set(rows2))
                observed[engine] = (
                    left.semijoin(right).rows,
                    left.natural_join(right).rows,
                    left.project(onto).rows,
                    left.select({schema1[0]: constant}).rows,
                    tuple(left.sorted_rows()),
                )
        assert observed["python"] == observed["numpy"], (
            f"trial {trial}: {schema1} {sorted(rows1)} vs "
            f"{schema2} {sorted(rows2)}"
        )


@needs_numpy
def test_generic_join_differential():
    """Worst-case-optimal join materialization agrees across engines."""
    rng = random.Random(7)
    for _ in range(40):
        top = rng.randint(1, 5)
        tables_spec = [
            (("x", "y"), rng.randint(0, 15)),
            (("y", "z"), rng.randint(0, 15)),
            (("z", "x"), rng.randint(0, 15)),
        ]
        rows = [
            {
                (rng.randint(0, top), rng.randint(0, top))
                for _ in range(n)
            }
            for _, n in tables_spec
        ]
        results = {}
        for engine in ("python", "numpy"):
            with use_engine(engine):
                tables = [
                    Table(schema, set(r))
                    for (schema, _), r in zip(tables_spec, rows)
                ]
                results[engine] = generic_join(
                    tables, ["x", "y", "z"]
                ).rows
        assert results["python"] == results["numpy"]


@needs_numpy
def test_numpy_engine_falls_back_on_incomparable_domains():
    """Cross-column str/int domains can't be dictionary-encoded in one
    order; the numpy engine must degrade to Python semantics, not crash."""
    query = parse_query("Q(x, y) :- R(x, y), S(y)")
    database = Database(
        {
            "R": Relation({(1, "u"), (2, "v"), (3, "u")}, arity=2),
            "S": Relation({("u",)}, arity=1),
        }
    )
    order = VariableOrder(["x", "y"])
    observations = {}
    for engine in ("python", "numpy"):
        with use_engine(engine):
            observations[engine] = direct_access_observation(
                query, order, database, frozenset()
            )
    assert observations["python"] == observations["numpy"]
    assert observations["python"][0] == 2


@needs_numpy
def test_evaluate_differential_matches_python():
    query = parse_query("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
    rng = random.Random(5)
    database = random_database(query, rng, max_rows=25, max_value=6)
    with use_engine("python"):
        expected = evaluate(query, database)
    with use_engine("numpy"):
        assert evaluate(query, database) == expected


def test_answers_at_matches_answer_at_per_engine():
    query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
    database = Database(
        {
            "R": {(1, 2), (3, 2), (3, 4)},
            "S": {(2, 7), (2, 9), (4, 1)},
        }
    )
    order = VariableOrder(["x", "y", "z"])
    for engine in available_engines():
        with use_engine(engine):
            access = DirectAccess(query, order, database)
            everything = access.answers_at(range(len(access)))
            assert everything == [
                access.answer_at(i) for i in range(len(access))
            ]
            assert access.answers_at([]) == []
            assert access.answers_at([-1]) == [
                access.answer_at(len(access) - 1)
            ]
            with pytest.raises(OutOfBoundsError):
                access.answers_at([0, len(access)])
            with pytest.raises(OutOfBoundsError):
                access.answers_at([-len(access) - 1])


def test_engine_registry():
    assert "python" in available_engines()
    previous = get_engine()
    try:
        engine = set_engine("python")
        assert engine.name == "python"
        assert get_engine() is engine
        with pytest.raises(EngineError):
            set_engine("no-such-engine")
        if numpy_available():
            with use_engine("numpy") as numpy_engine:
                assert numpy_engine.name == "numpy"
                assert get_engine() is numpy_engine
            assert get_engine() is engine
    finally:
        set_engine(previous)


def test_direct_access_reports_engine_name():
    query = parse_query("Q(x, y) :- R(x, y)")
    database = Database({"R": {(1, 2)}})
    for engine in available_engines():
        with use_engine(engine):
            access = DirectAccess(
                query, VariableOrder(["x", "y"]), database
            )
        assert access.engine_name == engine
        # Built structures keep working after the engine is switched.
        assert access.tuple_at(0) == (1, 2)
        assert access.answers_at([0]) == [{"x": 1, "y": 2}]


@needs_numpy
def test_large_counts_do_not_overflow():
    """Weights beyond int64 must widen to Python big ints, not wrap."""
    # A cross product of unary relations: 500**7 ≈ 7.8e18 answers sits
    # between the engine's 2**62 overflow guard and the 2**63 - 1 cap of
    # the ``len`` protocol, so the numpy engine must widen the affected
    # bags' weight columns (batch access still walks via Python).
    variables = [f"v{i}" for i in range(7)]
    atoms = ", ".join(f"R{i}({v})" for i, v in enumerate(variables))
    query = parse_query(f"Q({', '.join(variables)}) :- {atoms}")
    database = Database(
        {
            f"R{i}": Relation(
                {(j,) for j in range(500)}, arity=1
            )
            for i in range(7)
        }
    )
    order = VariableOrder(variables)
    expected_total = 500**7  # > 2**62, below the len() cap
    observations = {}
    for engine in ("python", "numpy"):
        with use_engine(engine):
            access = DirectAccess(query, order, database)
            observations[engine] = (
                len(access),
                access.tuple_at(0),
                access.tuple_at(expected_total - 1),
                access.answers_at([0, expected_total - 1]),
            )
    assert observations["python"][0] == expected_total
    assert observations["python"] == observations["numpy"]


@needs_numpy
def test_overflow_weights_stay_vectorized():
    """Regression pin just above the int64 overflow threshold: the
    counting-forest build must widen its weight column (object dtype)
    instead of silently dropping to the per-bag Python fallback —
    every bag of the numpy-built forest keeps its columnar mirror."""
    import numpy as np

    # A complete-bipartite path: subtree totals multiply level by
    # level (m, m**2, ..., m**6), so the top bags' weight bounds cross
    # the 2**62 ≈ 4.6e18 guard while the total, 500**7 ≈ 7.8e18,
    # stays below the 2**63 - 1 cap of the ``len`` protocol.  Unlike
    # the cross-product test above, the bags *nest*, which is what
    # makes the per-bag weight arithmetic itself overflow-prone.
    m, levels = 500, 7
    variables = [f"v{i}" for i in range(levels)]
    atoms = ", ".join(
        f"R{i}({variables[i]}, {variables[i + 1]})"
        for i in range(levels - 1)
    )
    query = parse_query(f"Q({', '.join(variables)}) :- {atoms}")
    pairs = {(a, b) for a in range(m) for b in range(m)}
    database = Database(
        {
            f"R{i}": Relation(set(pairs), arity=2)
            for i in range(levels - 1)
        }
    )
    with use_engine("numpy"):
        access = DirectAccess(
            query, VariableOrder(variables), database
        )
    total = m**levels
    assert total > 2**62  # really sits above the overflow guard
    assert len(access) == total
    # The pin: no bag fell back to the Python build (a fallback leaves
    # aux=None), and the widened bags really are object-dtype.
    auxes = [index.aux for index in access._indexes]
    assert all(aux is not None for aux in auxes)
    assert any(
        aux.weights_flat.dtype == np.dtype(object) for aux in auxes
    )
    # ... and the arithmetic is exact at both ends.
    top = tuple([m - 1] * levels)
    assert access.tuple_at(0) == tuple([0] * levels)
    assert access.tuple_at(total - 1) == top
    assert access.rank_of(top) == total - 1


@needs_numpy
def test_object_dtype_child_propagates_to_int64_parent():
    """Regression: a parent bag whose own bound fits int64 must widen
    anyway when a child's totals are object dtype — multiplying object
    totals into an int64 weight column is a numpy casting error."""
    import numpy as np

    from repro.engine.numpy_engine import NumpyEngine
    from repro.joins.operators import Table

    engine = NumpyEngine()
    child_table = Table(("y", "z"), {(1, 2), (1, 3), (2, 2)})
    child = engine.build_bag_index(child_table, [], False)
    # Simulate a child built under the overflow guard (its bound is
    # conservative; after a selective join its exact totals can be
    # small while the dtype stays object).
    child.aux.weights_flat = child.aux.weights_flat.astype(object)
    child.aux.totals = child.aux.totals.astype(object)
    child.aux.cum_before = child.aux.cum_before.astype(object)
    parent_table = Table(("x", "y"), {(0, 1), (0, 2), (5, 1)})
    parent = engine.build_bag_index(parent_table, [(child, [1])], False)
    assert parent.aux is not None
    assert parent.aux.weights_flat.dtype == np.dtype(object)
    assert parent.totals[(0,)] == 3  # y=1 weighs 2, y=2 weighs 1
    assert parent.totals[(5,)] == 2


# -- live mutations (cross-engine differential) ---------------------------


def random_delta(rng, database, max_value=9):
    """A random per-relation insert/delete workload step."""
    from repro import Delta

    inserts: dict = {}
    deletes: dict = {}
    for name, relation in database.relations.items():
        if rng.random() < 0.4:
            continue
        inserts[name] = {
            tuple(
                rng.randint(0, max_value)
                for _ in range(relation.arity)
            )
            for _ in range(rng.randint(0, 3))
        }
        existing = sorted(relation.tuples)
        if existing and rng.random() < 0.5:
            deletes[name] = set(
                rng.sample(
                    existing,
                    rng.randint(1, min(3, len(existing))),
                )
            )
    return Delta(inserts=inserts, deletes=deletes)


@needs_numpy
@pytest.mark.parametrize("query_text", QUERIES[:5])
def test_mutation_differential(query_text):
    """Random insert/delete workloads: the incremental path must equal
    a from-scratch database, per engine and across engines."""
    from repro import connect

    query = parse_query(query_text)
    rng = random.Random(zlib.crc32(b"delta:" + query_text.encode()))
    base = random_database(query, rng)
    order = VariableOrder(
        rng.choice(list(itertools.permutations(query.variables)))
    )
    connections = {
        engine: connect(
            Database(
                {
                    name: set(rel.tuples)
                    for name, rel in base.relations.items()
                }
            ),
            engine=engine,
        )
        for engine in ("python", "numpy")
    }
    database = base
    for step in range(6):
        delta = random_delta(rng, database, max_value=9 + step)
        database = database.apply(delta)
        observed = {}
        for engine, conn in connections.items():
            conn.apply(delta)
            observed[engine] = list(conn.prepare(query, order=order))
        with use_engine("python"):
            scratch = list(
                DirectAccess(query, order, database).answers_at(
                    range(
                        len(DirectAccess(query, order, database))
                    )
                )
            )
        scratch_rows = [
            tuple(answer[v] for v in order) for answer in scratch
        ]
        assert observed["python"] == scratch_rows, (
            f"incremental != rebuild on {query_text} step {step}"
        )
        assert observed["python"] == observed["numpy"], (
            f"engines disagree on {query_text} step {step}"
        )


@needs_numpy
def test_dictionary_extension_never_renumbers_existing_codes():
    """Property: however a random append-only workload grows the
    domain, the shared dictionary's existing codes are stable and the
    mirrors keep sharing it by identity."""
    from repro import Delta, EncodedDatabase

    rng = random.Random(99)
    database = EncodedDatabase(
        {"R": {(1, 2), (3, 2)}, "S": {(2, 7)}}
    )
    ceiling = 10  # new values always above everything seen: appendable
    for _ in range(15):
        ceiling += rng.randint(1, 5)
        name = rng.choice(["R", "S"])
        arity = database[name].arity
        rows = {
            tuple(
                rng.randint(ceiling - 1, ceiling)
                for _ in range(arity)
            )
            for _ in range(rng.randint(1, 2))
        }
        snapshot = dict(database.shared_dictionary._code)
        out = database.apply(Delta(inserts={name: rows}))
        assert out.encoded_incrementally
        assert out.shared_dictionary is database.shared_dictionary
        for value, code in snapshot.items():
            assert out.shared_dictionary._code[value] == code
        for rel in out.relations.values():
            assert (
                rel._columnar.dictionary is out.shared_dictionary
            )
        database = out


# -- AnswerView Sequence / round-trip laws (cross-engine) -----------------


class TestSequenceLaws:
    """Property tests for the facade's Sequence semantics.

    For random queries/databases, on every available engine:
    ``view[view.rank(t)] == t`` round-trips for all answers,
    ``list(view[a:b]) == list(view)[a:b]`` for slices including
    negative indices and steps, ``reversed(view)`` agrees with the
    sorted answer list, and the engines observe identical views.
    """

    @staticmethod
    def slices_for(n: int) -> list[slice]:
        return [
            slice(None),
            slice(1, n),
            slice(None, None, 2),
            slice(None, None, -1),
            slice(-3, None),
            slice(n, None, -2),
            slice(2, -1),
            slice(-1, 0, -3),
            slice(n + 5, None),
            slice(None, n // 2),
        ]

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_view_laws(self, query_text):
        import collections.abc

        from repro import NotAnAnswerError, connect
        from repro.facade import AnswerView
        from tests.conftest import lex_answers

        query = parse_query(query_text)
        rng = random.Random(zlib.crc32(b"laws:" + query_text.encode()))
        database = random_database(query, rng)
        order = VariableOrder(
            rng.choice(list(itertools.permutations(query.variables)))
        )
        per_engine = {}
        for engine in available_engines():
            view = connect(database, engine=engine).prepare(
                query, order=order
            )
            assert isinstance(view, collections.abc.Sequence)
            full = list(view)
            n = len(full)
            # The view is the lexicographically sorted answer list ...
            assert full == lex_answers(query, database, order)
            # ... reversal agrees with it ...
            assert list(reversed(view)) == full[::-1]
            # ... slices (negative / stepped / nested) are lazy views
            # observing exactly Python's slice semantics ...
            for sl in self.slices_for(n):
                sub = view[sl]
                assert isinstance(sub, AnswerView)
                assert list(sub) == full[sl]
                assert list(reversed(sub)) == full[sl][::-1]
                half = slice(1, None, 2)
                assert list(sub[half]) == full[sl][half]
            # ... ranks round-trip for every answer ...
            assert view.ranks(full) == list(range(n))
            for index, answer in enumerate(full):
                assert view.rank(answer) == index
                assert view[view.rank(answer)] == answer
                assert answer in view
            # ... and non-answers are cleanly rejected.
            fake = tuple(99 for _ in order)
            assert fake not in view
            if n:
                with pytest.raises(NotAnAnswerError):
                    view.rank(fake)
            per_engine[engine] = full
        reference = per_engine["python"]
        for engine, full in per_engine.items():
            assert full == reference, f"{engine} view disagrees"
