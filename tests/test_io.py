"""Tests for CSV relation/database persistence."""

import pytest

from repro.data.database import Database
from repro.data.io import (
    load_database,
    load_relation,
    save_database,
    save_relation,
)
from repro.data.relation import Relation
from repro.errors import DatabaseError


class TestLoad:
    def test_roundtrip(self, tmp_path):
        relation = Relation({(1, 2), (3, 4), (1, 9)})
        path = tmp_path / "r.csv"
        save_relation(relation, path)
        assert load_relation(path) == relation

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("# header\n\n1,2\n\n# trailing\n3,4\n")
        assert len(load_relation(path)) == 2

    def test_string_values(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("alice,7\nbob,3\n")
        relation = load_relation(path)
        assert ("alice", 7) in relation

    def test_ragged_rows_rejected_with_arity(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("1,2\n3\n")
        with pytest.raises(DatabaseError):
            load_relation(path, arity=2)

    def test_empty_without_arity_rejected(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("\n")
        with pytest.raises(DatabaseError):
            load_relation(path)
        assert len(load_relation(path, arity=3)) == 0


class TestDatabaseRoundtrip:
    def test_save_and_load(self, tmp_path):
        database = Database(
            {"R": {(1, 2), (3, 4)}, "S": {(5,), (6,)}}
        )
        paths = save_database(database, tmp_path / "db")
        assert set(paths) == {"R", "S"}
        loaded = load_database(paths)
        assert loaded == database

    def test_empty_relation_file_written(self, tmp_path):
        database = Database({"R": Relation([], arity=2)})
        paths = save_database(database, tmp_path)
        assert paths["R"].read_text() == ""
