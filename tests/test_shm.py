"""The shared-memory artifact plane (:mod:`repro.server.shm`).

Lifecycle law under test: a publication's segments exist from
``publish`` until it is *retired* **and** its last holder released —
then they are unlinked, and ``SharedArtifactPlane.close()`` unlinks
everything unconditionally.  All checks attach by name instead of
listing ``/dev/shm`` so they hold on any POSIX shm backend.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.data.database import EncodedDatabase
from repro.data.flatbuf import database_from_buffers, database_to_buffers
from repro.server.shm import (
    AttachedSegments,
    SharedArtifactPlane,
    _raw,
    plane_prefix,
    publish_from_worker,
    stable_token,
    unlink_publication,
)


def segment_exists(name: str) -> bool:
    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


def segments_of(publication) -> list[str]:
    return [segment for _buffer, segment in publication.segments]


@pytest.fixture()
def plane():
    plane = SharedArtifactPlane()
    yield plane
    plane.close()


BUFFERS = {
    "ints": np.arange(64, dtype=np.int64),
    "bytes": np.frombuffer(b"hello shm", dtype=np.uint8).copy(),
    "empty": np.empty(0, dtype=np.int64),
}


class TestTokens:
    def test_stable_token_is_short_hex(self):
        token = stable_token(("forest", ("R", "S"), 3))
        assert len(token) == 16
        assert all(c in "0123456789abcdef" for c in token)

    def test_stable_token_ignores_set_iteration_order(self):
        # frozensets are canonicalized by sorted repr, so the digest
        # is identical across processes with different hash seeds.
        a = stable_token(("k", frozenset({"x", "y", "z"})))
        b = stable_token(("k", frozenset({"z", "y", "x"})))
        assert a == b

    def test_stable_token_separates_keys(self):
        assert stable_token(("k", 1)) != stable_token(("k", 2))
        assert stable_token("1") != stable_token(1)

    def test_plane_prefix_is_tracker_safe(self):
        # The resource tracker's wire format is colon-delimited;
        # names must stay in [A-Za-z0-9_].
        prefix = plane_prefix()
        assert all(c.isalnum() or c == "_" for c in prefix)


class TestRaw:
    def test_plain_array_is_zero_copy(self):
        array = np.arange(8, dtype=np.int32)
        view = _raw(array)
        assert view.nbytes == array.nbytes
        assert bytes(view) == array.tobytes()

    def test_empty_array(self):
        assert _raw(np.empty(0, dtype=np.int64)).nbytes == 0

    def test_non_contiguous_array_copies(self):
        array = np.arange(10, dtype=np.int64)[::2]
        assert not array.flags["C_CONTIGUOUS"] or array.base is not None
        assert bytes(_raw(array)) == array.tobytes()


class TestPublishAttach:
    def test_attach_sees_published_bytes(self, plane):
        publication = plane.publish("db:0", {"m": True}, BUFFERS)
        assert publication.nbytes == sum(
            a.nbytes for a in BUFFERS.values()
        )
        attached = AttachedSegments(publication)
        try:
            for name, array in BUFFERS.items():
                got = np.frombuffer(
                    attached.views[name], dtype=array.dtype,
                    count=len(array),
                )
                assert np.array_equal(got, array)
        finally:
            attached.close()

    def test_publish_is_idempotent_per_token(self, plane):
        first = plane.publish("db:0", None, BUFFERS)
        second = plane.publish("db:0", None, BUFFERS)
        assert second is first
        assert plane.counters.as_dict()["publications"] == 1

    def test_attach_close_does_not_unlink(self, plane):
        publication = plane.publish("db:0", None, BUFFERS)
        AttachedSegments(publication).close()
        assert all(segment_exists(s) for s in segments_of(publication))

    def test_closed_plane_refuses_publish(self):
        plane = SharedArtifactPlane()
        plane.close()
        with pytest.raises(RuntimeError):
            plane.publish("db:0", None, BUFFERS)


class TestRefcounts:
    def test_unlink_waits_for_retire_and_last_release(self, plane):
        publication = plane.publish("db:0", None, BUFFERS)
        names = segments_of(publication)
        assert plane.acquire("db:0", "w0") is publication
        assert plane.acquire("db:0", "w1") is publication

        plane.retire("db:0")  # superseded, but two holders remain
        assert all(segment_exists(s) for s in names)
        assert plane.lookup("db:0") is None  # no longer handed out
        assert plane.acquire("db:0", "w2") is None

        plane.release("db:0", "w0")
        assert all(segment_exists(s) for s in names)
        plane.release("db:0", "w1")  # last holder out -> unlink
        assert not any(segment_exists(s) for s in names)
        assert plane.counters.as_dict()["unlinks"] == len(names)

    def test_release_without_retire_keeps_segments(self, plane):
        publication = plane.publish("db:0", None, BUFFERS)
        plane.acquire("db:0", "w0")
        plane.release("db:0", "w0")
        assert all(segment_exists(s) for s in segments_of(publication))

    def test_release_holder_drops_every_reference(self, plane):
        one = plane.publish("db:0", None, BUFFERS)
        two = plane.publish("forest:0:abc", None, BUFFERS)
        plane.acquire("db:0", "w0")
        plane.acquire("forest:0:abc", "w0")
        plane.retire("db:0")
        plane.retire("forest:0:abc")
        plane.release_holder("w0")  # crash/respawn path
        for publication in (one, two):
            assert not any(
                segment_exists(s) for s in segments_of(publication)
            )
        assert plane.tokens() == []

    def test_close_unlinks_despite_holders(self):
        plane = SharedArtifactPlane()
        publication = plane.publish("db:0", None, BUFFERS)
        plane.acquire("db:0", "w0")
        plane.close()
        assert not any(
            segment_exists(s) for s in segments_of(publication)
        )
        assert plane.live_segments() == []


class TestWorkerPublications:
    def test_names_are_tracker_safe(self, plane):
        # Worker tokens contain ':'; none of it may reach the name.
        publication = publish_from_worker(
            plane.prefix, "forest:s1:3:deadbeef", None, BUFFERS
        )
        try:
            for segment in segments_of(publication):
                assert all(c.isalnum() or c == "_" for c in segment)
        finally:
            unlink_publication(publication)

    def test_adopt_registers_and_close_unlinks(self, plane):
        publication = publish_from_worker(
            plane.prefix, "forest:0:aa", None, BUFFERS
        )
        assert plane.adopt(publication, holder="w0") is True
        assert plane.lookup("forest:0:aa") is publication
        assert plane.acquire("forest:0:aa", "w1") is publication
        plane.close()
        assert not any(
            segment_exists(s) for s in segments_of(publication)
        )

    def test_adopt_race_loser_unlinks_its_copy(self, plane):
        winner = publish_from_worker(
            plane.prefix, "forest:0:aa", None, BUFFERS
        )
        # Racing workers are distinct processes; distinct prefixes
        # stand in for their distinct pids in the segment names.
        loser = publish_from_worker(
            plane.prefix + "_b", "forest:0:aa", None, BUFFERS
        )
        assert plane.adopt(winner, holder="w0") is True
        assert plane.adopt(loser, holder="w1") is False
        unlink_publication(loser)  # the contract on a False return
        assert not any(segment_exists(s) for s in segments_of(loser))
        assert all(segment_exists(s) for s in segments_of(winner))


class TestDatabaseRoundtrip:
    def test_database_survives_the_plane(self, plane):
        database = EncodedDatabase(
            {
                "R": {(1, 2), (3, 2), (3, 4)},
                "S": {(2, 7), (2, 9), (4, 1)},
            }
        )
        flat = database_to_buffers(database)
        assert flat is not None
        manifest, buffers = flat
        publication = plane.publish("db:0", manifest, buffers)
        attached = AttachedSegments(publication)
        try:
            rebuilt = database_from_buffers(manifest, attached.views)
            for name in ("R", "S"):
                assert sorted(rebuilt[name].sorted_tuples()) == sorted(
                    database[name].sorted_tuples()
                )
        finally:
            attached.close()
