"""Tests for the Section 7 verdict API."""

from fractions import Fraction

from repro.core.classify import classify
from repro.query.catalog import (
    example5_order,
    example5_query,
    example18_query,
    path_query,
    running_selfjoin_query,
    star_bad_order,
    star_good_order,
    star_query,
)
from repro.query.variable_order import VariableOrder


class TestVerdicts:
    def test_tractable_pair(self):
        verdict = classify(star_query(2), star_good_order(2))
        assert verdict.iota == 1
        assert verdict.tractable
        assert verdict.disruptive_trio is None
        assert "unconditional" in verdict.lower_bound

    def test_acyclic_hard_pair_cites_3sum(self):
        verdict = classify(star_query(2), star_bad_order(2))
        assert verdict.iota == 2
        assert not verdict.tractable
        assert "3SUM" in verdict.assumption

    def test_example5(self):
        verdict = classify(example5_query(), example5_order())
        assert verdict.iota == 3
        assert verdict.acyclic
        assert verdict.disruptive_trio is not None
        assert "Zero-Clique" in verdict.assumption

    def test_example18_fractional(self):
        verdict = classify(example18_query(), example5_order())
        assert verdict.iota == Fraction(3, 2)
        assert not verdict.acyclic
        assert verdict.disruptive_trio is None

    def test_selfjoins_do_not_change_the_verdict(self):
        from repro.query.transforms import self_join_free_version

        query = running_selfjoin_query()
        order = VariableOrder(["x", "y", "z"])
        with_sj = classify(query, order)
        without = classify(self_join_free_version(query), order)
        assert with_sj.iota == without.iota
        assert with_sj.tractable == without.tractable
        assert not with_sj.selfjoins_relevant

    def test_summary_is_readable(self):
        verdict = classify(
            path_query(2), VariableOrder(["x1", "x2", "x3"])
        )
        text = verdict.summary()
        assert "ι = 1" in text
        assert "Theorem 10" in text
