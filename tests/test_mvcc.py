"""MVCC snapshot retention (:mod:`repro.session.mvcc`).

The keep-serving contract, bottom-up: the :class:`SnapshotPlane`'s
window/refcount mechanics, the store's version-pinned reads and
artifact garbage collection, and the facade-level acceptance
criterion — a view prepared at version N keeps answering (full
``Sequence`` semantics plus rank round-trips) after two mutations
while fresh prepares see N+2 — on every engine.
"""

from __future__ import annotations

import gc

import pytest

import repro
from repro import Database, Delta, StaleViewError, connect
from repro.session import ArtifactStore, DEFAULT_RETAIN, SnapshotPlane

PATH = "Q(x, y, z) :- R(x, y), S(y, z)"
RELATIONS = {
    "R": {(1, 2), (3, 2), (3, 4)},
    "S": {(2, 7), (2, 9), (4, 1)},
}


def fresh_database() -> Database:
    return Database({name: set(rows) for name, rows in RELATIONS.items()})


def db(n: int) -> Database:
    return Database({"R": {(n, n)}})


class TestSnapshotPlane:
    def test_window_retains_the_last_k_versions(self):
        plane = SnapshotPlane(retain=2)
        assert plane.record(0, db(0)) == []
        assert plane.record(1, db(1)) == []
        assert plane.record(2, db(2)) == [0]
        assert plane.versions() == (1, 2)
        assert plane.get(1) == db(1)
        assert plane.get(0) is None
        assert 0 not in plane and 2 in plane
        assert plane.snapshots_evicted == 1

    def test_pin_extends_lifetime_beyond_the_window(self):
        plane = SnapshotPlane(retain=1)
        plane.record(0, db(0))
        assert plane.pin(0)
        assert plane.record(1, db(1)) == []  # pinned: not evicted
        assert plane.get(0) == db(0)
        # Second pin on the same version: last release is the trigger.
        assert plane.pin(0)
        assert not plane.release(0)
        assert 0 in plane
        assert plane.release(0)  # last view closed ...
        assert 0 not in plane  # ... and the out-of-window version died
        assert plane.versions() == (1,)

    def test_pin_of_an_evicted_version_fails(self):
        plane = SnapshotPlane(retain=1)
        plane.record(0, db(0))
        plane.record(1, db(1))
        assert not plane.pin(0)
        assert not plane.release(0)  # over-release is harmless

    def test_in_window_release_keeps_the_snapshot(self):
        plane = SnapshotPlane(retain=4)
        plane.record(0, db(0))
        plane.pin(0)
        assert plane.release(0)
        assert 0 in plane  # still inside the window

    def test_counters(self):
        plane = SnapshotPlane(retain=2)
        plane.record(0, db(0))
        plane.pin(0)
        plane.record(1, db(1))
        counters = plane.counters()
        assert counters["retained"] == 2
        assert counters["retain_limit"] == 2
        assert counters["pinned_versions"] == 1
        assert counters["open_views"] == 1
        assert counters["views_pinned"] == 1
        assert counters["views_released"] == 0


class TestStoreMVCC:
    def test_database_at_resolves_head_and_snapshots(self):
        store = ArtifactStore(fresh_database())
        head = store.database
        store.apply(Delta(inserts={"R": {(9, 9)}}))
        assert store.database_at(1) is store.database
        assert store.database_at(0) == head
        with pytest.raises(StaleViewError, match="evicted"):
            store.database_at(99)

    def test_strict_views_refuse_non_head_versions(self):
        store = ArtifactStore(fresh_database(), strict_views=True)
        store.apply(Delta(inserts={"R": {(9, 9)}}))
        assert store.is_readable(1)
        assert not store.is_readable(0)
        with pytest.raises(StaleViewError, match="strict"):
            store.database_at(0)

    def test_window_eviction_gcs_old_artifacts(self):
        store = ArtifactStore(fresh_database(), retain_versions=1)
        session = store.session()
        session.access(PATH, order=["x", "y", "z"])  # caches at v0
        store.apply(Delta(inserts={"R": {(9, 9)}}))
        stats = store.cache_stats()
        assert stats["mvcc"]["retained"] == 1  # only the head
        assert stats["mvcc"]["snapshots_evicted"] == 1
        assert stats["artifacts_invalidated"] > 0
        assert stats["artifacts_retained"] == 0  # no open views

    def test_pinned_version_retains_artifacts_until_release(self):
        store = ArtifactStore(fresh_database(), retain_versions=1)
        session = store.session()
        session.access(PATH, order=["x", "y", "z"])
        assert store.pin_version(0)
        store.apply(Delta(inserts={"R": {(9, 9)}}))
        stats = store.cache_stats()
        assert stats["artifacts_retained"] > 0
        assert stats["artifacts_gcd"] == 0
        assert store.is_readable(0)
        store.release_version(0)  # deferred, drained at next entry
        assert not store.is_readable(0)
        assert store.cache_stats()["artifacts_gcd"] > 0

    def test_effectively_empty_delta_is_a_no_op(self):
        store = ArtifactStore(fresh_database())
        # Insert an existing row, delete an absent one: nothing changes.
        version = store.apply(
            Delta(inserts={"R": {(1, 2)}}, deletes={"S": {(0, 0)}})
        )
        assert version == 0 and store.db_version == 0
        stats = store.cache_stats()
        assert stats["noop_deltas"] == 1
        assert stats["deltas_applied"] == 0
        assert Delta().is_empty
        assert store.apply(Delta()) == 0  # literally empty: same story

    def test_worker_stores_can_start_mid_history(self):
        # A worker process attaching at the supervisor's version must
        # not restart the version counter (pins would cross wires).
        store = ArtifactStore(fresh_database(), db_version=7)
        assert store.db_version == 7
        assert store.apply(Delta(inserts={"R": {(9, 9)}})) == 8


class TestFacadeAcceptance:
    @pytest.mark.parametrize("engine", repro.available_engines())
    def test_view_at_n_survives_two_mutations(self, engine):
        """The PR's acceptance sequence: prepare at N, mutate twice,
        the pinned view still answers everything it answered at N
        while a fresh prepare sees N+2."""
        conn = connect(fresh_database(), engine=engine)
        view = conn.prepare(PATH, order=["x", "y", "z"])
        pinned_at = view.db_version
        rows = list(view)
        assert conn.apply(Delta(inserts={"R": {(9, 2)}})) == pinned_at + 1
        assert (
            conn.apply(Delta(deletes={"S": {(4, 1)}}))
            == pinned_at + 2
        )
        # Full Sequence semantics from the snapshot ...
        assert len(view) == len(rows)
        assert list(view) == rows
        assert view[0] == rows[0] and view[-1] == rows[-1]
        assert [tuple(r) for r in view[1:3]] == rows[1:3]
        assert rows[0] in view and (99, 99, 99) not in view
        # ... and rank round-trips on every answer.
        for index, row in enumerate(rows):
            assert view.rank(row) == index
            assert view[view.rank(row)] == row
        assert view.ranks(rows) == list(range(len(rows)))
        # Fresh prepares are served at the new head.
        fresh = conn.prepare(PATH, order=["x", "y", "z"])
        assert fresh.db_version == pinned_at + 2
        assert (9, 2, 7) in fresh
        assert (3, 4, 1) not in fresh

    def test_default_retention_window_is_documented(self):
        assert DEFAULT_RETAIN == 4
        conn = connect(fresh_database())
        view = conn.prepare(PATH, order=["x", "y", "z"])
        view.close()
        # With the pin dropped, the default window still covers 4
        # versions: three mutations in, version 0 remains readable ...
        for step in range(3):
            conn.insert("R", [(50 + step, 50)])
        assert len(view) == 5
        # ... and the fourth evicts it.
        conn.insert("R", [(53, 50)])
        with pytest.raises(StaleViewError):
            len(view)

    def test_closing_views_releases_their_pins(self):
        conn = connect(fresh_database(), retain_versions=1)
        with conn.prepare(PATH, order=["x", "y", "z"]) as view:
            conn.insert("R", [(9, 2)])
            assert view.db_version == 0 and len(view) == 5
        # The context manager closed the view; its snapshot is gone.
        with pytest.raises(StaleViewError):
            view[0]
        stats = conn.stats()["store"]["mvcc"]
        assert stats["views_released"] >= 1
        assert stats["open_views"] == 0

    def test_dropped_views_release_via_the_finalizer(self):
        conn = connect(fresh_database(), retain_versions=1)
        view = conn.prepare(PATH, order=["x", "y", "z"])
        conn.insert("R", [(9, 2)])
        del view
        gc.collect()
        conn.insert("R", [(10, 2)])  # any store entry drains releases
        stats = conn.stats()["store"]["mvcc"]
        assert stats["open_views"] == 0
        assert stats["retained"] == 1

    def test_connect_rejects_server_side_kwargs_for_urls(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="server-side"):
            connect("http://127.0.0.1:1/", retain_versions=2)
        with pytest.raises(ReproError, match="server-side"):
            connect("http://127.0.0.1:1/", strict_views=True)
