"""Synthetic workload generators.

The paper assumes adversarial / worst-case databases exist; these
generators construct them explicitly, along with the uniform and skewed
inputs the benchmarks sweep over. All generators take a ``seed`` and are
deterministic given it.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.query import JoinQuery


def random_database(
    query: JoinQuery,
    tuples_per_relation: int,
    domain_size: int,
    seed: int = 0,
) -> Database:
    """Uniform random tuples from ``range(domain_size)`` per relation."""
    rng = random.Random(seed)
    relations: dict[str, Relation] = {}
    for symbol in query.relation_symbols:
        arity = query.arity_of(symbol)
        rows = {
            tuple(rng.randrange(domain_size) for _ in range(arity))
            for _ in range(tuples_per_relation)
        }
        relations[symbol] = Relation(rows, arity=arity)
    return Database(relations)


def functional_path_database(
    length: int, rows: int, seed: int = 0
) -> Database:
    """Data for :func:`~repro.query.catalog.path_query` with ~linear output.

    Each binary relation ``R_i`` maps node j to a random successor, so the
    join output has exactly ``rows`` answers regardless of ``length``.
    """
    rng = random.Random(seed)
    relations = {}
    for i in range(length):
        relations[f"R{i + 1}"] = Relation(
            {(j, rng.randrange(rows)) for j in range(rows)}, arity=2
        )
    return Database(relations)


def bipartite_path_database(rows: int, fanout: int, seed: int = 0) -> Database:
    """Data for the 2-path ``R1(x1,x2), R2(x2,x3)`` with quadratic blow-up.

    ``fanout`` middle values each connect to ``rows`` left and ``rows``
    right values, so ``|D| = 2*rows*fanout`` while the output has
    ``rows^2 * fanout`` answers — the motivating case for direct access
    over materialization.
    """
    left = {(x, m) for x in range(rows) for m in range(fanout)}
    right = {(m, y) for m in range(fanout) for y in range(rows)}
    return Database({"R1": Relation(left), "R2": Relation(right)})


def star_database(
    leaves: int,
    sets: int,
    set_size: int,
    universe: int,
    seed: int = 0,
) -> Database:
    """Set-disjointness-shaped data for ``Q*_k`` (cf. Lemma 22).

    Relation ``R_i`` holds pairs ``(j, v)`` meaning ``v ∈ S_{i,j}`` for
    ``sets`` random subsets of a ``universe``-sized universe.
    """
    rng = random.Random(seed)
    relations = {}
    for i in range(leaves):
        rows = set()
        for j in range(sets):
            members = rng.sample(range(universe), min(set_size, universe))
            rows.update((j, v) for v in members)
        relations[f"R{i + 1}"] = Relation(rows, arity=2)
    return Database(relations)


def agm_worstcase_triangle_database(side: int) -> Database:
    """A worst-case instance for the triangle query ``LW_3``.

    All three relations are the complete bipartite graph on
    ``[side] x [side]``; each has ``side^2`` tuples and the output has
    ``side^3 = |R|^{3/2}`` answers, matching the AGM bound for ρ* = 3/2.
    """
    full = {(a, b) for a in range(side) for b in range(side)}
    return Database(
        {"R1": Relation(full), "R2": Relation(full), "R3": Relation(full)}
    )


def loomis_whitney_database(
    k: int, tuples_per_relation: int, domain_size: int, seed: int = 0
) -> Database:
    """Random data for ``LW_k`` (arity k-1 relations)."""
    rng = random.Random(seed)
    relations = {}
    for i in range(k):
        rows = {
            tuple(rng.randrange(domain_size) for _ in range(k - 1))
            for _ in range(tuples_per_relation)
        }
        relations[f"R{i + 1}"] = Relation(rows, arity=k - 1)
    return Database(relations)


def four_cycle_database(
    rows: int, heavy_fraction: float = 0.1, seed: int = 0
) -> Database:
    """Skewed data for the 4-cycle with both heavy and light degrees.

    A ``heavy_fraction`` of left endpoints are high-degree hubs; the rest
    have degree 1. Exercises the heavy/light split of Lemma 48.
    """
    rng = random.Random(seed)
    heavy_count = max(1, int(rows * heavy_fraction))
    hub_degree = max(2, int(rows ** 0.5))
    relations = {}
    for i in range(4):
        edges = set()
        for hub in range(heavy_count):
            for _ in range(hub_degree):
                edges.add((hub, rng.randrange(rows)))
        for light in range(heavy_count, rows):
            edges.add((light, rng.randrange(rows)))
        relations[f"R{i + 1}"] = Relation(edges, arity=2)
    return Database(relations)


def zipf_database(
    query: JoinQuery,
    tuples_per_relation: int,
    domain_size: int,
    skew: float = 1.0,
    seed: int = 0,
) -> Database:
    """Random tuples with Zipf-distributed values (rank-skewed domains)."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** skew for rank in range(domain_size)]
    population = list(range(domain_size))
    relations = {}
    for symbol in query.relation_symbols:
        arity = query.arity_of(symbol)
        rows = set()
        for _ in range(tuples_per_relation):
            rows.add(
                tuple(
                    rng.choices(population, weights=weights)[0]
                    for _ in range(arity)
                )
            )
        relations[symbol] = Relation(rows, arity=arity)
    return Database(relations)


def sizes_sweep(
    start: int, factor: float, points: int
) -> Sequence[int]:
    """A geometric size sweep for scaling experiments."""
    sizes = []
    current = float(start)
    for _ in range(points):
        sizes.append(int(round(current)))
        current *= factor
    return sizes
