"""First-class database mutations: :class:`Delta`.

The paper's model preprocesses a *static* database; the serving layer
(:mod:`repro.session`) keeps long-lived structures warm across
requests, which makes mutations a real concern: a tuple insert must
extend the shared dictionary encoding and invalidate exactly the
cached artifacts whose decomposition touches the mutated relation —
no more (stale answers) and no less (needless rebuilds).

A :class:`Delta` is the unit of that maintenance: per-relation insert
and delete sets, validated against the database they apply to.  The
application order within one delta is *deletes first, then inserts*,
so a row named in both ends up present.  Deltas never add or remove
relation symbols — the query workload's schema is fixed at serving
time — and applying one never mutates the original database:
:meth:`Database.apply <repro.data.database.Database.apply>` returns a
new database sharing every untouched relation object (and therefore
its sorted/columnar caches) with the old one.

    >>> from repro.data.delta import Delta
    >>> delta = Delta(inserts={"R": {(9, 9)}}, deletes={"R": [(1, 2)]})
    >>> sorted(delta.touched)
    ['R']
    >>> sorted(delta.apply_to("R", {(1, 2), (3, 4)}))
    [(3, 4), (9, 9)]
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import DatabaseError


def _normalize(rows_by_relation) -> dict[str, frozenset[tuple]]:
    out: dict[str, frozenset[tuple]] = {}
    for name, rows in dict(rows_by_relation or {}).items():
        frozen = frozenset(tuple(row) for row in rows)
        if frozen:
            out[name] = frozen
    return out


class Delta:
    """A set of tuple inserts and deletes, grouped by relation.

    Args:
        inserts: mapping of relation name to an iterable of rows to add.
        deletes: mapping of relation name to an iterable of rows to
            remove (removing an absent row is a no-op).

    Rows are normalized to tuples and empty per-relation entries are
    dropped, so :attr:`touched` names exactly the relations whose
    content can change.  Instances are immutable and hashable.
    """

    __slots__ = ("inserts", "deletes")

    def __init__(
        self,
        inserts: Mapping[str, Iterable[tuple]] | None = None,
        deletes: Mapping[str, Iterable[tuple]] | None = None,
    ):
        object.__setattr__(self, "inserts", _normalize(inserts))
        object.__setattr__(self, "deletes", _normalize(deletes))

    def __setattr__(self, name, value):
        raise AttributeError("Delta is immutable")  # repro: noqa[EXC-TAXONOMY] -- Python data-model contract for immutability

    def __reduce__(self):
        # __slots__ plus the raising __setattr__ above breaks default
        # unpickling (it restores state attribute-by-attribute), and
        # deltas must travel to worker processes; rebuild through
        # __init__ instead.
        return (self.__class__, (self.inserts, self.deletes))

    @classmethod
    def coerce(cls, value) -> "Delta":
        """``value`` as a :class:`Delta` (accepts a mapping with
        ``inserts``/``deletes`` keys, the JSON-ish spelling)."""
        if isinstance(value, Delta):
            return value
        if isinstance(value, Mapping) and set(value) <= {
            "inserts",
            "deletes",
        }:
            return cls(
                inserts=value.get("inserts"),
                deletes=value.get("deletes"),
            )
        raise DatabaseError(
            f"cannot interpret {value!r} as a Delta (pass a Delta or "
            "a mapping with 'inserts'/'deletes' keys)"
        )

    # -- shape -------------------------------------------------------------

    @property
    def touched(self) -> frozenset[str]:
        """Names of relations this delta can change."""
        return frozenset(self.inserts) | frozenset(self.deletes)

    @property
    def is_empty(self) -> bool:
        return not self.inserts and not self.deletes

    def size(self) -> int:
        """Total number of rows named (inserts plus deletes)."""
        return sum(len(rows) for rows in self.inserts.values()) + sum(
            len(rows) for rows in self.deletes.values()
        )

    # -- application -------------------------------------------------------

    def apply_to(self, name: str, tuples) -> frozenset[tuple]:
        """``name``'s new tuple set: deletes applied first, then
        inserts (a row in both ends up present)."""
        out = frozenset(tuples)
        deletes = self.deletes.get(name)
        if deletes:
            out = out - deletes
        inserts = self.inserts.get(name)
        if inserts:
            out = out | inserts
        return out

    def validate_against(self, database) -> None:
        """Raise :class:`~repro.errors.DatabaseError` when this delta
        names an unknown relation or a row of the wrong arity."""
        for side in (self.inserts, self.deletes):
            for name, rows in side.items():
                relation = database[name]  # DatabaseError when unknown
                for row in rows:
                    if len(row) != relation.arity:
                        raise DatabaseError(
                            f"delta row {row} for {name} does not have "
                            f"arity {relation.arity}"
                        )

    def effective_against(self, database) -> "Delta":
        """This delta minimized against ``database``: inserts of rows
        already present and deletes of rows already absent are dropped
        (per relation, the canonical ``new - old`` / ``old - new``
        form).  An *effectively* empty delta therefore comes back as
        ``Delta()`` — the store uses that to make no-op applies skip
        the version bump instead of invalidating pinned views."""
        inserts: dict[str, frozenset[tuple]] = {}
        deletes: dict[str, frozenset[tuple]] = {}
        for name in self.touched:
            old = frozenset(database[name].tuples)
            new = self.apply_to(name, old)
            if new - old:
                inserts[name] = new - old
            if old - new:
                deletes[name] = old - new
        return Delta(inserts=inserts, deletes=deletes)

    # -- wire / log form ---------------------------------------------------

    def as_dict(self) -> dict:
        """A JSON-ready spelling (rows as sorted lists), the inverse of
        :meth:`coerce` — used by the wire ``apply`` op and the WAL."""
        def side(rows_by_relation):
            return {
                name: sorted(
                    (list(row) for row in rows), key=repr
                )
                for name, rows in sorted(rows_by_relation.items())
            }

        out: dict = {}
        if self.inserts:
            out["inserts"] = side(self.inserts)
        if self.deletes:
            out["deletes"] = side(self.deletes)
        return out

    # -- plumbing ----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, Delta):
            return (
                self.inserts == other.inserts
                and self.deletes == other.deletes
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(
            (
                frozenset(self.inserts.items()),
                frozenset(self.deletes.items()),
            )
        )

    def __repr__(self) -> str:
        parts = []
        for label, side in (
            ("inserts", self.inserts),
            ("deletes", self.deletes),
        ):
            if side:
                inner = ", ".join(
                    f"{name}: {len(rows)}"
                    for name, rows in sorted(side.items())
                )
                parts.append(f"{label}={{{inner}}}")
        return f"Delta({', '.join(parts) or 'empty'})"


__all__ = ["Delta"]
