"""Dictionary-encoded columnar relations (the NumpyEngine substrate).

The paper's word-RAM model assumes the active domain is ``[n]``; this
module realizes that assumption for arbitrary (hashable, mutually
comparable) Python constants.  A :class:`Dictionary` encodes the active
domain of a table once into dense ``int64`` codes whose numeric order
equals the value order, so every order-sensitive operation downstream
(lexicographic sort, group boundaries, binary search) can run on
contiguous integer arrays and still agree bit-for-bit with the
pure-Python engine.

A :class:`ColumnarTable` stores the rows of one table as an ``(n, k)``
``int64`` code matrix sharing a single dictionary across columns.  The
vectorized algorithms (:mod:`repro.engine.numpy_engine`) never put raw
Python values into numpy arrays — only codes — so arbitrary constants
(tuples, strings, Fractions) round-trip exactly.

This module imports numpy lazily: importing :mod:`repro.data` stays
possible on interpreters without numpy, and the engine registry gates
the numpy engine on :func:`numpy_available`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

try:  # gated dependency: the container image may lack numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via numpy_available()
    _np = None

#: Largest key span we allow before densifying packed keys.  Staying
#: well under 2**63 keeps every Horner step exact in int64.
_MAX_SAFE = 2**62


def numpy_available() -> bool:
    """Whether the numpy backend can be used at all."""
    return _np is not None


def _require_numpy():
    if _np is None:  # pragma: no cover
        raise RuntimeError("numpy is not available in this environment")  # repro: noqa[EXC-TAXONOMY] -- environment precondition, not a query failure
    return _np


class Dictionary:
    """An order-preserving encoding of an active domain.

    ``values`` is the sorted list of distinct constants; the code of a
    value is its rank, so ``code(a) < code(b)`` iff ``a < b``.  Building
    one requires the constants to be mutually comparable — the same
    assumption the rest of the pipeline (tries, counting forests) already
    makes; the numpy engine falls back to the Python engine when a domain
    violates it.
    """

    __slots__ = ("values", "_code")

    def __init__(self, values: Iterable):
        self.values: list = sorted(set(values))
        self._code: dict = {v: i for i, v in enumerate(self.values)}

    @classmethod
    def from_sorted(cls, values: list) -> "Dictionary":
        """Wrap an *already sorted, duplicate-free* value list.

        The shared-memory attach path reconstructs dictionaries from a
        published value blob that the primary sorted once; re-sorting
        (and re-deduplicating) per worker would cost O(n log n) per
        attach for nothing.  The caller owns the invariant.
        """
        self = object.__new__(cls)
        self.values = values
        self._code = {v: i for i, v in enumerate(values)}
        return self

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value) -> bool:
        return value in self._code

    def code(self, value) -> int:
        """The code of ``value``, or ``-1`` when absent."""
        return self._code.get(value, -1)

    def decode(self, code: int):
        return self.values[code]

    def extend(self, values: Iterable) -> bool:
        """Grow the domain *in place* without renumbering any code.

        Order preservation pins every code to its value's rank, so new
        values can only be absorbed code-stably when they all sort
        *after* the current maximum — then they are appended and every
        existing code (and every columnar table sharing this
        dictionary) stays valid.  Returns ``False`` (leaving the
        dictionary untouched) when a new value lands inside the
        existing order, or the combined domain stops being totally
        orderable: the caller must re-encode from scratch.
        """
        try:
            fresh = sorted(
                {v for v in values if v not in self._code}
            )
            if not fresh:
                return True
            if self.values and not (self.values[-1] < fresh[0]):
                return False
        except TypeError:
            return False
        base = len(self.values)
        self.values.extend(fresh)
        for offset, value in enumerate(fresh):
            self._code[value] = base + offset
        return True

    def remap_to(self, other: "Dictionary"):
        """An int64 array mapping this dictionary's codes into ``other``.

        Entry ``i`` is ``other``'s code for ``self.values[i]``, or ``-1``
        when the value is absent from ``other``.  Gathering through the
        result vectorizes cross-dictionary comparisons at per-*unique*
        -value cost instead of per-row cost.
        """
        np = _require_numpy()
        get = other._code.get
        return np.fromiter(
            (get(v, -1) for v in self.values),
            dtype=np.int64,
            count=len(self.values),
        )

    @staticmethod
    def merged(a: "Dictionary", b: "Dictionary") -> "Dictionary":
        """The dictionary over the union of two active domains."""
        if a is b:
            return a
        if not b.values:
            return a
        if not a.values:
            return b
        out = Dictionary(())
        out.values = sorted(set(a.values) | set(b.values))
        out._code = {v: i for i, v in enumerate(out.values)}
        return out


class ColumnarTable:
    """Rows of one table as a dictionary-encoded int64 code matrix.

    ``codes`` has shape ``(n_rows, arity)`` and is C-contiguous; all
    columns share ``dictionary``.  Rows are unique (set semantics, like
    :class:`~repro.joins.operators.Table`).
    """

    __slots__ = ("codes", "dictionary")

    def __init__(self, codes, dictionary: Dictionary):
        self.codes = codes
        self.dictionary = dictionary

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[tuple],
        arity: int,
        dictionary: Dictionary | None = None,
    ) -> "ColumnarTable":
        """Encode ``rows`` (unique tuples) into a code matrix.

        Raises ``TypeError`` when the values are not mutually comparable
        (callers treat that as "fall back to the Python engine").
        """
        np = _require_numpy()
        rows = list(rows)
        if dictionary is None:
            dictionary = Dictionary(
                value for row in rows for value in row
            )
        code = dictionary._code
        flat = np.fromiter(
            (code[value] for row in rows for value in row),
            dtype=np.int64,
            count=len(rows) * arity,
        )
        return cls(flat.reshape(len(rows), arity), dictionary)

    @property
    def nrows(self) -> int:
        return self.codes.shape[0]

    @property
    def arity(self) -> int:
        return self.codes.shape[1]

    def to_rows(self) -> list[tuple]:
        """Decode back to Python tuples (row order preserved)."""
        values = self.dictionary.values
        arity = self.arity
        flat = [values[c] for c in self.codes.ravel().tolist()]
        return [
            tuple(flat[i : i + arity])
            for i in range(0, len(flat), arity)
        ]

    def decode_column(self, column: int) -> list:
        values = self.dictionary.values
        return [values[c] for c in self.codes[:, column].tolist()]

    def with_dictionary(self, dictionary: Dictionary) -> "ColumnarTable":
        """Re-express the codes in ``dictionary`` (a superset domain)."""
        if dictionary is self.dictionary:
            return self
        remap = self.dictionary.remap_to(dictionary)
        return ColumnarTable(remap[self.codes], dictionary)


def shared_dictionary_encode(relations) -> Dictionary | None:
    """Encode ``relations`` (name -> Relation) against one dictionary.

    Builds a single order-preserving :class:`Dictionary` over the union
    of the relations' active domains and installs a
    :class:`ColumnarTable` mirror sharing it on every relation, so every
    downstream cross-table operation (semijoin, join, counting-forest
    remap) short-circuits its dictionary merge on object identity
    instead of merging + remapping per operation.

    Idempotent: when every relation already carries a mirror over one
    common dictionary, that dictionary is returned untouched.  Returns
    ``None`` (leaving the relations as they were) when numpy is missing
    or the combined domain is not totally orderable — the engines then
    fall back per operation exactly as before.
    """
    if _np is None:
        return None
    relations = dict(relations)
    mirrors = [rel._columnar for rel in relations.values()]
    if mirrors and all(m is not None for m in mirrors):
        first = mirrors[0].dictionary
        if all(m.dictionary is first for m in mirrors):
            return first
    try:
        dictionary = Dictionary(
            value
            for rel in relations.values()
            for t in rel.tuples
            for value in t
        )
        encoded = {
            name: ColumnarTable.from_rows(
                rel.sorted_tuples(), rel.arity, dictionary
            )
            for name, rel in relations.items()
        }
    except TypeError:
        return None
    for name, rel in relations.items():
        rel._columnar = encoded[name]
    return dictionary


def extend_shared_dictionary(relations, touched) -> bool:
    """Incrementally maintain a shared encoding after a mutation.

    ``relations`` (name -> Relation) is the *post-mutation* content;
    the relations outside ``touched`` must still carry columnar
    mirrors over one common dictionary (they are shared, untouched,
    with the pre-mutation database).  When every genuinely new domain
    value sorts after the dictionary's current maximum, the shared
    dictionary is extended in place (:meth:`Dictionary.extend` —
    existing codes never renumber, so every untouched mirror stays
    valid) and only the touched relations are re-encoded against it.

    Returns ``False`` — leaving all mirrors as they were — when there
    is no common encoding to extend, a new value lands inside the
    existing order, or the domain stops being totally orderable; the
    caller then falls back to a full :func:`shared_dictionary_encode`.
    """
    if _np is None:
        return False
    relations = dict(relations)
    touched = {name for name in touched if name in relations}
    untouched = [
        rel for name, rel in relations.items() if name not in touched
    ]
    mirrors = [rel._columnar for rel in untouched]
    if not mirrors or any(m is None for m in mirrors):
        return False
    dictionary = mirrors[0].dictionary
    if any(m.dictionary is not dictionary for m in mirrors):
        return False
    try:
        if not dictionary.extend(
            value
            for name in touched
            for t in relations[name].tuples
            for value in t
        ):
            return False
        encoded = {
            name: ColumnarTable.from_rows(
                relations[name].sorted_tuples(),
                relations[name].arity,
                dictionary,
            )
            for name in touched
        }
    except TypeError:
        return False
    for name, mirror in encoded.items():
        relations[name]._columnar = mirror
    return True


def pack_keys(columns: Sequence, card: int):
    """Collapse parallel code columns into one int64 key per row.

    ``card`` bounds every code strictly (all codes in ``[0, card)``).
    Keys preserve lexicographic order and equality of the column tuples.
    When the mixed-radix span would overflow int64 the keys are densified
    with ``np.unique`` (whose inverse is rank-ordered, so order is still
    preserved) before the next Horner step.
    """
    np = _require_numpy()
    if not columns:
        raise ValueError("pack_keys needs at least one column")  # repro: noqa[EXC-TAXONOMY] -- programmer contract of the packing helper
    key = np.ascontiguousarray(columns[0], dtype=np.int64)
    span = max(card, 1)
    for column in columns[1:]:
        if span > _MAX_SAFE // max(card, 1):
            uniques, key = np.unique(key, return_inverse=True)
            key = key.astype(np.int64, copy=False)
            span = max(len(uniques), 1)
            if span > _MAX_SAFE // max(card, 1):  # pragma: no cover
                raise OverflowError("key space exceeds int64")  # repro: noqa[EXC-TAXONOMY] -- int64 capacity guard; the builtin is the signal
        key = key * card + np.asarray(column, dtype=np.int64)
        span = span * max(card, 1)
    return key


def pack_pair(a, b, card: int):
    """Pack two code matrices over the *same* dictionary jointly.

    Returns ``(keys_a, keys_b)`` that are mutually comparable: equal row
    tuples get equal keys and lexicographic row order maps to numeric key
    order across both arrays (joint densification keeps this true even
    when the plain mixed-radix product would overflow).
    """
    np = _require_numpy()
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError("pack_pair needs two matrices of equal width")  # repro: noqa[EXC-TAXONOMY] -- programmer contract of the packing helper
    width = a.shape[1]
    if width == 0:
        return (
            np.zeros(a.shape[0], dtype=np.int64),
            np.zeros(b.shape[0], dtype=np.int64),
        )
    stacked = np.concatenate([a, b], axis=0)
    keys = pack_keys(
        [stacked[:, i] for i in range(width)], card
    )
    return keys[: a.shape[0]], keys[a.shape[0] :]
