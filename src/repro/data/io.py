"""Loading and saving relations as comma-separated text files.

The on-disk format is one tuple per line, values separated by commas;
blank lines and ``#`` comments are skipped. Values parse as integers when
possible and as strings otherwise — consistent within a column for the
domain order to be meaningful.
"""

from __future__ import annotations

from pathlib import Path

from repro.data.database import Database
from repro.data.relation import Relation
from repro.errors import DatabaseError


def parse_cell(cell: str):
    """One CSV-ish value: integer when possible, string otherwise.

    The single source of the on-disk value convention — the session
    wire protocol parses constants (e.g. ``rank x,y 3,2``) through this
    too, so text-grammar lookups always agree with loaded relations.
    """
    cell = cell.strip()
    try:
        return int(cell)
    except ValueError:
        return cell


def load_relation(path: str | Path, arity: int | None = None) -> Relation:
    """Read a relation from a CSV-style file.

    Raises :class:`~repro.errors.DatabaseError` on ragged rows or (when
    no ``arity`` is given) an empty file.
    """
    rows = set()
    for line_number, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        row = tuple(parse_cell(cell) for cell in line.split(","))
        if arity is not None and len(row) != arity:
            raise DatabaseError(
                f"{path}:{line_number}: expected {arity} values, "
                f"got {len(row)}"
            )
        rows.add(row)
    if not rows and arity is None:
        raise DatabaseError(f"{path} holds no tuples and no arity given")
    return Relation(rows, arity=arity)


def save_relation(relation: Relation, path: str | Path) -> None:
    """Write a relation in the same format, sorted for reproducibility."""
    lines = [
        ",".join(str(value) for value in row)
        for row in relation.sorted_tuples()
    ]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def load_database(specs: dict[str, str | Path]) -> Database:
    """Load several relations: ``{symbol: path}`` -> Database."""
    return Database(
        {name: load_relation(path) for name, path in specs.items()}
    )


def save_database(database: Database, directory: str | Path) -> dict[str, Path]:
    """Write every relation to ``directory/<symbol>.csv``; return paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out: dict[str, Path] = {}
    for name, relation in database.relations.items():
        path = directory / f"{name}.csv"
        save_relation(relation, path)
        out[name] = path
    return out
