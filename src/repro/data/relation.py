"""In-memory relations.

A relation is a finite set of constant tuples of a fixed arity. Constants
can be any hashable, mutually comparable Python values (ints in the
generators; tuples of such values arise in the paper's reductions, which
pack several roles into one variable). The database's linear order on
constants is the natural Python ordering.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import DatabaseError


class Relation:
    """An immutable set of same-arity tuples with sorted iteration."""

    __slots__ = ("_tuples", "_arity", "_sorted", "_columnar")

    def __init__(self, tuples: Iterable[tuple], arity: int | None = None):
        tuple_set = {tuple(t) for t in tuples}
        if arity is None:
            if not tuple_set:
                raise DatabaseError(
                    "empty relation needs an explicit arity"
                )
            arity = len(next(iter(tuple_set)))
        for t in tuple_set:
            if len(t) != arity:
                raise DatabaseError(
                    f"tuple {t} does not have arity {arity}"
                )
        self._tuples = frozenset(tuple_set)
        self._arity = arity
        self._sorted: list[tuple] | None = None
        # Dictionary-encoded mirror, filled lazily by the numpy engine.
        self._columnar = None

    @classmethod
    def from_columnar(cls, mirror) -> "Relation":
        """A relation backed by a dictionary-encoded mirror.

        The tuple set is *not* materialized here: worker processes that
        attach a shared-memory code matrix serve most requests straight
        off the codes, and decoding every row per worker would defeat
        the one-physical-copy design.  Python-object views
        (``tuples``, ``sorted_tuples``) decode on first use; mirror
        rows are stored in sorted order, so the decode *is* the sorted
        view.
        """
        self = object.__new__(cls)
        self._tuples = None
        self._arity = mirror.arity
        self._sorted = None
        self._columnar = mirror
        return self

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def tuples(self) -> frozenset[tuple]:
        if self._tuples is None:
            self._tuples = frozenset(self.sorted_tuples())
        return self._tuples

    def sorted_tuples(self) -> list[tuple]:
        """Tuples in lexicographic order (cached)."""
        if self._sorted is None:
            if self._tuples is None:
                self._sorted = self._columnar.to_rows()
            else:
                self._sorted = sorted(self._tuples)
        return self._sorted

    def __len__(self) -> int:
        if self._tuples is None:
            return self._columnar.nrows
        return len(self._tuples)

    def __iter__(self):
        return iter(self.sorted_tuples())

    def __contains__(self, item) -> bool:
        return tuple(item) in self.tuples

    def __eq__(self, other) -> bool:
        if isinstance(other, Relation):
            return (
                self._arity == other._arity
                and self.tuples == other.tuples
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._arity, self.tuples))

    def __repr__(self) -> str:
        preview = ", ".join(map(str, self.sorted_tuples()[:4]))
        suffix = ", ..." if len(self) > 4 else ""
        return f"Relation[{self._arity}]({{{preview}{suffix}}}, n={len(self)})"

    def active_domain(self) -> set:
        """All constants appearing in some tuple."""
        return {value for t in self.tuples for value in t}

    def project(self, columns: Iterable[int]) -> "Relation":
        """Project onto the given column indices (in the given order)."""
        cols = list(columns)
        for c in cols:
            if not 0 <= c < self._arity:
                raise DatabaseError(f"column {c} out of range")
        return Relation(
            {tuple(t[c] for c in cols) for t in self.tuples},
            arity=len(cols),
        )

    def filtered(self, predicate) -> "Relation":
        """Keep tuples for which ``predicate(tuple)`` is true."""
        return Relation(
            {t for t in self.tuples if predicate(t)}, arity=self._arity
        )
