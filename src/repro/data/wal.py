"""The durable write-ahead delta log: :class:`WriteAheadLog`.

The serving store applies mutations in memory; a crash therefore loses
every delta since boot and a restart rebuilds the world cold.  The WAL
closes both gaps with the classic recipe:

* **append before apply** — a serialized :class:`~repro.data.delta.Delta`
  record (one per atomic apply, covering multi-relation deltas in a
  single version bump) is written and flushed *before* the engine
  mutates anything, so a crash between append and apply is repaired by
  replay, never by data loss;
* **checksummed records** — every record carries a CRC-32 over its
  sequence number and payload; a torn tail (crash mid-append) is
  detected, dropped, and the file truncated back to the last durable
  record on the next open;
* **fsync batching** — ``fsync_batch=1`` (the default) syncs every
  append for strict durability; larger batches trade the tail of the
  log for group-commit throughput (at most ``fsync_batch - 1`` records
  can be lost to a power failure);
* **replay on boot** — ``repro serve --wal PATH`` recovers the log
  before building its store, so servers restart *warm and current*:
  the recovered database lands at the pre-crash ``db_version`` and the
  engine encodes it exactly once, instead of re-running the mutation
  history;
* **compaction** — :meth:`compact` replays the log, writes one
  snapshot record of the current database, and drops the delta prefix
  (crash-safe via write-temp-then-rename).

The file format is line-oriented text — one record per line::

    repro-wal 2
    <seq> <crc32-hex> <payload-length> <payload JSON>

where the payload is ``{"kind": "delta"|"snapshot", "db_version": N,
...}``.  A ``snapshot`` record holds full relation contents and resets
replay state; a ``delta`` record holds a serialized delta whose apply
minted ``db_version``.  The length prefix is a second, independent
commitment to the payload: a truncated record whose shortened payload
happens to collide with the stored CRC-32 (a 32-bit check, so
collisions are rare but real) still disagrees with the declared
length and is dropped as torn.  The text format keeps ``repro wal
inspect`` and plain ``grep`` useful on production logs.

Fault points (:mod:`repro.chaos.faults`): ``wal.torn_write``,
``wal.corrupt_crc``, and ``wal.fsync`` are wired into :meth:`_append`
and simulate a process death at exactly the byte position each name
describes; all three are free no-ops unless a chaos plan is armed.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.chaos.faults import ChaosCrash, fire as _fire
from repro.data.database import Database
from repro.data.delta import Delta
from repro.errors import WalError

#: On-disk format version, written in the header line and surfaced by
#: ``repro --version`` so operators can tell at a glance whether two
#: hosts' logs interoperate.  Version 2 added the payload-length field
#: between the checksum and the payload.
WAL_FORMAT_VERSION = 2

_HEADER = f"repro-wal {WAL_FORMAT_VERSION}\n"


def _checksum(seq: int, payload: str) -> str:
    return format(zlib.crc32(f"{seq}:{payload}".encode()), "08x")


def _format_line(seq: int, payload: str) -> str:
    return f"{seq} {_checksum(seq, payload)} {len(payload)} {payload}\n"


@dataclass(frozen=True)
class WalRecord:
    """One durable log record (a delta apply or a compaction snapshot)."""

    seq: int
    kind: str  # "delta" | "snapshot"
    db_version: int
    delta: Delta | None = None
    relations: dict[str, list] | None = None


@dataclass
class WalStats:
    """Counters for one :class:`WriteAheadLog` (monotonic per open)."""

    records_appended: int = 0
    fsyncs: int = 0
    bytes_written: int = 0
    records_replayed: int = 0
    torn_tail_dropped: int = 0
    compactions: int = 0
    truncations: int = 0

    def as_dict(self) -> dict:
        return {
            "records_appended": self.records_appended,
            "fsyncs": self.fsyncs,
            "bytes_written": self.bytes_written,
            "records_replayed": self.records_replayed,
            "torn_tail_dropped": self.torn_tail_dropped,
            "compactions": self.compactions,
            "truncations": self.truncations,
        }


class WriteAheadLog:
    """An append-only, checksummed, fsync-batched log of deltas.

    Args:
        path: the log file (created, with its header, if absent).
        fsync_batch: how many appends may share one ``fsync``.  ``1``
            (default) syncs every record; ``N`` syncs every N-th append
            (and always on :meth:`sync`/:meth:`close`), bounding loss
            to the last ``N - 1`` records.

    Thread-safe: appends serialize on an internal lock (the store
    additionally holds its mutation lock across append-then-apply, so
    record order always matches version order).
    """

    def __init__(self, path: str | os.PathLike, fsync_batch: int = 1):
        self.path = Path(path)
        self._fsync_batch = max(1, int(fsync_batch))
        self._pending = 0
        self._lock = threading.Lock()
        self.stats = WalStats()
        self._last_seq = 0
        self._last_db_version = 0
        self._open_and_scan()

    # -- open / scan -------------------------------------------------------

    def _open_and_scan(self) -> None:
        """Validate the header, find the last durable record, and cut a
        torn tail off (appending past one would shadow the new records
        behind an unreadable line forever)."""
        if not self.path.exists() or self.path.stat().st_size == 0:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(_HEADER)
                handle.flush()
                os.fsync(handle.fileno())
            self._file = open(self.path, "a", encoding="utf-8")
            return
        good_end = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            header = handle.readline()
            if not header.startswith("repro-wal "):
                raise WalError(
                    f"{self.path} is not a repro WAL (bad header "
                    f"{header[:32]!r})"
                )
            try:
                fmt = int(header.split()[1])
            except (IndexError, ValueError):
                raise WalError(
                    f"{self.path}: unreadable WAL header"
                ) from None
            if fmt != WAL_FORMAT_VERSION:
                raise WalError(
                    f"{self.path} speaks WAL format {fmt}, this build "
                    f"speaks {WAL_FORMAT_VERSION} (compact the log "
                    "with a matching build to migrate)"
                )
            good_end = handle.tell()
            while True:
                line = handle.readline()
                if not line:
                    break
                record = self._parse_line(line)
                if record is None:
                    # Torn or corrupt tail: stop at the last good
                    # record; everything after it is dropped below.
                    break
                self._last_seq = record.seq
                self._last_db_version = record.db_version
                good_end = handle.tell()
        size = self.path.stat().st_size
        if good_end < size:
            self.stats.torn_tail_dropped += 1
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.truncate(good_end)
        self._file = open(self.path, "a", encoding="utf-8")

    @staticmethod
    def _parse_line(line: str) -> WalRecord | None:
        if not line.endswith("\n"):
            return None  # torn: the trailing newline commits a record
        parts = line.rstrip("\n").split(" ", 3)
        if len(parts) != 4:
            return None
        seq_text, crc, length_text, payload = parts
        try:
            seq = int(seq_text)
            length = int(length_text)
        except ValueError:
            return None
        # Length first: a truncated payload that happens to collide
        # with the 32-bit CRC still disagrees with the declared length.
        if len(payload) != length:
            return None
        if _checksum(seq, payload) != crc:
            return None
        try:
            body = json.loads(payload)
        except json.JSONDecodeError:
            return None
        kind = body.get("kind")
        version = body.get("db_version")
        if kind not in ("delta", "snapshot") or not isinstance(
            version, int
        ):
            return None
        if kind == "delta":
            return WalRecord(
                seq=seq,
                kind="delta",
                db_version=version,
                delta=Delta.coerce(body.get("delta", {})),
            )
        return WalRecord(
            seq=seq,
            kind="snapshot",
            db_version=version,
            relations=body.get("relations", {}),
        )

    # -- appending ---------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the last durable record (0 = empty log)."""
        return self._last_seq

    @property
    def last_db_version(self) -> int:
        """The ``db_version`` the last record minted (or snapshotted)."""
        return self._last_db_version

    def append_delta(self, delta: Delta, db_version: int) -> int:
        """Append one delta record; returns its sequence number.

        Must be called *before* the in-memory apply that mints
        ``db_version`` — that ordering is the whole durability story.
        """
        payload = {
            "kind": "delta",
            "db_version": int(db_version),
            "delta": Delta.coerce(delta).as_dict(),
        }
        return self._append(payload)

    def append_snapshot(self, database, db_version: int) -> int:
        """Append a full-database snapshot record (compaction and the
        self-containment seed of a fresh log); always fsynced."""
        if not isinstance(database, Database):
            database = Database(database)
        payload = {
            "kind": "snapshot",
            "db_version": int(db_version),
            "relations": {
                name: sorted(
                    (list(row) for row in relation.tuples), key=repr
                )
                for name, relation in sorted(
                    database.relations.items()
                )
            },
        }
        seq = self._append(payload)
        self.sync()
        return seq

    def _append(self, payload: dict) -> int:
        text = json.dumps(payload, default=str, separators=(",", ":"))
        with self._lock:
            seq = self._last_seq + 1
            line = _format_line(seq, text)
            if _fire("wal.torn_write"):
                # Die midway through the write: a partial line, no
                # newline, reaches the file.  Open-time truncation must
                # drop it — the write was never acknowledged.
                self._file.write(line[: max(1, len(line) // 2)])
                self._file.flush()
                raise ChaosCrash("wal.torn_write")
            if _fire("wal.corrupt_crc"):
                # A full line lands whose checksum disagrees with its
                # payload (bit rot / a buggy writer); replay must treat
                # it as torn, not apply it.
                crc = _checksum(seq, text)
                bad = ("f" if crc[0] != "f" else "0") + crc[1:]
                self._file.write(f"{seq} {bad} {len(text)} {text}\n")
                self._file.flush()
                raise ChaosCrash("wal.corrupt_crc")
            self._file.write(line)
            self._file.flush()
            if _fire("wal.fsync"):
                # The record reached the OS (written + flushed) but the
                # process dies before fsync returns: durable on disk,
                # never acknowledged to the caller.  Replay may
                # legitimately resurrect it — the checker's pending-
                # delta tolerance models exactly this window.
                raise ChaosCrash("wal.fsync")
            self._pending += 1
            if self._pending >= self._fsync_batch:
                os.fsync(self._file.fileno())  # repro: noqa[LOCK-BLOCKING] -- group commit: append order must equal durability order
                self._pending = 0
                self.stats.fsyncs += 1
            self._last_seq = seq
            self._last_db_version = payload["db_version"]
            self.stats.records_appended += 1
            self.stats.bytes_written += len(line.encode())
            return seq

    def sync(self) -> None:
        """Force any batched records to stable storage now."""
        with self._lock:
            if self._pending:
                self._file.flush()
                os.fsync(self._file.fileno())  # repro: noqa[LOCK-BLOCKING] -- group commit: append order must equal durability order
                self._pending = 0
                self.stats.fsyncs += 1

    def close(self) -> None:
        self.sync()
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading / recovery ------------------------------------------------

    def records(self) -> list[WalRecord]:
        """Every durable record, in append order (torn tails skipped)."""
        self.sync()
        out: list[WalRecord] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            handle.readline()  # header, validated at open
            for line in handle:
                record = self._parse_line(line)
                if record is None:
                    break
                out.append(record)
        return out

    def recover(
        self, database=None, *, seed: bool = False
    ) -> tuple[Database, int]:
        """Replay the log: the ``(database, db_version)`` it ends at.

        A snapshot record replaces the replay state; delta records
        apply on top.  ``database`` is the base for logs that start
        with deltas (a log seeded with a snapshot is self-contained and
        ignores it).  With ``seed=True`` an *empty* log gets a
        snapshot record of ``database`` at version 0 appended, so the
        log recovers standalone from then on — ``repro serve --wal``
        does this on first boot.
        """
        if database is not None and not isinstance(database, Database):
            database = Database(database)
        version = 0
        replayed = 0
        for record in self.records():
            if record.kind == "snapshot":
                database = Database(
                    {
                        name: {tuple(row) for row in rows}
                        for name, rows in record.relations.items()
                    }
                )
            else:
                if database is None:
                    raise WalError(
                        f"{self.path} starts with delta records; "
                        "recovery needs the base database they applied "
                        "to (pass it, or compact the log)"
                    )
                database = database.apply(record.delta)
            version = record.db_version
            replayed += 1
        self.stats.records_replayed += replayed
        if database is None:
            raise WalError(
                f"{self.path} is empty and no base database was given"
            )
        if seed and self._last_seq == 0:
            self.append_snapshot(database, version)
        return database, version

    # -- maintenance (the ``repro wal`` CLI) --------------------------------

    def _rewrite(self, lines: list[str]) -> None:
        """Atomically replace the log body (header + ``lines``)."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(_HEADER)
            handle.writelines(lines)
            handle.flush()
            os.fsync(handle.fileno())
        with self._lock:
            self._file.close()
            os.replace(tmp, self.path)
            self._file = open(self.path, "a", encoding="utf-8")
            self._pending = 0

    def truncate(self, keep_through_seq: int) -> int:
        """Drop every record with ``seq > keep_through_seq`` (tail
        repair); returns how many records were dropped."""
        kept: list[str] = []
        last_seq = 0
        last_version = 0
        dropped = 0
        for record in self.records():
            if record.seq > keep_through_seq:
                dropped += 1
                continue
            kept.append(_format_line(record.seq, self._payload_of(record)))
            last_seq = record.seq
            last_version = record.db_version
        self._rewrite(kept)
        with self._lock:
            self._last_seq = last_seq
            self._last_db_version = last_version
            self.stats.truncations += 1
        return dropped

    def compact(self, database=None) -> int:
        """Snapshot the replayed state and drop the delta prefix;
        returns how many records the snapshot subsumed.  ``database``
        is only needed for logs that start with deltas (see
        :meth:`recover`)."""
        state, version = self.recover(database)
        subsumed = len(self.records())
        payload = json.dumps(
            {
                "kind": "snapshot",
                "db_version": version,
                "relations": {
                    name: sorted(
                        (list(row) for row in relation.tuples),
                        key=repr,
                    )
                    for name, relation in sorted(
                        state.relations.items()
                    )
                },
            },
            default=str,
            separators=(",", ":"),
        )
        seq = max(self._last_seq, 1)
        self._rewrite([_format_line(seq, payload)])
        with self._lock:
            self._last_seq = seq
            self._last_db_version = version
            self.stats.compactions += 1
        return subsumed

    @staticmethod
    def _payload_of(record: WalRecord) -> str:
        if record.kind == "delta":
            body = {
                "kind": "delta",
                "db_version": record.db_version,
                "delta": record.delta.as_dict(),
            }
        else:
            body = {
                "kind": "snapshot",
                "db_version": record.db_version,
                "relations": record.relations,
            }
        return json.dumps(body, default=str, separators=(",", ":"))

    # -- observability -----------------------------------------------------

    def wal_stats(self) -> dict:
        """A plain-dict snapshot for ``/stats`` and ``repro wal
        inspect``: position (seq / db_version) plus the counters."""
        with self._lock:
            out = self.stats.as_dict()
            out["path"] = str(self.path)
            out["format"] = WAL_FORMAT_VERSION
            out["last_seq"] = self._last_seq
            out["last_db_version"] = self._last_db_version
            out["fsync_batch"] = self._fsync_batch
        return out

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self.path)!r}, seq={self._last_seq}, "
            f"db_version={self._last_db_version})"
        )


__all__ = ["WAL_FORMAT_VERSION", "WalRecord", "WalStats", "WriteAheadLog"]
