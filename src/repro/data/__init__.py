"""Data substrate: relations, databases, synthetic generators."""

from repro.data.database import Database, EncodedDatabase
from repro.data.relation import Relation

__all__ = ["Database", "EncodedDatabase", "Relation"]
