"""Data substrate: relations, databases, deltas, the write-ahead log,
and synthetic generators."""

from repro.data.database import Database, EncodedDatabase
from repro.data.delta import Delta
from repro.data.relation import Relation
from repro.data.wal import WriteAheadLog

__all__ = [
    "Database",
    "Delta",
    "EncodedDatabase",
    "Relation",
    "WriteAheadLog",
]
