"""Data substrate: relations, databases, deltas, synthetic generators."""

from repro.data.database import Database, EncodedDatabase
from repro.data.delta import Delta
from repro.data.relation import Relation

__all__ = ["Database", "Delta", "EncodedDatabase", "Relation"]
