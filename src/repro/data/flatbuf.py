"""Flat-buffer layouts for the shared-memory artifact plane.

The two expensive serving artifacts — an :class:`EncodedDatabase` and a
:class:`~repro.core.access.CountingForest` — are already dictionary-
encoded ``int64`` columns and cumsum arrays.  This module flattens each
into (manifest, named ``int64``/``uint8`` buffers) pairs and rebuilds
them from buffer views, so a primary process can publish one physical
copy into named ``multiprocessing.shared_memory`` segments and every
worker can attach numpy views zero-copy (:mod:`repro.server.shm`).

Manifests are small picklable dataclasses: they travel over the
supervisor's control pipes, while the bulk arrays never leave shared
memory.  The only pickled payload is the dictionary's sorted value list
(arbitrary Python constants; decoded once per worker, codes stay
shared).

Both directions are *partial by design*: databases without a shared
encoding (no numpy, non-orderable domain) and forests whose indexes
are not CSR-mirrored int64 (python-engine bags, object-dtype weights,
a foreign dictionary) return ``None``, and callers fall back to
pickling the artifact itself — correctness never depends on the fast
plane.
"""

from __future__ import annotations

import pickle
from collections.abc import Mapping
from dataclasses import dataclass

try:  # gated dependency, same policy as repro.data.columnar
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via numpy_available()
    _np = None

from repro.data.columnar import ColumnarTable, Dictionary
from repro.data.database import EncodedDatabase
from repro.data.relation import Relation

#: Buffer names are ``<prefix>/<field>``; the separator never appears
#: in relation names (enforced below) so manifests stay unambiguous.
_SEP = "/"

#: Per-bag array fields of a :class:`_BagAux`, in manifest order.
_AUX_FIELDS = (
    "group_codes",
    "offsets",
    "values_flat",
    "weights_flat",
    "cum_before",
    "totals",
)


@dataclass(frozen=True)
class ArraySpec:
    """Shape/dtype of one named buffer (enough to re-view its bytes)."""

    name: str
    shape: tuple
    dtype: str

    @property
    def nbytes(self) -> int:
        np = _np
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class DatabaseManifest:
    """Layout of one :class:`EncodedDatabase` as flat buffers.

    ``relations`` maps relation name to the spec of its ``(n, arity)``
    code matrix; ``dictionary_blob`` is the pickled sorted value list
    (uint8); ``arities`` survives empty relations whose shape alone
    would do, but keeps rebuild independent of numpy shape quirks.
    """

    relations: tuple[tuple[str, ArraySpec], ...]
    arities: tuple[tuple[str, int], ...]
    dictionary_blob: ArraySpec

    def specs(self) -> list[ArraySpec]:
        return [spec for _name, spec in self.relations] + [
            self.dictionary_blob
        ]


@dataclass(frozen=True)
class ForestManifest:
    """Layout of one :class:`CountingForest` as flat buffers.

    ``bags`` maps bag variable to its six :class:`_BagAux` array specs
    (manifest order = ``_AUX_FIELDS``).  ``key`` is the forest's
    provenance tuple; the rebuild stamps it (and the worker's local
    database object) onto the reconstructed forest so
    ``DirectAccess``'s validation keeps working across processes.
    """

    bags: tuple[tuple[str, tuple[ArraySpec, ...]], ...]
    key: tuple

    def specs(self) -> list[ArraySpec]:
        return [
            spec for _var, specs in self.bags for spec in specs
        ]


def _spec(name: str, array) -> ArraySpec:
    return ArraySpec(
        name=name,
        shape=tuple(int(d) for d in array.shape),
        dtype=str(array.dtype),
    )


def database_to_buffers(database):
    """Flatten an encoded database into ``(manifest, buffers)``.

    Returns ``None`` when the database has no shared encoding or any
    relation lacks a mirror over it (then the caller ships the
    database by pickle instead).  ``buffers`` maps each spec name to
    the *existing* array — no copy is made here; the shm plane copies
    exactly once, into the published segment.
    """
    if _np is None or not isinstance(database, EncodedDatabase):
        return None
    dictionary = database.shared_dictionary
    if dictionary is None:
        return None
    relations = database.relations
    specs: list[tuple[str, ArraySpec]] = []
    arities: list[tuple[str, int]] = []
    buffers: dict[str, _np.ndarray] = {}
    for name in sorted(relations):
        if _SEP in name:
            return None
        mirror = relations[name]._columnar
        if mirror is None or mirror.dictionary is not dictionary:
            return None
        codes = _np.ascontiguousarray(mirror.codes, dtype=_np.int64)
        spec = _spec(f"rel{_SEP}{name}", codes)
        specs.append((name, spec))
        arities.append((name, relations[name].arity))
        buffers[spec.name] = codes
    blob = _np.frombuffer(
        pickle.dumps(dictionary.values, protocol=pickle.HIGHEST_PROTOCOL),
        dtype=_np.uint8,
    )
    blob_spec = _spec(f"dict{_SEP}values", blob)
    buffers[blob_spec.name] = blob
    manifest = DatabaseManifest(
        relations=tuple(specs),
        arities=tuple(arities),
        dictionary_blob=blob_spec,
    )
    return manifest, buffers


def database_from_buffers(
    manifest: DatabaseManifest, views: Mapping[str, "_np.ndarray"]
) -> EncodedDatabase:
    """Rebuild an :class:`EncodedDatabase` over attached buffer views.

    ``views`` maps spec names to flat uint8/int64 views over shared
    memory (or any buffer); code matrices are re-viewed zero-copy.
    The dictionary's Python value list is process-local (decoded from
    the blob); only the code matrices stay shared.  Tuple sets are
    lazy (:meth:`Relation.from_columnar`), so attaching a database
    costs O(dictionary) work, not O(rows).
    """
    values = pickle.loads(
        _as_array(views[manifest.dictionary_blob.name], manifest.dictionary_blob)
        .tobytes()
    )
    dictionary = Dictionary.from_sorted(values)
    relations: dict[str, Relation] = {}
    arity_of = dict(manifest.arities)
    for name, spec in manifest.relations:
        codes = _as_array(views[spec.name], spec)
        mirror = ColumnarTable(codes, dictionary)
        rel = Relation.from_columnar(mirror)
        rel._arity = arity_of[name]
        relations[name] = rel
    out = object.__new__(EncodedDatabase)
    out._relations = relations
    out.shared_dictionary = dictionary
    out.encoded_incrementally = False
    return out


def _as_array(view, spec: ArraySpec):
    """Re-view a raw buffer (or array) as ``spec``'s shape/dtype.

    Attached views are marked read-only: shared segments hold the one
    physical copy for every process, and the engines never write into
    published artifacts — flipping the flag turns any future violation
    into a loud error instead of cross-process corruption.
    """
    flat = _np.frombuffer(view, dtype=_np.uint8)[: spec.nbytes]
    array = flat.view(spec.dtype).reshape(spec.shape)
    if array.flags.writeable:
        array.flags.writeable = False
    return array


def forest_to_buffers(forest, shared_dictionary):
    """Flatten a counting forest into ``(manifest, buffers)``.

    Only CSR-mirrored forests qualify: every bag must carry a
    :class:`_BagAux` whose dictionary *is* ``shared_dictionary``
    (object identity — the codes must mean the same values in every
    process) with int64 weights.  Python-engine bags, object-dtype
    (big-int) weights, and foreign dictionaries return ``None``; the
    worker then builds that forest locally from the shared database.
    """
    if _np is None or shared_dictionary is None:
        return None
    bags: list[tuple[str, tuple[ArraySpec, ...]]] = []
    buffers: dict[str, _np.ndarray] = {}
    for position, (variable, index) in enumerate(forest.indexes.items()):
        aux = getattr(index, "aux", None)
        if aux is None or aux.dictionary is not shared_dictionary:
            return None
        if aux.weights_flat.dtype == _np.dtype(object):
            return None
        specs = []
        for field in _AUX_FIELDS:
            array = _np.ascontiguousarray(
                getattr(aux, field), dtype=_np.int64
            )
            spec = _spec(f"bag{_SEP}{position}{_SEP}{field}", array)
            specs.append(spec)
            buffers[spec.name] = array
        bags.append((variable, tuple(specs)))
    return ForestManifest(bags=tuple(bags), key=forest.key), buffers


def forest_from_buffers(
    manifest: ForestManifest,
    views: Mapping[str, "_np.ndarray"],
    database: EncodedDatabase,
):
    """Rebuild a :class:`CountingForest` over attached buffer views.

    ``database`` must be the worker's local rebuild of the same
    published database version: its shared dictionary decodes the
    codes, and the forest is stamped with *that* object so
    ``DirectAccess``'s identity validation accepts the pair.
    """
    from repro.core.access import CountingForest
    from repro.engine.numpy_engine import _BagAux, bag_index_from_aux

    dictionary = database.shared_dictionary
    indexes = {}
    for variable, specs in manifest.bags:
        arrays = [_as_array(views[spec.name], spec) for spec in specs]
        aux = _BagAux(dictionary, *arrays)
        indexes[variable] = bag_index_from_aux(aux)
    return CountingForest(
        indexes=indexes, key=manifest.key, database=database
    )
