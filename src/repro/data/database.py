"""Databases: assignments of relations to the relation symbols of a query."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.data.relation import Relation
from repro.errors import DatabaseError
from repro.query.query import JoinQuery


class Database:
    """A mapping from relation symbols to :class:`Relation` instances.

    ``len(db)`` is the paper's ``|D|``: the total number of tuples across
    all relations.
    """

    def __init__(self, relations: Mapping[str, Relation | Iterable[tuple]]):
        self._relations: dict[str, Relation] = {}
        for name, rel in relations.items():
            if not isinstance(rel, Relation):
                rel = Relation(rel)
            self._relations[name] = rel

    @property
    def relations(self) -> dict[str, Relation]:
        return dict(self._relations)

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise DatabaseError(f"no relation named {name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        """``|D|``: total tuple count."""
        return sum(len(rel) for rel in self._relations.values())

    def __eq__(self, other) -> bool:
        if isinstance(other, Database):
            return self._relations == other._relations
        return NotImplemented

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}: {len(rel)}" for name, rel in sorted(
                self._relations.items()
            )
        )
        return f"Database({{{parts}}}, |D|={len(self)})"

    def domain(self) -> set:
        """dom(D): all constants appearing anywhere in the database."""
        out: set = set()
        for rel in self._relations.values():
            out |= rel.active_domain()
        return out

    def extended(
        self, extra: Mapping[str, Relation | Iterable[tuple]]
    ) -> "Database":
        """A new database with additional (or replaced) relations."""
        merged: dict[str, Relation | Iterable[tuple]] = dict(
            self._relations
        )
        merged.update(extra)
        return Database(merged)

    def validate_for(self, query: JoinQuery) -> None:
        """Check every query symbol is present with the right arity."""
        for symbol in query.relation_symbols:
            relation = self[symbol]
            expected = query.arity_of(symbol)
            if relation.arity != expected:
                raise DatabaseError(
                    f"{symbol} has arity {relation.arity}, query needs "
                    f"{expected}"
                )
