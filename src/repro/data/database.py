"""Databases: assignments of relations to the relation symbols of a query."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.data.relation import Relation
from repro.errors import DatabaseError
from repro.query.query import JoinQuery


class Database:
    """A mapping from relation symbols to :class:`Relation` instances.

    ``len(db)`` is the paper's ``|D|``: the total number of tuples across
    all relations.
    """

    def __init__(self, relations: Mapping[str, Relation | Iterable[tuple]]):
        self._relations: dict[str, Relation] = {}
        for name, rel in relations.items():
            if not isinstance(rel, Relation):
                rel = Relation(rel)
            self._relations[name] = rel

    @property
    def relations(self) -> dict[str, Relation]:
        return dict(self._relations)

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise DatabaseError(f"no relation named {name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        """``|D|``: total tuple count."""
        return sum(len(rel) for rel in self._relations.values())

    def __eq__(self, other) -> bool:
        if isinstance(other, Database):
            return self._relations == other._relations
        return NotImplemented

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}: {len(rel)}" for name, rel in sorted(
                self._relations.items()
            )
        )
        return f"Database({{{parts}}}, |D|={len(self)})"

    def domain(self) -> set:
        """dom(D): all constants appearing anywhere in the database."""
        out: set = set()
        for rel in self._relations.values():
            out |= rel.active_domain()
        return out

    def extended(
        self, extra: Mapping[str, Relation | Iterable[tuple]]
    ) -> "Database":
        """A new database with additional (or replaced) relations."""
        merged: dict[str, Relation | Iterable[tuple]] = dict(
            self._relations
        )
        merged.update(extra)
        return Database(merged)

    def apply(self, delta) -> "Database":
        """A new database with ``delta``'s inserts/deletes applied.

        Untouched relations are *shared by object* with this database
        (their sorted-tuple and columnar caches survive), so applying
        a small delta costs work proportional to the mutated relations
        only.  The delta must name existing relations with rows of the
        right arity (:class:`~repro.errors.DatabaseError` otherwise);
        within one delta, deletes apply before inserts.
        """
        from repro.data.delta import Delta

        delta = Delta.coerce(delta)
        delta.validate_against(self)
        merged: dict[str, Relation] = dict(self._relations)
        for name in delta.touched:
            old = self._relations[name]
            merged[name] = Relation(
                delta.apply_to(name, old.tuples), arity=old.arity
            )
        return Database(merged)

    def validate_for(self, query: JoinQuery) -> None:
        """Check every query symbol is present with the right arity."""
        for symbol in query.relation_symbols:
            relation = self[symbol]
            expected = query.arity_of(symbol)
            if relation.arity != expected:
                raise DatabaseError(
                    f"{symbol} has arity {relation.arity}, query needs "
                    f"{expected}"
                )


class EncodedDatabase(Database):
    """A database whose relations share one order-preserving dictionary.

    The paper's word-RAM model assumes the active domain is ``[n]``
    once, for the whole database; a plain :class:`Database` leaves each
    relation to be dictionary-encoded independently, so every
    cross-table operation of the numpy engine pays a dictionary merge
    plus a code remap.  An :class:`EncodedDatabase` realizes the model's
    assumption eagerly: one shared :class:`~repro.data.columnar.Dictionary`
    over ``dom(D)``, built at construction, shared by every relation's
    columnar mirror, so all downstream merges short-circuit on object
    identity.

    ``shared_dictionary`` is ``None`` when the encoding is unavailable
    (no numpy, or a domain that is not totally orderable); the database
    then behaves exactly like a plain :class:`Database`.
    """

    def __init__(self, relations: Mapping[str, Relation | Iterable[tuple]]):
        super().__init__(relations)
        from repro.data.columnar import shared_dictionary_encode

        # Encode private copies: the mirrors are installed on the
        # Relation objects in place, and the caller's relations may be
        # shared with another database (e.g. the one extended() was
        # called on) whose own shared encoding must stay intact.
        self._relations = {
            name: Relation(rel.tuples, arity=rel.arity)
            for name, rel in self._relations.items()
        }
        self.shared_dictionary = shared_dictionary_encode(self._relations)
        #: Whether the last construction step reused an existing
        #: encoding (True only for databases built by the incremental
        #: path of :meth:`apply`).
        self.encoded_incrementally = False

    def apply(self, delta) -> "EncodedDatabase":
        """A new encoded database with ``delta`` applied, maintaining
        the shared dictionary incrementally when possible.

        When every new domain value sorts after the dictionary's
        current maximum, the shared dictionary is *extended in place*
        — existing codes never renumber, untouched relations keep
        their columnar mirrors by object identity, and only the
        mutated relations are re-encoded.  Otherwise (a value lands
        inside the existing order, or the domain stops being totally
        orderable) the whole database is re-encoded from scratch,
        exactly as a fresh construction would.  The result's
        ``encoded_incrementally`` flag reports which path ran.
        """
        from repro.data.columnar import extend_shared_dictionary
        from repro.data.delta import Delta

        delta = Delta.coerce(delta)
        delta.validate_against(self)
        merged: dict[str, Relation] = dict(self._relations)
        for name in delta.touched:
            old = self._relations[name]
            merged[name] = Relation(
                delta.apply_to(name, old.tuples), arity=old.arity
            )
        if self.shared_dictionary is not None and (
            extend_shared_dictionary(merged, delta.touched)
        ):
            out = object.__new__(EncodedDatabase)
            out._relations = merged
            out.shared_dictionary = self.shared_dictionary
            out.encoded_incrementally = True
            return out
        return EncodedDatabase(merged)

    def extended(
        self, extra: Mapping[str, Relation | Iterable[tuple]]
    ) -> "EncodedDatabase":
        """A new encoded database with additional (or replaced) relations."""
        merged: dict[str, Relation | Iterable[tuple]] = dict(
            self._relations
        )
        merged.update(extra)
        return EncodedDatabase(merged)
