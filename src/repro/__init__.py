"""repro — lexicographic direct access on join queries.

A faithful, executable reproduction of *Tight Fine-Grained Bounds for
Direct Access on Join Queries* (Bringmann, Carmeli & Mengel, PODS 2022).

Quickstart:
    >>> from repro import parse_query, VariableOrder, Database, DirectAccess
    >>> q = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
    >>> db = Database({"R": {(1, 2), (3, 2)}, "S": {(2, 7), (2, 9)}})
    >>> access = DirectAccess(q, VariableOrder(["x", "y", "z"]), db)
    >>> len(access), access.tuple_at(0)
    (4, (1, 2, 7))
"""

from repro.core import (
    AnswerTester,
    DirectAccess,
    TightBounds,
    cheapest_order,
    classify,
    rank_orders,
    DisruptionFreeDecomposition,
    OrderlessFourCycleAccess,
    Preprocessing,
    SelfJoinFreeAccess,
    fractional_hypertree_width,
    incompatibility_number,
    partial_order_access,
)
from repro.data import Database, EncodedDatabase, Relation
from repro.session import AccessSession
from repro.engine import (
    available_engines,
    get_engine,
    set_engine,
    use_engine,
)
from repro.errors import EngineError, OutOfBoundsError, ReproError
from repro.query import (
    Atom,
    ConjunctiveQuery,
    JoinQuery,
    VariableOrder,
    parse_query,
)

__version__ = "1.2.0"

__all__ = [
    "AccessSession",
    "AnswerTester",
    "Atom",
    "TightBounds",
    "cheapest_order",
    "classify",
    "rank_orders",
    "ConjunctiveQuery",
    "Database",
    "DirectAccess",
    "DisruptionFreeDecomposition",
    "EncodedDatabase",
    "EngineError",
    "JoinQuery",
    "OrderlessFourCycleAccess",
    "OutOfBoundsError",
    "Preprocessing",
    "Relation",
    "ReproError",
    "SelfJoinFreeAccess",
    "VariableOrder",
    "__version__",
    "available_engines",
    "fractional_hypertree_width",
    "get_engine",
    "incompatibility_number",
    "parse_query",
    "partial_order_access",
    "set_engine",
    "use_engine",
]
