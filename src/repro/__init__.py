"""repro — lexicographic direct access on join queries.

A faithful, executable reproduction of *Tight Fine-Grained Bounds for
Direct Access on Join Queries* (Bringmann, Carmeli & Mengel, PODS 2022),
grown into a serving system behind one prepared-query facade.

Quickstart — the public API is ``connect`` → ``prepare`` → a view with
``Sequence`` semantics and inverse access:

    >>> import repro
    >>> conn = repro.connect({"R": {(1, 2), (3, 2)}, "S": {(2, 7), (2, 9)}})
    >>> view = conn.prepare("Q(x, y, z) :- R(x, y), S(y, z)",
    ...                     order=["x", "y", "z"])
    >>> len(view), view[0], view[-1]
    (4, (1, 2, 7), (3, 2, 9))
    >>> view.rank((3, 2, 7))        # inverse access: answer -> index
    2
    >>> view[view.rank((3, 2, 7))]  # ... and it round-trips
    (3, 2, 7)
    >>> [tuple(answer) for answer in view[1:3]]   # slices are lazy views
    [(1, 2, 9), (3, 2, 7)]

The pre-facade entry points (``DirectAccess``, ``Preprocessing``, the
``repro.core.tasks`` free functions) keep working but are deprecated:
importing them from ``repro`` emits :class:`DeprecationWarning`.
"""

import warnings as _warnings

from repro.core import (
    AnswerTester,
    TightBounds,
    cheapest_order,
    classify,
    rank_orders,
    DisruptionFreeDecomposition,
    OrderlessFourCycleAccess,
    SelfJoinFreeAccess,
    fractional_hypertree_width,
    incompatibility_number,
    partial_order_access,
)
from repro.data import (
    Database,
    Delta,
    EncodedDatabase,
    Relation,
    WriteAheadLog,
)
from repro.facade import AnswerView, Connection, connect
from repro.session import (
    AccessSession,
    SessionRequest,
    SessionResponse,
)
from repro.engine import (
    available_engines,
    get_engine,
    set_engine,
    use_engine,
)
from repro.errors import (
    EngineError,
    NotAnAnswerError,
    OutOfBoundsError,
    ProtocolError,
    ReproError,
    StaleViewError,
)
from repro.query import (
    Atom,
    ConjunctiveQuery,
    JoinQuery,
    VariableOrder,
    parse_query,
)

__version__ = "1.10.0"

#: Pre-facade entry points, kept importable behind a deprecation
#: warning: name -> (module, attribute, replacement hint).
_DEPRECATED = {
    "DirectAccess": (
        "repro.core.access",
        "DirectAccess",
        "repro.connect(database).prepare(query, order=...)",
    ),
    "Preprocessing": (
        "repro.core.preprocessing",
        "Preprocessing",
        "repro.connect(database).prepare(query, order=...) "
        "(preprocessing and caching happen behind the connection)",
    ),
}


def __getattr__(name: str):
    """PEP 562 deprecation shims for the pre-facade entry points.

    The classes themselves are unchanged (the facade routes through
    them internally, without this warning); only reaching them through
    the top-level package warns, so new code is nudged to
    :func:`connect` while old code keeps working.
    """
    try:
        module_name, attribute, replacement = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    _warnings.warn(
        f"repro.{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


# DirectAccess and Preprocessing are intentionally absent: they remain
# importable (behind the __getattr__ deprecation shim) but a star
# import must not trigger the warning for users who never touch them.
__all__ = [
    "AccessSession",
    "AnswerTester",
    "AnswerView",
    "Atom",
    "Connection",
    "TightBounds",
    "cheapest_order",
    "classify",
    "connect",
    "rank_orders",
    "ConjunctiveQuery",
    "Database",
    "Delta",
    "DisruptionFreeDecomposition",
    "EncodedDatabase",
    "EngineError",
    "JoinQuery",
    "NotAnAnswerError",
    "OrderlessFourCycleAccess",
    "OutOfBoundsError",
    "ProtocolError",
    "Relation",
    "ReproError",
    "SelfJoinFreeAccess",
    "SessionRequest",
    "SessionResponse",
    "StaleViewError",
    "VariableOrder",
    "WriteAheadLog",
    "__version__",
    "available_engines",
    "fractional_hypertree_width",
    "get_engine",
    "incompatibility_number",
    "parse_query",
    "partial_order_access",
    "set_engine",
    "use_engine",
]
