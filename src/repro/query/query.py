"""Join queries and conjunctive queries (Section 2.1 of the paper).

A :class:`JoinQuery` is a full conjunctive query — its head contains every
variable of the body. A :class:`ConjunctiveQuery` may project variables
away. Queries may contain *self-joins* (the same relation symbol used by
several atoms).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.query.atoms import Atom


def _unique_in_order(items) -> tuple:
    seen = set()
    out = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return tuple(out)


@dataclass(frozen=True)
class JoinQuery:
    """A join query ``Q(u) :- R_1(x_1), ..., R_n(x_n)`` without projections.

    Attributes:
        atoms: the body atoms, in the order they were written.
        name: the head predicate name (cosmetic).
    """

    atoms: tuple[Atom, ...]
    name: str = "Q"

    def __post_init__(self) -> None:
        if not isinstance(self.atoms, tuple):
            object.__setattr__(self, "atoms", tuple(self.atoms))
        if not self.atoms:
            raise QueryError("a query needs at least one atom")
        arities: dict[str, int] = {}
        for atom in self.atoms:
            known = arities.setdefault(atom.relation, atom.arity)
            if known != atom.arity:
                raise QueryError(
                    f"relation {atom.relation} used with arities "
                    f"{known} and {atom.arity}"
                )

    @property
    def variables(self) -> tuple[str, ...]:
        """All variables, in order of first occurrence in the body."""
        return _unique_in_order(
            var for atom in self.atoms for var in atom.variables
        )

    @property
    def free_variables(self) -> tuple[str, ...]:
        """Join queries have no projections: every variable is free."""
        return self.variables

    @property
    def relation_symbols(self) -> tuple[str, ...]:
        """Distinct relation symbols, in order of first occurrence."""
        return _unique_in_order(atom.relation for atom in self.atoms)

    @property
    def has_self_joins(self) -> bool:
        """True when some relation symbol occurs in two different atoms."""
        return len(self.relation_symbols) < len(self.atoms)

    def arity_of(self, relation: str) -> int:
        """The arity a database must provide for ``relation``."""
        for atom in self.atoms:
            if atom.relation == relation:
                return atom.arity
        raise QueryError(f"relation {relation} does not occur in {self}")

    def scopes(self) -> tuple[frozenset[str], ...]:
        """Variable scopes of all atoms (the hyperedges of the query)."""
        return tuple(atom.scope for atom in self.atoms)

    def project(self, free: tuple[str, ...]) -> "ConjunctiveQuery":
        """Build the conjunctive query keeping only ``free`` in the head."""
        return ConjunctiveQuery(self.atoms, name=self.name, free=tuple(free))

    def signature(self) -> tuple:
        """A hashable identity of the query, ignoring the cosmetic name.

        Two queries with the same body atoms (same relation symbols
        applied to the same variables, in the same written order) and
        the same head get equal signatures even when their ``name``
        differs; session caches key on this instead of the query object
        so re-parsed requests share entries.
        """
        return (
            tuple(
                (atom.relation, atom.variables) for atom in self.atoms
            ),
            self.free_variables,
        )

    def __str__(self) -> str:
        head = f"{self.name}({', '.join(self.free_variables)})"
        return f"{head} :- {', '.join(str(a) for a in self.atoms)}"


@dataclass(frozen=True)
class ConjunctiveQuery(JoinQuery):
    """A conjunctive query: a join query whose head may omit variables."""

    free: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.free, tuple):
            object.__setattr__(self, "free", tuple(self.free))
        body_vars = set(self.variables)
        for var in self.free:
            if var not in body_vars:
                raise QueryError(f"head variable {var} not in the body")
        if len(set(self.free)) != len(self.free):
            raise QueryError("head variables must be distinct")

    @property
    def free_variables(self) -> tuple[str, ...]:
        return self.free

    @property
    def projected_variables(self) -> tuple[str, ...]:
        """Body variables that do not appear in the head."""
        head = set(self.free)
        return tuple(v for v in self.variables if v not in head)

    def as_join_query(self) -> JoinQuery:
        """Drop the projection, returning the underlying join query."""
        return JoinQuery(self.atoms, name=self.name)
