"""Query transformations used by the self-join machinery (Section 6).

* :func:`self_join_free_version` — replace relation symbols so that each
  symbol occurs in at most one atom (the query ``Q^sf`` of Theorem 33).
* :func:`colored_version` — add a fresh unary atom ``R_x(x)`` per variable
  (the query ``Q^c`` of Section 6.1).
* :func:`query_structure` — the finite structure ``A_Q`` whose
  homomorphisms into a database are exactly the query answers (Section 6.3).
"""

from __future__ import annotations

from itertools import permutations

from repro.query.atoms import Atom
from repro.query.query import JoinQuery

COLOR_PREFIX = "__color__"


def self_join_free_name(atom: Atom) -> str:
    """The canonical fresh symbol for ``atom`` in the self-join-free version.

    Mirrors the paper's ``R_{x1,...,xk}`` naming: the new symbol encodes
    the original symbol and the variable list, so two atoms get the same
    new symbol only if they are literally the same atom.
    """
    return f"{atom.relation}__{'_'.join(atom.variables)}"


def self_join_free_version(query: JoinQuery) -> JoinQuery:
    """Build a self-join-free version ``Q^sf`` of ``query``.

    Duplicate atoms (same symbol, same variable tuple) are merged, matching
    the set semantics of conjunction.
    """
    seen: set[Atom] = set()
    atoms: list[Atom] = []
    for atom in query.atoms:
        if atom in seen:
            continue
        seen.add(atom)
        atoms.append(Atom(self_join_free_name(atom), atom.variables))
    return JoinQuery(tuple(atoms), name=f"{query.name}_sf")


def color_symbol(variable: str) -> str:
    """Relation symbol of the unary color atom guarding ``variable``."""
    return f"{COLOR_PREFIX}{variable}"


def colored_version(query: JoinQuery) -> JoinQuery:
    """Build the colored version ``Q^c``: ``Q`` plus one ``R_x(x)`` per var."""
    color_atoms = tuple(
        Atom(color_symbol(v), (v,)) for v in query.variables
    )
    return JoinQuery(query.atoms + color_atoms, name=f"{query.name}_c")


def query_structure(query: JoinQuery) -> dict[str, set[tuple[str, ...]]]:
    """The structure ``A_Q`` of a query, as symbol -> set of variable tuples.

    An answer of ``query`` on database ``D`` is exactly a homomorphism from
    ``A_Q`` to ``D`` (Section 6.3).
    """
    structure: dict[str, set[tuple[str, ...]]] = {}
    for atom in query.atoms:
        structure.setdefault(atom.relation, set()).add(atom.variables)
    return structure


def _is_structure_homomorphism(
    structure: dict[str, set[tuple[str, ...]]], mapping: dict[str, str]
) -> bool:
    for tuples in structure.values():
        for tup in tuples:
            image = tuple(mapping[v] for v in tup)
            if image not in tuples:
                return False
    return True


def automorphisms(
    query: JoinQuery, fixed: tuple[str, ...] = ()
) -> list[dict[str, str]]:
    """All automorphisms of ``A_Q`` that fix every variable in ``fixed``.

    Brute force over permutations — fine under data complexity, where the
    query is constant-sized. Used by the self-join elimination pipeline
    (the ``aut(A_Q, c)`` count of Section 6.3).
    """
    variables = query.variables
    structure = query_structure(query)
    fixed_set = set(fixed)
    movable = [v for v in variables if v not in fixed_set]
    found: list[dict[str, str]] = []
    for image in permutations(movable):
        mapping = {v: v for v in fixed_set}
        mapping.update(dict(zip(movable, image)))
        if _is_structure_homomorphism(structure, mapping):
            found.append(mapping)
    return found
