"""Query model: atoms, join/conjunctive queries, orders, transforms."""

from repro.query.atoms import Atom
from repro.query.parser import parse_query
from repro.query.query import ConjunctiveQuery, JoinQuery
from repro.query.transforms import (
    colored_version,
    self_join_free_version,
)
from repro.query.variable_order import VariableOrder, all_orders

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "JoinQuery",
    "VariableOrder",
    "all_orders",
    "colored_version",
    "parse_query",
    "self_join_free_version",
]
