"""Atoms of conjunctive queries.

An atom ``R(x, y, x)`` pairs a relation symbol with a tuple of variables;
variables may repeat within an atom (the corresponding columns of a
matching database tuple must then be equal).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError


@dataclass(frozen=True)
class Atom:
    """One atom ``relation(v1, ..., vk)`` of a query.

    Attributes:
        relation: the relation symbol, e.g. ``"R"``.
        variables: the variable tuple in scope order; repeats allowed.
    """

    relation: str
    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise QueryError("atom needs a non-empty relation symbol")
        if not isinstance(self.variables, tuple):
            object.__setattr__(self, "variables", tuple(self.variables))
        if not self.variables:
            raise QueryError(f"atom {self.relation}() has no variables")

    @property
    def arity(self) -> int:
        """Number of columns of the relation this atom refers to."""
        return len(self.variables)

    @property
    def scope(self) -> frozenset[str]:
        """The *set* of variables occurring in the atom (repeats merged)."""
        return frozenset(self.variables)

    def matches(self, row: tuple, assignment: dict[str, object]) -> bool:
        """Check whether ``row`` is consistent with ``assignment``.

        ``row`` must have the atom's arity. Returns True when binding the
        atom's variables to the row's values neither conflicts with
        ``assignment`` nor with a repeated variable inside the atom.
        """
        seen: dict[str, object] = {}
        for var, value in zip(self.variables, row):
            if var in assignment and assignment[var] != value:
                return False
            if var in seen and seen[var] != value:
                return False
            seen[var] = value
        return True

    def binding(self, row: tuple) -> dict[str, object] | None:
        """Return the variable binding induced by ``row``, or None.

        None signals that ``row`` assigns conflicting values to a repeated
        variable of the atom.
        """
        bound: dict[str, object] = {}
        for var, value in zip(self.variables, row):
            if var in bound and bound[var] != value:
                return None
            bound[var] = value
        return bound

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"
