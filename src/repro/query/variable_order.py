"""Variable orderings and the lexicographic orders they induce.

A lexicographic order of a join query is specified by a permutation ``L``
of its variables (Section 2.1). Answers are compared by the first variable
of ``L`` on which they differ; the order on constants is the natural
Python ordering of the database domain.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import OrderError
from repro.query.query import JoinQuery


class VariableOrder:
    """A permutation of (a subset of) a query's variables.

    For full lexicographic direct access the order must cover all free
    variables; *partial* lexicographic orders (Section 8.3) cover only a
    prefix set and leave tie-breaking to the algorithm.
    """

    def __init__(self, variables: Sequence[str]):
        self._variables = tuple(variables)
        if len(set(self._variables)) != len(self._variables):
            raise OrderError(f"order {self._variables} repeats a variable")

    @property
    def variables(self) -> tuple[str, ...]:
        return self._variables

    def __iter__(self):
        return iter(self._variables)

    def __len__(self) -> int:
        return len(self._variables)

    def __getitem__(self, index: int) -> str:
        return self._variables[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, VariableOrder):
            return self._variables == other._variables
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._variables)

    def __repr__(self) -> str:
        return f"VariableOrder({list(self._variables)})"

    def position(self, variable: str) -> int:
        """0-based position of ``variable`` in the order."""
        try:
            return self._variables.index(variable)
        except ValueError:
            raise OrderError(f"{variable} is not in {self!r}") from None

    def validate_for(self, query: JoinQuery, partial: bool = False) -> None:
        """Check the order fits ``query``.

        A full order must be a permutation of the query's free variables; a
        partial order must use only free variables.
        """
        free = set(query.free_variables)
        extra = set(self._variables) - free
        if extra:
            raise OrderError(
                f"order mentions variables {sorted(extra)} that are not "
                f"free in {query}"
            )
        if not partial and set(self._variables) != free:
            missing = free - set(self._variables)
            raise OrderError(
                f"order is missing free variables {sorted(missing)}"
            )

    def key(self, answer: dict[str, object]) -> tuple:
        """Sort key of an answer (a variable->constant mapping)."""
        return tuple(answer[v] for v in self._variables)

    def key_of_tuple(
        self, answer: tuple, answer_variables: Sequence[str]
    ) -> tuple:
        """Sort key of an answer given as a tuple over ``answer_variables``."""
        index = {v: i for i, v in enumerate(answer_variables)}
        return tuple(answer[index[v]] for v in self._variables)

    def sort_answers(
        self, answers: Iterable[dict[str, object]]
    ) -> list[dict[str, object]]:
        """Sort answer mappings by the induced lexicographic order."""
        return sorted(answers, key=self.key)


def all_orders(query: JoinQuery) -> Iterable[VariableOrder]:
    """Yield every permutation of the query's free variables.

    Intended for small queries only (data complexity: the query is
    constant-sized); used e.g. to minimize the incompatibility number over
    orders (Proposition 45).
    """
    from itertools import permutations

    for perm in permutations(query.free_variables):
        yield VariableOrder(perm)
