"""A small parser for textual (conjunctive) queries.

Grammar (whitespace-insensitive)::

    query  :=  head ":-" body
    head   :=  NAME "(" vars ")"
    body   :=  atom ("," atom)*
    atom   :=  NAME "(" vars ")"
    vars   :=  NAME ("," NAME)*

If the head lists every body variable the result is a plain
:class:`~repro.query.query.JoinQuery`; otherwise the head defines the free
variables of a :class:`~repro.query.query.ConjunctiveQuery`.

Example:
    >>> q = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
    >>> q.variables
    ('x', 'y', 'z')
"""

from __future__ import annotations

import re

from repro.errors import QueryError
from repro.query.atoms import Atom
from repro.query.query import ConjunctiveQuery, JoinQuery

_NAME = r"[A-Za-z_][A-Za-z0-9_']*"
_ATOM_RE = re.compile(rf"\s*({_NAME})\s*\(([^()]*)\)\s*")


def _parse_atom_text(text: str) -> tuple[str, tuple[str, ...]]:
    match = _ATOM_RE.fullmatch(text)
    if match is None:
        raise QueryError(f"cannot parse atom {text!r}")
    name = match.group(1)
    variables = tuple(v.strip() for v in match.group(2).split(","))
    if any(not v for v in variables):
        raise QueryError(f"empty variable in atom {text!r}")
    for var in variables:
        if not re.fullmatch(_NAME, var):
            raise QueryError(f"bad variable name {var!r} in atom {text!r}")
    return name, variables


def _split_atoms(body: str) -> list[str]:
    """Split on commas that are not inside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise QueryError(f"unbalanced parentheses in {body!r}")
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise QueryError(f"unbalanced parentheses in {body!r}")
    parts.append("".join(current))
    return parts


def parse_query(text: str) -> JoinQuery:
    """Parse a textual query into a JoinQuery or ConjunctiveQuery.

    Raises :class:`~repro.errors.QueryError` on malformed input.
    """
    if ":-" not in text:
        raise QueryError(f"query {text!r} is missing ':-'")
    head_text, body_text = text.split(":-", 1)
    name, head_vars = _parse_atom_text(head_text)
    atoms = tuple(
        Atom(*_parse_atom_text(part)) for part in _split_atoms(body_text)
    )
    body_vars = {v for atom in atoms for v in atom.variables}
    if set(head_vars) == body_vars and len(set(head_vars)) == len(head_vars):
        return JoinQuery(atoms, name=name)
    return ConjunctiveQuery(atoms, name=name, free=head_vars)
