"""Named queries used throughout the paper.

Builders for the recurring query families:

* paths and cycles,
* the k-star query ``Q*_k`` of Section 4.1 (with its *bad* orders),
* Loomis-Whitney joins ``LW_k`` (Section 9.2), with ``LW_3`` the triangle,
* Example 5 (Figure 1) and Example 18 of the paper.
"""

from __future__ import annotations

from repro.query.atoms import Atom
from repro.query.query import ConjunctiveQuery, JoinQuery
from repro.query.variable_order import VariableOrder


def path_query(length: int, name: str = "Path") -> JoinQuery:
    """The path join ``Q(x1..x_{k+1}) :- R1(x1,x2), ..., Rk(xk,x_{k+1})``."""
    if length < 1:
        raise ValueError("a path needs at least one atom")
    atoms = tuple(
        Atom(f"R{i + 1}", (f"x{i + 1}", f"x{i + 2}"))
        for i in range(length)
    )
    return JoinQuery(atoms, name=name)


def cycle_query(length: int, name: str = "Cycle") -> JoinQuery:
    """The cycle join ``R1(x1,x2), ..., Rk(xk,x1)`` (the 4-cycle of §8.2)."""
    if length < 3:
        raise ValueError("a cycle needs at least three atoms")
    atoms = tuple(
        Atom(
            f"R{i + 1}",
            (f"x{i + 1}", f"x{(i + 1) % length + 1}"),
        )
        for i in range(length)
    )
    return JoinQuery(atoms, name=name)


def four_cycle_query() -> JoinQuery:
    """The query ``Q◦`` of Section 8.2."""
    return cycle_query(4, name="Q_cycle4")


def star_query(leaves: int, name: str | None = None) -> JoinQuery:
    """The k-star ``Q*_k(x1..xk, z) :- R1(x1,z), ..., Rk(xk,z)``."""
    if leaves < 1:
        raise ValueError("a star needs at least one leaf")
    atoms = tuple(
        Atom(f"R{i + 1}", (f"x{i + 1}", "z")) for i in range(leaves)
    )
    return JoinQuery(atoms, name=name or f"Q_star{leaves}")


def star_bad_order(leaves: int) -> VariableOrder:
    """A *bad* order for ``Q*_k``: the center ``z`` comes last."""
    return VariableOrder([f"x{i + 1}" for i in range(leaves)] + ["z"])


def star_good_order(leaves: int) -> VariableOrder:
    """A tractable order for ``Q*_k``: the center ``z`` comes first."""
    return VariableOrder(["z"] + [f"x{i + 1}" for i in range(leaves)])


def projected_star_query(leaves: int) -> ConjunctiveQuery:
    """``Q̄*_k``: the star with the center ``z`` projected away."""
    return star_query(leaves).project(
        tuple(f"x{i + 1}" for i in range(leaves))
    )


def loomis_whitney_query(k: int, name: str | None = None) -> JoinQuery:
    """``LW_k``: k atoms, atom i containing all variables except ``x_i``."""
    if k < 3:
        raise ValueError("Loomis-Whitney joins need k >= 3")
    variables = [f"x{i + 1}" for i in range(k)]
    atoms = tuple(
        Atom(
            f"R{i + 1}",
            tuple(v for j, v in enumerate(variables) if j != i),
        )
        for i in range(k)
    )
    return JoinQuery(atoms, name=name or f"LW{k}")


def triangle_query() -> JoinQuery:
    """``LW_3``, the (edge-colored) triangle query."""
    return loomis_whitney_query(3, name="Triangle")


def example5_query() -> JoinQuery:
    """Example 5 / Figure 1: R1(v1,v5), R2(v2,v4), R3(v3,v4), R4(v3,v5)."""
    return JoinQuery(
        (
            Atom("R1", ("v1", "v5")),
            Atom("R2", ("v2", "v4")),
            Atom("R3", ("v3", "v4")),
            Atom("R4", ("v3", "v5")),
        ),
        name="Example5",
    )


def example5_order() -> VariableOrder:
    """The order (v1, v2, v3, v4, v5) of Example 5."""
    return VariableOrder(["v1", "v2", "v3", "v4", "v5"])


def example18_query() -> JoinQuery:
    """Example 18: Example 5 plus R5(v1,v2), R6(v2,v3), R7(v1,v3).

    Cyclic, no disruptive trios for the order of Example 5, and
    incompatibility number exactly 3/2.
    """
    return JoinQuery(
        example5_query().atoms
        + (
            Atom("R5", ("v1", "v2")),
            Atom("R6", ("v2", "v3")),
            Atom("R7", ("v1", "v3")),
        ),
        name="Example18",
    )


def running_selfjoin_query() -> JoinQuery:
    """Example 37: ``Q(x, y, z) :- R(x), R(y), R(z)``."""
    return JoinQuery(
        (Atom("R", ("x",)), Atom("R", ("y",)), Atom("R", ("z",))),
        name="Example37",
    )
