"""Deterministic fault injection and the model-checked chaos suite.

Light by design: importing this package (which :mod:`repro.data.wal`
and the server modules do for their injection hooks) pulls in only the
:mod:`~repro.chaos.faults` registry.  The workload generator, shadow
model, and runner live in their own modules and import the serving
stack lazily::

    from repro.chaos import faults          # fire()/arm()/FAULT_POINTS
    from repro.chaos.runner import run_chaos
"""

from __future__ import annotations

from repro.chaos.faults import (
    FAULT_POINTS,
    ChaosCrash,
    ChaosPlan,
    arm,
    armed,
    disarm,
    fire,
)

__all__ = [
    "FAULT_POINTS",
    "ChaosCrash",
    "ChaosPlan",
    "arm",
    "armed",
    "disarm",
    "fire",
]
