"""The chaos runner: drive, crash, restart, model-check, report.

One run is fully determined by ``(seed, ops, faults, engine, procs)``:
the seed fixes the initial database, the op stream, and every fault
schedule, so any failure replays from its report's reproduction line
alone.  The runner drives :class:`~repro.server.http.ServingCore`
directly (transport-independent — the wire layers are differential-
tested elsewhere) and treats :class:`~repro.chaos.faults.ChaosCrash`
as the process-death boundary: the core is torn down and a fresh one
boots from the same WAL, exactly like a supervised restart, after
which the shadow model asserts convergence.

A run always ends with one clean restart + convergence check, so a
*silent* lost write (no crash anywhere) is still caught — that is
what the mutation-of-the-checker test leans on.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field

from repro.chaos import faults
from repro.chaos.faults import ChaosCrash
from repro.chaos.model import ShadowModel, Violation
from repro.chaos.workload import Workload, WorkloadOp, seed_database

#: Default fault plan: every durability-path site, each on its own
#: cadence so crashes interleave with clean traffic.
WAL_FAULTS = (
    "wal.fsync:nth=13,wal.torn_write:nth=29,wal.corrupt_crc:nth=37"
)
POOL_FAULTS = (
    "pool.crash_before_publish:nth=43,"
    "pool.crash_after_publish:nth=53,pool.slow_ping:nth=7"
)

#: Read failures chaos may legitimately cause (a killed worker, an
#: evicted snapshot): tolerated, never adopted as state.
_TOLERATED_READ_ERRORS = frozenset(
    {"StaleViewError", "WorkerCrashError", "OverloadedError"}
)


def default_faults(procs: int | None) -> str:
    return WAL_FAULTS + ("," + POOL_FAULTS if procs else "")


@dataclass
class ChaosReport:
    """The verdict plus everything needed to replay it."""

    seed: int
    ops: int
    faults: str
    engine: str
    procs: int | None
    verdict: str = "pass"
    executed: int = 0
    crashes: int = 0
    restarts: int = 0
    ops_survived: int = 0
    violations: list = field(default_factory=list)
    fault_counters: dict = field(default_factory=dict)
    repro: str | None = None

    def fingerprint(self) -> dict:
        """Everything deterministic in the run — two runs with the
        same parameters must produce identical fingerprints (the
        double-run acceptance test compares exactly this)."""
        return {
            "seed": self.seed,
            "ops": self.ops,
            "faults": self.faults,
            "engine": self.engine,
            "procs": self.procs,
            "verdict": self.verdict,
            "executed": self.executed,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "ops_survived": self.ops_survived,
            "violations": [v.as_dict() for v in self.violations],
            "fault_counters": self.fault_counters,
        }

    def as_dict(self) -> dict:
        out = self.fingerprint()
        out["repro"] = self.repro
        return out


def _build_request(op: WorkloadOp, query: str, order):
    from repro.session.protocol import SessionRequest

    params = op.params
    if op.kind == "apply":
        delta = params["delta"]
        return SessionRequest(
            op="apply",
            inserts={
                name: sorted(rows)
                for name, rows in delta.inserts.items()
            },
            deletes={
                name: sorted(rows)
                for name, rows in delta.deletes.items()
            },
        )
    if op.kind == "db_version":
        return SessionRequest(op="db_version")
    shared = {"query": query, "order": tuple(order)}
    if op.kind == "access":
        return SessionRequest(
            op="access", indices=params["indices"], **shared
        )
    if op.kind == "count":
        return SessionRequest(op="count", **shared)
    if op.kind == "median":
        return SessionRequest(op="median", **shared)
    if op.kind == "page":
        return SessionRequest(
            op="page",
            page_number=params["page_number"],
            page_size=params["page_size"],
            **shared,
        )
    if op.kind == "rank":
        return SessionRequest(op="rank", answer=params["answer"], **shared)
    if op.kind == "pinned_access":
        return SessionRequest(
            op="access",
            indices=params["indices"],
            db_version=params["db_version"],
            **shared,
        )
    if op.kind == "pinned_count":
        return SessionRequest(
            op="count", db_version=params["db_version"], **shared
        )
    raise ValueError(f"unbuildable workload op {op.kind!r}")


def _check_read(op: WorkloadOp, response, model: ShadowModel, index):
    """Compare an ok read response against the model's reference view."""
    pinned = op.kind in ("pinned_access", "pinned_count")
    version = op.params["db_version"] if pinned else None
    result = response.result

    def bad(detail):
        return [Violation(index, "read_divergence", f"{op.kind}: {detail}")]

    served_version = result.get("db_version")
    expected_version = version if pinned else model.db_version
    if served_version is not None and served_version != expected_version:
        return bad(
            f"served db_version {served_version}, expected "
            f"{expected_version}"
        )
    if op.kind in ("count", "pinned_count"):
        expected = model.count(version)
        if result["count"] != expected:
            return bad(f"count {result['count']}, expected {expected}")
    elif op.kind in ("access", "pinned_access"):
        expected = model.answers_at(op.params["indices"], version)
        if result["answers"] != expected:
            return bad(
                f"answers at {op.params['indices']} diverge from the "
                "model snapshot"
            )
    elif op.kind == "page":
        view = model.view()
        expected = [
            list(row)
            for row in view.page(
                op.params["page_number"], op.params["page_size"]
            )
        ]
        if result["answers"] != expected:
            return bad("page contents diverge from the model")
    elif op.kind == "median":
        expected = list(model.view().median())
        if result["answer"] != expected:
            return bad(
                f"median {result['answer']}, expected {expected}"
            )
    elif op.kind == "rank":
        expected = model.view().ranks([tuple(op.params["answer"])])[0]
        if result["rank"] != expected:
            return bad(
                f"rank {result['rank']}, expected {expected}"
            )
    elif op.kind == "db_version":
        if result["db_version"] != model.db_version:
            return bad(
                f"db_version {result['db_version']}, model holds "
                f"{model.db_version}"
            )
    return []


def run_chaos(
    seed: int = 1,
    ops: int = 300,
    faults_spec: str | None = None,
    engine: str | None = None,
    procs: int | None = None,
    quick: bool = False,
    workers: int = 2,
) -> ChaosReport:
    """One full chaos run; see the module docstring.  Deterministic:
    equal arguments produce an identical
    :meth:`ChaosReport.fingerprint`."""
    from repro.data.wal import WriteAheadLog
    from repro.server.http import ServingCore

    spec = faults_spec if faults_spec is not None else default_faults(procs)
    armed_spec = None
    if spec:
        armed_spec = spec if "seed=" in spec else f"seed={seed},{spec}"
        faults.ChaosPlan(armed_spec)  # validate site names up front
    database = seed_database(seed ^ 0x5EED, size=16 if quick else 48)
    wal_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    wal_path = os.path.join(wal_dir, "chaos.wal")
    # Seed the log before arming anything: server boots then replay
    # without appending, so no fault can fire during boot and wedge
    # the restart cycle.
    with WriteAheadLog(wal_path) as wal:
        wal.recover(database, seed=True)

    model = ShadowModel(database)
    workload = Workload(seed)
    counters: dict[str, dict[str, int]] = {}

    def harvest() -> None:
        plan = faults.active_plan()
        if plan is None:
            return
        for site, counts in plan.counters().items():
            bucket = counters.setdefault(
                site, {"calls": 0, "fired": 0}
            )
            bucket["calls"] += counts["calls"]
            bucket["fired"] += counts["fired"]

    def boot() -> ServingCore:
        return ServingCore(
            database,
            engine=engine,
            workers=workers,
            capacity=32,
            procs=procs,
            wal=wal_path,
            chaos=armed_spec,
        )

    def shutdown(core) -> None:
        harvest()
        try:
            core.close(timeout=10.0)
        except Exception:  # the core is being discarded post-crash
            faults.disarm()

    report = ChaosReport(
        seed=seed,
        ops=ops,
        faults=spec or "",
        engine="",
        procs=procs,
    )
    core = boot()
    report.engine = core.store.engine.name
    violations: list[Violation] = []
    try:
        for index in range(ops):
            op = workload.next_op(model)
            if op.kind == "pin":
                model.pin()
                report.executed += 1
                continue
            request = _build_request(op, model.query, model.order)
            if op.kind == "apply":
                model.begin_mutation(op.params["delta"])
            try:
                response = core.execute(request)
            except ChaosCrash:
                report.crashes += 1
                shutdown(core)
                core = boot()
                report.restarts += 1
                violations.extend(
                    model.reconcile_restart(
                        core.store.database,
                        core.store.db_version,
                        index,
                    )
                )
                if violations:
                    break
                continue
            report.executed += 1
            if op.kind == "apply":
                if response.ok:
                    violations.extend(
                        model.ack_mutation(
                            response.result["db_version"], index
                        )
                    )
                else:
                    model.abort_mutation()
                    if response.error_type not in _TOLERATED_READ_ERRORS:
                        violations.append(
                            Violation(
                                index,
                                "unexpected_error",
                                f"apply refused: "
                                f"{response.error_type}: "
                                f"{response.error}",
                            )
                        )
            elif response.ok:
                violations.extend(
                    _check_read(op, response, model, index)
                )
            else:
                if response.error_type not in _TOLERATED_READ_ERRORS:
                    violations.append(
                        Violation(
                            index,
                            "unexpected_error",
                            f"{op.kind} failed: {response.error_type}: "
                            f"{response.error}",
                        )
                    )
                elif response.error_type == "StaleViewError" and (
                    op.kind in ("pinned_access", "pinned_count")
                ):
                    model.drop_pin(op.params["db_version"])
            if violations:
                break
        if not violations:
            # The closing convergence check: a clean restart must land
            # exactly on the model, crash or no crash — this is the
            # pass that catches *silent* lost writes.
            shutdown(core)
            core = boot()
            report.restarts += 1
            violations.extend(
                model.reconcile_restart(
                    core.store.database, core.store.db_version, ops
                )
            )
    finally:
        shutdown(core)
        shutil.rmtree(wal_dir, ignore_errors=True)
    report.violations = violations
    report.ops_survived = (
        violations[0].op_index if violations else report.executed
    )
    report.fault_counters = counters
    if violations:
        report.verdict = "fail"
        # The op stream is a deterministic prefix, so the minimal
        # reproduction is simply the run cut right after the first
        # violating op.
        line = (
            f"repro chaos --seed {seed} "
            f"--ops {violations[0].op_index + 1}"
        )
        if spec is not None and spec != default_faults(procs):
            line += f" --faults '{spec}'"
        if procs:
            line += f" --procs {procs}"
        if quick:
            line += " --quick"
        line += f" --engine {report.engine}"
        report.repro = line
    return report


__all__ = [
    "ChaosReport",
    "POOL_FAULTS",
    "WAL_FAULTS",
    "default_faults",
    "run_chaos",
]
