"""Seeded, shrinkable delta generation.

Shared between the chaos workload (:mod:`repro.chaos.workload`) and
the mutation property tests (``tests/test_mutations.py``): one
generator, one distribution, so a failure found by either harness
replays in the other.  :func:`shrink_deltas` turns a failing sequence
into a minimal one — the reported reproduction is the smallest delta
list (fewest deltas, then fewest rows) that still trips the predicate.
"""

from __future__ import annotations

import random

from repro.data.delta import Delta


def uniform_draw(rng: random.Random, max_value: int) -> int:
    return rng.randint(0, max_value)


def zipf_draw(rng: random.Random, max_value: int) -> int:
    """A Zipf-flavoured value in ``[0, max_value]``: low values are
    drawn far more often (log-uniform inverse CDF — cheap, seeded,
    and skewed enough to model hot keys)."""
    return int((max_value + 1) ** rng.random()) - 1


def random_delta(
    rng: random.Random,
    database,
    max_value: int = 40,
    draw=None,
) -> Delta:
    """One random delta against ``database``.

    Each relation is touched with probability one half; a touched
    relation gets up to three inserted rows (values via ``draw``,
    uniform by default) and, with probability 0.6, a random non-empty
    subset of its existing rows deleted.  Inserts may duplicate
    existing rows and deletes may race inserts — the *effective* delta
    computation downstream is exactly what this distribution
    exercises.
    """
    if draw is None:
        draw = uniform_draw
    inserts: dict = {}
    deletes: dict = {}
    for name, relation in database.relations.items():
        if rng.random() < 0.5:
            continue
        inserts[name] = {
            tuple(draw(rng, max_value) for _ in range(relation.arity))
            for _ in range(rng.randint(0, 3))
        }
        existing = sorted(relation.tuples)
        if existing and rng.random() < 0.6:
            deletes[name] = set(
                rng.sample(existing, rng.randint(1, len(existing)))
            )
    return Delta(inserts=inserts, deletes=deletes)


def delta_sequence(
    seed: int,
    database,
    length: int,
    max_value: int = 40,
    draw=None,
) -> list[Delta]:
    """A seeded sequence of deltas, each generated against the
    database state the previous ones produced (so deletes keep finding
    rows as the history evolves)."""
    rng = random.Random(seed)
    out: list[Delta] = []
    current = database
    for _ in range(length):
        delta = random_delta(rng, current, max_value=max_value, draw=draw)
        out.append(delta)
        current = current.apply(delta)
    return out


def _drop_row(delta: Delta, side: str, name: str, row) -> Delta:
    """``delta`` without ``row`` in ``side``'s ``name`` relation."""
    sides = {
        "inserts": {k: set(v) for k, v in delta.inserts.items()},
        "deletes": {k: set(v) for k, v in delta.deletes.items()},
    }
    sides[side][name] = sides[side][name] - {row}
    if not sides[side][name]:
        del sides[side][name]
    return Delta(inserts=sides["inserts"], deletes=sides["deletes"])


def shrink_deltas(deltas: list[Delta], fails) -> list[Delta]:
    """Minimize a failing delta sequence.

    ``fails(sequence)`` must be a deterministic predicate that is True
    for ``deltas``.  Two greedy passes: drop contiguous chunks of the
    sequence (ddmin-style, halving chunk sizes), then drop individual
    rows inside the surviving deltas.  The result still fails and is
    locally minimal — no single delta and no single row can be removed
    without the failure disappearing.
    """
    if not fails(deltas):
        raise ValueError("shrink_deltas needs a failing sequence")
    current = list(deltas)
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + chunk :]
            if fails(candidate):
                current = candidate
            else:
                index += chunk
        chunk //= 2
    for index in range(len(current)):
        for side in ("inserts", "deletes"):
            # Snapshot the rows up front: successful drops rewrite
            # ``current[index]``, so re-check membership as we go.
            snapshot = {
                name: sorted(rows)
                for name, rows in getattr(current[index], side).items()
            }
            for name in sorted(snapshot):
                for row in snapshot[name]:
                    live = getattr(current[index], side).get(name, ())
                    if row not in live:
                        continue
                    slim = _drop_row(current[index], side, name, row)
                    candidate = (
                        current[:index]
                        + [slim]
                        + current[index + 1 :]
                    )
                    if fails(candidate):
                        current = candidate
    return current


__all__ = [
    "delta_sequence",
    "random_delta",
    "shrink_deltas",
    "uniform_draw",
    "zipf_draw",
]
