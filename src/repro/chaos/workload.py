"""The seeded mixed-traffic generator for the chaos runner.

Produces an interleaved stream of protocol operations — prepare-backed
reads (count / access / page / rank / median), snapshot pins and
pinned reads, version probes, and ``apply`` mutations — with
Zipf-skewed values so hot keys collide the way production traffic
does.  Every draw comes from one ``random.Random(seed)``, and
parameters that depend on run state (an index must be inside the
current answer count) are derived from the *model's* state, which is
itself deterministic — so one seed fixes the entire op stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chaos.deltas import random_delta, zipf_draw
from repro.chaos.model import DEFAULT_ORDER, DEFAULT_QUERY, ShadowModel
from repro.data.database import Database

#: (kind, weight) — mutations are deliberately heavy so fault points
#: in the durability path fire often.
_MIX = (
    ("apply", 30),
    ("access", 18),
    ("count", 12),
    ("page", 9),
    ("rank", 8),
    ("median", 5),
    ("db_version", 4),
    ("pin", 6),
    ("pinned_access", 8),
)


@dataclass(frozen=True)
class WorkloadOp:
    """One generated operation: a kind plus concrete parameters."""

    kind: str
    params: dict = field(default_factory=dict)


def seed_database(
    seed: int, size: int = 48, max_value: int = 30
) -> Database:
    """A Zipf-skewed two-relation database for the workload query."""
    rng = random.Random(seed)

    def rows(count):
        out = {
            (zipf_draw(rng, max_value), zipf_draw(rng, max_value))
            for _ in range(count)
        }
        out.add((1, 2))  # never empty, always one joinable pair
        return out

    base = rows(size)
    return Database(
        {"R": base, "S": rows(max(4, size // 4)) | {(2, 3)}}
    )


class Workload:
    """Draws the next op given the shadow model's current state."""

    def __init__(
        self,
        seed: int,
        max_value: int = 30,
        query: str = DEFAULT_QUERY,
        order=DEFAULT_ORDER,
    ):
        self.rng = random.Random(seed)
        self.max_value = max_value
        self.query = query
        self.order = tuple(order)
        self._kinds = [kind for kind, _ in _MIX]
        self._weights = [weight for _, weight in _MIX]

    def _indices(self, count: int) -> list[int]:
        """1–3 valid, Zipf-skewed (head-heavy) answer indices."""
        return [
            min(count - 1, zipf_draw(self.rng, count - 1))
            for _ in range(self.rng.randint(1, 3))
        ]

    def next_op(self, model: ShadowModel) -> WorkloadOp:
        kind = self.rng.choices(self._kinds, self._weights)[0]
        count = model.count()
        if kind in ("access", "rank", "median") and count == 0:
            kind = "count"  # nothing to index into; probe the count
        if kind == "pinned_access" and not model.pins:
            kind = "pin"
        if kind == "apply":
            delta = random_delta(
                self.rng,
                model.database,
                max_value=self.max_value,
                draw=zipf_draw,
            )
            return WorkloadOp("apply", {"delta": delta})
        if kind == "access":
            return WorkloadOp(
                "access", {"indices": self._indices(count)}
            )
        if kind == "page":
            page_size = self.rng.randint(1, 5)
            pages = max(1, count // page_size + 1)
            return WorkloadOp(
                "page",
                {
                    "page_number": self.rng.randrange(pages),
                    "page_size": page_size,
                },
            )
        if kind == "rank":
            if self.rng.random() < 0.7:
                # An answer that exists: its rank must come back exact.
                index = min(count - 1, zipf_draw(self.rng, count - 1))
                answer = model.answers_at([index])[0]
            else:
                # A probably-absent tuple: rank must come back null.
                answer = [
                    zipf_draw(self.rng, self.max_value)
                    for _ in self.order
                ]
            return WorkloadOp("rank", {"answer": answer})
        if kind == "pinned_access":
            version = self.rng.choice(sorted(model.pins))
            pinned_count = model.count(version)
            if pinned_count == 0:
                return WorkloadOp(
                    "pinned_count", {"db_version": version}
                )
            return WorkloadOp(
                "pinned_access",
                {
                    "db_version": version,
                    "indices": self._indices(pinned_count),
                },
            )
        # count / median / db_version / pin carry no parameters.
        return WorkloadOp(kind)


__all__ = ["Workload", "WorkloadOp", "seed_database"]
