"""Deterministic fault injection: named sites, seeded schedules.

Production failure modes — a disk that errors under ``fsync``, a torn
record at the WAL tail, a worker process that dies mid-request, a
shard replica that stops answering — are rare by construction and
therefore almost never exercised.  This module makes them *cheap to
summon and exact to replay*: every injection site in the codebase is a
named entry in :data:`FAULT_POINTS`, and an armed :class:`ChaosPlan`
decides, deterministically from a seed, which calls to a site actually
misbehave.

Design constraints, in order:

* **zero overhead disarmed** — every hook is ``faults.fire("name")``,
  which is a module-global read and a ``None`` check when no plan is
  armed.  Production code pays nothing for carrying the hooks.
* **deterministic** — schedules are counters (``nth=N``, ``once``) or
  draws from a ``random.Random`` seeded by ``(plan seed, site name)``,
  so the same spec + seed fires at exactly the same calls, every run.
* **inheritable** — worker *processes* (spawned fresh, no fork state)
  arm themselves from the ``REPRO_CHAOS`` environment variable at
  import, or from the ``chaos`` field on their
  :class:`~repro.server.worker.WorkerSpec`, so a plan armed on the
  supervisor reaches the whole tree.

The spec grammar (also what ``REPRO_CHAOS`` holds)::

    seed=7,wal.fsync:nth=3,client.timeout:p=0.25,shm.attach:once

Entries are comma- (or semicolon-) separated.  ``seed=N`` seeds the
probabilistic schedules; each other entry is ``<site>[:<schedule>]``
where the schedule is ``once`` (first call only — the default),
``nth=N`` (every N-th call), or ``p=X`` (each call independently with
probability X).
"""

from __future__ import annotations

import os
import random
import threading
import zlib
from contextlib import contextmanager

#: Every injection site in the codebase, by name.  The docs-sync suite
#: pins this registry against the "Failure model" section of
#: ``docs/architecture.md`` — adding a site here without documenting
#: its invariant there fails the build.
FAULT_POINTS: dict[str, str] = {
    "wal.fsync": (
        "the record is written and flushed, then the process dies "
        "before fsync acknowledges (durable but unacknowledged)"
    ),
    "wal.torn_write": (
        "the process dies midway through writing a record: a partial "
        "line with no trailing newline is left at the tail"
    ),
    "wal.corrupt_crc": (
        "a full record line is written whose checksum does not match "
        "its payload, then the process dies"
    ),
    "pool.crash_before_publish": (
        "a worker process is killed after receiving a request but "
        "before publishing its response on the control pipe"
    ),
    "pool.crash_after_publish": (
        "a worker process is killed immediately after its response "
        "was published (the client saw the acknowledgement)"
    ),
    "pool.slow_ping": (
        "a worker answers its health ping only after an injected delay"
    ),
    "shm.attach": (
        "attaching a published shared-memory segment fails (the OS "
        "name is gone or the open races a teardown)"
    ),
    "client.timeout": (
        "an HTTP client request times out before any byte arrives"
    ),
    "client.disconnect": (
        "the remote peer resets the connection mid-body"
    ),
    "client.http_500": (
        "the remote answers with a 5xx and an unparseable body"
    ),
}

#: Environment variable holding a chaos spec; read once at import so
#: spawned worker processes inherit the plan with no plumbing.
ENV_VAR = "REPRO_CHAOS"


class ChaosCrash(Exception):
    """A simulated process death at a fault point.

    Deliberately *not* a :class:`~repro.errors.ReproError`: nothing in
    the serving stack may catch and acknowledge past it — it must
    unwind like the process really died (the chaos runner treats it as
    the crash boundary and restarts the server from its WAL).
    """

    def __init__(self, site: str):
        super().__init__(f"chaos: injected crash at fault point {site!r}")
        self.site = site


class _Schedule:
    """One site's firing rule plus its call/fire counters."""

    __slots__ = ("kind", "param", "calls", "fired", "_rng")

    def __init__(self, kind: str, param: float, seed: int, site: str):
        self.kind = kind
        self.param = param
        self.calls = 0
        self.fired = 0
        # Per-site stream: the draw sequence depends only on the plan
        # seed and the site name, never on dict ordering or timing.
        self._rng = random.Random(seed ^ zlib.crc32(site.encode()))

    def fire(self) -> bool:
        self.calls += 1
        if self.kind == "once":
            hit = self.calls == 1
        elif self.kind == "nth":
            hit = self.calls % int(self.param) == 0
        else:  # "p"
            hit = self._rng.random() < self.param
        if hit:
            self.fired += 1
        return hit


def _parse_schedule(text: str, seed: int, site: str) -> _Schedule:
    if text == "once":
        return _Schedule("once", 1, seed, site)
    if text.startswith("nth="):
        nth = int(text[4:])
        if nth < 1:
            raise ValueError(f"chaos schedule {text!r}: nth must be >= 1")
        return _Schedule("nth", nth, seed, site)
    if text.startswith("p="):
        p = float(text[2:])
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"chaos schedule {text!r}: p must be in [0, 1]")
        return _Schedule("p", p, seed, site)
    raise ValueError(
        f"unknown chaos schedule {text!r} (want once, nth=N, or p=X)"
    )


class ChaosPlan:
    """A parsed spec: which sites fire, on which calls.

    Thread-safe: :meth:`fire` serializes on a lock so counters stay
    exact under the threaded front end.
    """

    def __init__(self, spec: str, seed: int | None = None):
        self.spec = spec
        entries = [
            entry.strip()
            for entry in spec.replace(";", ",").split(",")
            if entry.strip()
        ]
        parsed_seed = 0
        site_texts: list[tuple[str, str]] = []
        for entry in entries:
            if entry.startswith("seed="):
                parsed_seed = int(entry[5:])
                continue
            site, _, schedule = entry.partition(":")
            site = site.strip()
            if site not in FAULT_POINTS:
                known = ", ".join(sorted(FAULT_POINTS))
                raise ValueError(
                    f"unknown fault point {site!r} (known: {known})"
                )
            site_texts.append((site, schedule.strip() or "once"))
        self.seed = parsed_seed if seed is None else int(seed)
        self._sites = {
            site: _parse_schedule(schedule, self.seed, site)
            for site, schedule in site_texts
        }
        self._lock = threading.Lock()

    def fire(self, site: str) -> bool:
        schedule = self._sites.get(site)
        if schedule is None:
            return False
        with self._lock:
            return schedule.fire()

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-site ``{"calls": N, "fired": M}`` for reports."""
        with self._lock:
            return {
                site: {"calls": s.calls, "fired": s.fired}
                for site, s in sorted(self._sites.items())
            }

    @property
    def fired_total(self) -> int:
        with self._lock:
            return sum(s.fired for s in self._sites.values())

    def sites(self) -> tuple[str, ...]:
        return tuple(sorted(self._sites))

    def __repr__(self) -> str:
        return f"ChaosPlan({self.spec!r}, seed={self.seed})"


# The armed plan.  ``None`` is the production state: every fire() is a
# global read + None check.  Import-time env arming means spawn-started
# worker processes (which import this module fresh) inherit the plan.
_PLAN: ChaosPlan | None = None
if os.environ.get(ENV_VAR):
    _PLAN = ChaosPlan(os.environ[ENV_VAR])


def fire(site: str) -> bool:
    """Should this call to ``site`` misbehave?  False when disarmed."""
    plan = _PLAN
    if plan is None:
        return False
    return plan.fire(site)


def crash(site: str) -> None:
    """Raise :class:`ChaosCrash` if ``site`` fires on this call."""
    if fire(site):
        raise ChaosCrash(site)


def arm(spec: str | ChaosPlan, seed: int | None = None) -> ChaosPlan:
    """Arm a plan process-wide (replacing any armed one); returns it."""
    global _PLAN
    plan = spec if isinstance(spec, ChaosPlan) else ChaosPlan(spec, seed)
    _PLAN = plan
    return plan


def disarm() -> None:
    """Return to the zero-overhead production state."""
    global _PLAN
    _PLAN = None


def active_plan() -> ChaosPlan | None:
    return _PLAN


@contextmanager
def armed(spec: str | ChaosPlan, seed: int | None = None):
    """``with faults.armed("client.timeout:once"):`` — for tests."""
    global _PLAN
    previous = _PLAN
    plan = arm(spec, seed)
    try:
        yield plan
    finally:
        _PLAN = previous


__all__ = [
    "ENV_VAR",
    "FAULT_POINTS",
    "ChaosCrash",
    "ChaosPlan",
    "active_plan",
    "arm",
    "armed",
    "crash",
    "disarm",
    "fire",
]
