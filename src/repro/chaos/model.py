"""The shadow model: a `PythonEngine` oracle for the chaos workload.

The model tracks what the server is *obliged* to contain: every
acknowledged mutation, nothing else.  Reads are checked against a
reference view prepared over the model database with the pure-Python
engine (the repo's cross-engine differential suite already proves the
engines bit-identical, so the Python engine is a sound oracle for
whichever engine serves).

The only honest uncertainty is the in-flight window: with
append-before-apply, a crash *during* a mutation may leave the record
durable (the ``wal.fsync`` fault — written and flushed, never
acknowledged) or not (``wal.torn_write`` / ``wal.corrupt_crc`` — the
tail is dropped on reopen).  :meth:`reconcile_restart` therefore
accepts exactly two outcomes — the model state, or the model state
plus the one pending delta — and anything else is a violation:

* recovered version below the model: an **acknowledged write was
  lost**;
* recovered version above model + pending: an **unacknowledged write
  was resurrected** (or versions were minted from nowhere);
* version right but contents different: **state divergence**.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The one query the workload exercises (same shape as the serving
#: suites: a binary join with a shared variable).
DEFAULT_QUERY = "Q(x, y, z) :- R(x, y), S(y, z)"
DEFAULT_ORDER = ("x", "y", "z")


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough context to read the verdict."""

    op_index: int
    kind: str
    detail: str

    def as_dict(self) -> dict:
        return {
            "op_index": self.op_index,
            "kind": self.kind,
            "detail": self.detail,
        }


class ShadowModel:
    """Authoritative expected state; see the module docstring."""

    def __init__(self, database, query=DEFAULT_QUERY, order=DEFAULT_ORDER):
        self.database = database
        self.db_version = 0
        self.query = query
        self.order = tuple(order)
        #: The effective delta of the one mutation in flight (set on
        #: crash, cleared by ack/abort/reconcile).
        self.pending = None
        #: Pinned MVCC snapshots: version -> the model database then.
        self.pins: dict[int, object] = {}
        self._views: dict[int, object] = {}

    # -- reference views ---------------------------------------------------

    def _view_over(self, database):
        import repro

        return repro.connect(database, engine="python").prepare(
            self.query, order=list(self.order)
        )

    def view(self, version: int | None = None):
        """The reference view at ``version`` (default: head).  Cached
        per version; the cache is pruned to head + pins on mutation."""
        if version is None:
            version = self.db_version
        if version not in self._views:
            database = (
                self.database
                if version == self.db_version
                else self.pins[version]
            )
            self._views[version] = self._view_over(database)
        return self._views[version]

    def count(self, version: int | None = None) -> int:
        return len(self.view(version))

    def answers_at(self, indices, version: int | None = None):
        return [
            list(row) for row in self.view(version).tuples_at(indices)
        ]

    # -- pins --------------------------------------------------------------

    def pin(self, limit: int = 3) -> int:
        """Remember the current version as a pinned snapshot."""
        self.pins[self.db_version] = self.database
        while len(self.pins) > limit:
            evicted = min(self.pins)
            del self.pins[evicted]
            self._views.pop(evicted, None)
        return self.db_version

    def drop_pin(self, version: int) -> None:
        self.pins.pop(version, None)
        self._views.pop(version, None)

    # -- mutations ---------------------------------------------------------

    def begin_mutation(self, delta):
        """Called before the request is issued; returns the effective
        delta (what an ack would commit)."""
        effective = delta.effective_against(self.database)
        self.pending = effective
        return effective

    def _commit_pending(self) -> None:
        self.database = self.database.apply(self.pending)
        self.db_version += 1
        self._views = {
            version: view
            for version, view in self._views.items()
            if version in self.pins
        }
        self.pending = None

    def ack_mutation(self, result_version, op_index) -> list[Violation]:
        """The server acknowledged the in-flight mutation at
        ``result_version``; commit and check the version arithmetic."""
        out = []
        bump = 0 if self.pending is None or self.pending.is_empty else 1
        expected = self.db_version + bump
        if bump:
            self._commit_pending()
        else:
            self.pending = None
        if result_version != expected:
            out.append(
                Violation(
                    op_index,
                    "version_mismatch",
                    f"mutation acknowledged at db_version "
                    f"{result_version}, model expected {expected}",
                )
            )
            # Trust the server's arithmetic no further; adopt nothing.
        return out

    def abort_mutation(self) -> None:
        """The server refused the mutation while alive: with
        append-before-apply, a refusal means no record was written."""
        self.pending = None

    # -- crash + restart ---------------------------------------------------

    def reconcile_restart(
        self, recovered_database, recovered_version, op_index
    ) -> list[Violation]:
        """Check convergence after a crash + replay-on-boot cycle."""
        pending = self.pending
        self.pending = None
        if (
            pending is not None
            and not pending.is_empty
            and recovered_version == self.db_version + 1
        ):
            # The in-flight record proved durable before the crash
            # (the fsync window); replay legitimately resurrects it.
            self.pending = pending
            self._commit_pending()
        out = []
        if recovered_version != self.db_version:
            kind = (
                "lost_acknowledged_write"
                if recovered_version < self.db_version
                else "resurrected_unacknowledged_write"
            )
            out.append(
                Violation(
                    op_index,
                    kind,
                    f"recovered at db_version {recovered_version}, "
                    f"model holds {self.db_version}",
                )
            )
        elif recovered_database != self.database:
            out.append(
                Violation(
                    op_index,
                    "state_divergence",
                    f"recovered db_version {recovered_version} matches "
                    "but relation contents differ from the model",
                )
            )
        # Server-side MVCC snapshots did not survive the restart;
        # pinned reads would answer StaleViewError from here on, which
        # the checker tolerates — but expected answers are gone too,
        # so drop the pins.
        self.pins = {}
        self._views = {}
        return out


__all__ = ["DEFAULT_ORDER", "DEFAULT_QUERY", "ShadowModel", "Violation"]
