"""Registry-sync rules: REG-FAULT and REG-OPS.

* REG-FAULT — every ``fire("site")`` / ``crash("site")`` call whose
  callee resolves to :mod:`repro.chaos.faults` (by import alias) must
  name a key of :data:`~repro.chaos.faults.FAULT_POINTS`.  A typo'd
  site is a fault hook that silently never fires — the chaos matrix
  would report full coverage while a whole failure mode goes
  unexercised.
* REG-OPS — every op string literal that ``session/protocol.py``
  compares a request op against must be registered in its ``OPS``
  frozenset (which the docs-sync suite in turn pins to
  ``docs/protocol.md``).  The registry is read *from the analyzed
  file's own AST*, so the rule works on fixtures too.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, SourceFile, analyzer

_FAULT_FUNCTIONS = ("fire", "crash")


def _fault_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(names bound to faults.fire/.crash, names bound to the faults
    module itself)."""
    functions: set[str] = set()
    modules: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "repro.chaos.faults":
                for alias in node.names:
                    if alias.name in _FAULT_FUNCTIONS:
                        functions.add(alias.asname or alias.name)
            elif node.module == "repro.chaos":
                for alias in node.names:
                    if alias.name == "faults":
                        modules.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.chaos.faults":
                    modules.add(alias.asname or "repro")
    return functions, modules


def _site_literal(call: ast.Call) -> str | None:
    if not call.args:
        return None
    first = call.args[0]
    if isinstance(first, ast.Constant) and isinstance(
        first.value, str
    ):
        return first.value
    return None


def _ops_from_ast(tree: ast.Module) -> set[str] | None:
    """The ``OPS`` registry literal defined in the module, if any."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "OPS"
            for target in node.targets
        ):
            continue
        literals: set[str] = set()
        for child in ast.walk(node.value):
            if isinstance(child, ast.Constant) and isinstance(
                child.value, str
            ):
                literals.add(child.value)
        return literals
    return None


def _compared_op_literals(tree: ast.Module):
    """(literal, line) pairs compared against a request-op name."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        left = node.left
        name = (
            left.id
            if isinstance(left, ast.Name)
            else left.attr
            if isinstance(left, ast.Attribute)
            else None
        )
        if name not in ("op", "command"):
            continue
        for comparator in node.comparators:
            if isinstance(comparator, ast.Constant) and isinstance(
                comparator.value, str
            ):
                yield comparator.value, comparator.lineno
            elif isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
                for element in comparator.elts:
                    if isinstance(
                        element, ast.Constant
                    ) and isinstance(element.value, str):
                        yield element.value, element.lineno


@analyzer
def registry_sync_rules(files: list[SourceFile]) -> list[Finding]:
    from repro.chaos.faults import FAULT_POINTS

    findings: list[Finding] = []
    for source in files:
        functions, modules = _fault_aliases(source.tree)
        if functions or modules:
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                resolved = False
                if (
                    isinstance(func, ast.Name)
                    and func.id in functions
                ):
                    resolved = True
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in _FAULT_FUNCTIONS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in modules
                ):
                    resolved = True
                if not resolved:
                    continue
                site = _site_literal(node)
                if site is None or site in FAULT_POINTS:
                    continue
                findings.append(
                    Finding(
                        rule="REG-FAULT",
                        path=source.rel,
                        line=node.lineno,
                        message=(
                            f"fault site {site!r} is not a "
                            "FAULT_POINTS key; register it (with its "
                            "invariant) in repro/chaos/faults.py"
                        ),
                    )
                )
        if source.rel.endswith("repro/session/protocol.py"):
            ops = _ops_from_ast(source.tree)
            if ops is not None:
                for literal, line in _compared_op_literals(
                    source.tree
                ):
                    if literal in ops:
                        continue
                    findings.append(
                        Finding(
                            rule="REG-OPS",
                            path=source.rel,
                            line=line,
                            message=(
                                f"op {literal!r} is handled but not "
                                "registered in OPS (and therefore "
                                "undocumented in docs/protocol.md)"
                            ),
                        )
                    )
    return findings


__all__ = ["registry_sync_rules"]
