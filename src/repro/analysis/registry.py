"""The rule registry: every analyzer is pinned to an invariant.

Mirrors the :data:`~repro.chaos.faults.FAULT_POINTS` style — each rule
is a named entry carrying the project invariant it protects, and the
docs-sync suite diffs this registry both ways against the rule table in
``docs/analysis.md``, so a rule cannot be added (or retired) without
the documentation following along.

Severities:

* ``error`` — a violated invariant; fails ``repro analyze`` outright.
* ``warning`` — a smell the project tolerates case by case; fails only
  under ``--strict`` (the CI gate runs strict, so every warning in the
  repository is either fixed or carries a justified suppression).

Per-line suppression is ``# repro: noqa[RULE-ID] -- justification``;
the justification is mandatory under ``--strict`` (an unexplained
suppression is itself a violation, :data:`NOQA_BARE`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """One static-analysis rule: an id, a severity, an invariant."""

    id: str
    severity: str  # "error" | "warning"
    invariant: str  # the project invariant the rule protects
    summary: str  # one line: what a finding means

    def __post_init__(self) -> None:
        if self.severity not in ("error", "warning"):
            raise ValueError(
                f"rule {self.id}: severity must be 'error' or "
                f"'warning', got {self.severity!r}"
            )


#: Every rule the pass ships, by id.  The analyzers in this package
#: report findings only against ids registered here; ``--rule`` on the
#: CLI selects a subset.
RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="LOCK-ORDER",
            severity="error",
            invariant=(
                "the lock acquisition-order graph is acyclic: two "
                "locks are always taken in one global order, so no "
                "two threads can deadlock holding each other's lock"
            ),
            summary=(
                "a cycle in the acquisition-order graph built from "
                "nested `with lock:` / `.acquire()` regions "
                "(interprocedural within a module)"
            ),
        ),
        Rule(
            id="LOCK-BLOCKING",
            severity="warning",
            invariant=(
                "locks guard memory, not I/O: a blocking call "
                "(fsync, socket/pipe reads, sleep, subprocess, HTTP) "
                "made while a lock is held stalls every waiter"
            ),
            summary=(
                "a blocking call inside a lock-held region "
                "(deliberate cases — the WAL's group commit — carry "
                "a justified suppression)"
            ),
        ),
        Rule(
            id="ASYNC-BLOCKING",
            severity="error",
            invariant=(
                "the event loop never blocks: `async def` bodies in "
                "the serving front must route blocking work through "
                "`run_in_executor` and sleep with `asyncio.sleep`"
            ),
            summary=(
                "a blocking call (time.sleep, fsync, socket reads, "
                "subprocess, synchronous HTTP) directly inside an "
                "`async def` body"
            ),
        ),
        Rule(
            id="EXC-TAXONOMY",
            severity="error",
            invariant=(
                "everything raised in session/, server/, and data/ "
                "subclasses ReproError, so callers can catch library "
                "failures with one except clause (deliberate builtin "
                "pass-throughs carry a justified suppression)"
            ),
            summary=(
                "a `raise` of an exception class outside the "
                "ReproError taxonomy in a taxonomy-governed package"
            ),
        ),
        Rule(
            id="EXC-CHAOS",
            severity="error",
            invariant=(
                "no layer acknowledges past a crash: every broad "
                "`except Exception` in server paths re-raises "
                "ChaosCrash (an `except ChaosCrash: raise` clause "
                "before it) so injected process deaths unwind like "
                "real ones"
            ),
            summary=(
                "an `except Exception` handler in server/ without a "
                "preceding ChaosCrash re-raise clause"
            ),
        ),
        Rule(
            id="EXC-BARE",
            severity="error",
            invariant=(
                "no bare `except:` anywhere — it swallows "
                "KeyboardInterrupt and SystemExit, so a hung worker "
                "cannot even be Ctrl-C'd"
            ),
            summary="a bare `except:` clause",
        ),
        Rule(
            id="PURITY-ENGINE",
            severity="error",
            invariant=(
                "the reference engine stays pure: "
                "engine/python_engine.py and chaos/model.py (the "
                "chaos oracle) must not import numpy, so the oracle "
                "can never inherit a bug from the code it checks"
            ),
            summary="a numpy import in a purity-pinned module",
        ),
        Rule(
            id="LAYER-DAG",
            severity="error",
            invariant=(
                "the layering DAG points one way: data/ and query/ "
                "are foundations and must not import repro.server "
                "(or the serving session layer above them)"
            ),
            summary="an upward import that inverts the layer DAG",
        ),
        Rule(
            id="REG-FAULT",
            severity="error",
            invariant=(
                "every fault-injection site is registered: a "
                "`fire(\"x\")` / `crash(\"x\")` call site must name "
                "a key in chaos.faults.FAULT_POINTS, so the failure "
                "model in docs/architecture.md stays exhaustive"
            ),
            summary=(
                "a fire()/crash() call whose site literal is not a "
                "FAULT_POINTS key"
            ),
        ),
        Rule(
            id="REG-OPS",
            severity="error",
            invariant=(
                "every protocol op handled in session/protocol.py "
                "is registered in OPS (and therefore, by the "
                "docs-sync suite, documented in docs/protocol.md)"
            ),
            summary=(
                "an op string compared against a request op in "
                "protocol.py that OPS does not register"
            ),
        ),
        Rule(
            id="UNUSED-IMPORT",
            severity="warning",
            invariant=(
                "imports earn their keep: a name imported and never "
                "used is dead weight and hides real dependencies "
                "(re-exports live in __init__.py or carry a noqa)"
            ),
            summary="an imported name never used in the module",
        ),
        Rule(
            id="NOQA-BARE",
            severity="error",
            invariant=(
                "suppressions are justified: every "
                "`repro: noqa[ID]` comment carries a `-- reason` tail "
                "explaining why the invariant deliberately bends "
                "at that line"
            ),
            summary="a repro: noqa suppression without a justification",
        ),
    )
}


def severity_of(rule_id: str) -> str:
    return RULES[rule_id].severity


__all__ = ["RULES", "Rule", "severity_of"]
