"""ASYNC-BLOCKING: the event loop never blocks.

Every ``async def`` body is scanned for blocking calls (the
:mod:`repro.analysis.blocking` allowlist: ``time.sleep``, fsync,
socket/pipe reads, subprocess, synchronous HTTP).  Blocking work in
the async front must be bridged with ``run_in_executor`` — which
passes the *callable*, so a correctly bridged call site never appears
as a direct call expression and needs no special-casing here.

Nested synchronous ``def``s inside an async function are skipped:
they run wherever they are later called (typically on the executor),
not on the loop.
"""

from __future__ import annotations

import ast

from repro.analysis.blocking import blocking_call
from repro.analysis.core import Finding, SourceFile, analyzer


def _async_body_calls(node: ast.AsyncFunctionDef):
    """Every Call in the async body, excluding nested sync defs."""
    stack: list[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested defs execute elsewhere
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


@analyzer
def async_rules(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for source in files:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in _async_body_calls(node):
                described = blocking_call(call)
                if described is None:
                    continue
                findings.append(
                    Finding(
                        rule="ASYNC-BLOCKING",
                        path=source.rel,
                        line=call.lineno,
                        message=(
                            f"blocking call {described}() inside "
                            f"async def {node.name}; route it "
                            "through run_in_executor (or use "
                            "asyncio.sleep)"
                        ),
                    )
                )
    return findings


__all__ = ["async_rules"]
