"""Recognizing blocking calls in an AST.

Shared by the lock-order analyzer (blocking while a lock is held) and
the async-safety rule (blocking on the event loop).  The matcher is
deliberately a *targeted allowlist* of call shapes that block on I/O
or time — broad heuristics ("any ``.read()``") would bury the real
findings in noise.
"""

from __future__ import annotations

import ast

#: Bare or attribute call names that always mean a blocking syscall.
_ALWAYS_BLOCKING_NAMES = frozenset({"fsync", "sleep"})

#: ``<module>.<name>`` dotted calls that block.
_BLOCKING_DOTTED = frozenset(
    {
        ("os", "fsync"),
        ("time", "sleep"),
        ("subprocess", "run"),
        ("subprocess", "Popen"),
        ("subprocess", "call"),
        ("subprocess", "check_call"),
        ("subprocess", "check_output"),
        ("socket", "create_connection"),
        ("urllib", "urlopen"),
    }
)

#: Method names that block on a socket, pipe, or HTTP exchange
#: whatever the receiver is (``pipe.recv()``, ``conn.getresponse()``).
_BLOCKING_METHODS = frozenset(
    {"recv", "recv_into", "accept", "getresponse", "urlopen"}
)

#: Receivers whose ``sleep`` is *not* blocking for the event loop.
_ASYNC_SAFE_RECEIVERS = frozenset({"asyncio"})


def blocking_call(node: ast.Call) -> str | None:
    """The dotted description of a blocking call, or ``None``.

    >>> import ast
    >>> call = ast.parse("time.sleep(1)").body[0].value
    >>> blocking_call(call)
    'time.sleep'
    >>> call = ast.parse("asyncio.sleep(1)").body[0].value
    >>> blocking_call(call) is None
    True
    """
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in _ALWAYS_BLOCKING_NAMES:
            return func.id
        return None
    if not isinstance(func, ast.Attribute):
        return None
    name = func.attr
    receiver = func.value
    if isinstance(receiver, ast.Name):
        if receiver.id in _ASYNC_SAFE_RECEIVERS:
            return None
        if (receiver.id, name) in _BLOCKING_DOTTED:
            return f"{receiver.id}.{name}"
    if name in _ALWAYS_BLOCKING_NAMES or name in _BLOCKING_METHODS:
        return ast.unparse(func)
    return None


__all__ = ["blocking_call"]
