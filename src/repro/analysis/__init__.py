"""Static analysis: the project's invariants, checked at review time.

Nine PRs of serving stack — threads, asyncio, worker processes,
shared memory, a WAL, MVCC snapshots — hold together through a small
set of invariants (lock discipline, the ReproError taxonomy, the
ChaosCrash pass-through contract, engine purity, registry/doc sync).
The runtime suites and the chaos harness enforce them *after* the
fact; this package enforces them **statically**, on every file, before
a test ever runs:

    repro analyze --strict src          # the CI gate
    repro analyze --json src/repro/server
    repro analyze --rule LOCK-ORDER src

Each rule is a named entry in :data:`~repro.analysis.registry.RULES`
pinned to the invariant it protects (the docs-sync suite diffs the
registry against ``docs/analysis.md``), findings are suppressed per
line with ``# repro: noqa[RULE-ID] -- justification``, and the JSON
report is byte-identical across runs.  The pass is stdlib-``ast``
only — no install cost, no third-party parser.
"""

from repro.analysis.core import (
    Finding,
    Report,
    SourceFile,
    analyze_paths,
)
from repro.analysis.registry import RULES, Rule

__all__ = [
    "Finding",
    "Report",
    "RULES",
    "Rule",
    "SourceFile",
    "analyze_paths",
]
