"""Import-shape rules: PURITY-ENGINE, LAYER-DAG, UNUSED-IMPORT.

* PURITY-ENGINE — ``engine/python_engine.py`` (the reference
  semantics every other engine is differentially tested against) and
  ``chaos/model.py`` (the chaos oracle) must not import numpy: the
  oracle that checks the optimized path must not be able to inherit
  its bugs.
* LAYER-DAG — ``data/`` and ``query/`` are foundations; importing
  ``repro.server`` (or ``repro.session``) from them inverts the layer
  DAG and eventually creates import cycles.
* UNUSED-IMPORT — a name imported and never referenced.  Lines
  carrying any ``noqa`` marker are exempt (re-export idiom), as are
  ``__init__.py`` files (their imports *are* the public surface).
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, SourceFile, analyzer

#: Modules pinned pure: no numpy import, ever.
_PURITY_PINNED = (
    "repro/engine/python_engine.py",
    "repro/chaos/model.py",
)

#: package prefix -> package import roots it must not reach.
_LAYERING = {
    "repro/data/": ("repro.server", "repro.session"),
    "repro/query/": ("repro.server", "repro.session"),
}


def _imported_modules(node: ast.stmt) -> list[str]:
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom) and node.module:
        return [node.module]
    return []


def _import_bindings(node: ast.stmt) -> list[str]:
    """The local names an import statement binds."""
    if isinstance(node, ast.Import):
        return [
            alias.asname or alias.name.partition(".")[0]
            for alias in node.names
        ]
    if isinstance(node, ast.ImportFrom):
        if node.module == "__future__":
            return []
        return [
            alias.asname or alias.name
            for alias in node.names
            if alias.name != "*"
        ]
    return []


def _used_names(tree: ast.Module) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # "module.attr" strings in __all__-style re-export checks
            # are handled by the Name at the attribute's root.
            continue
    # Names listed in __all__ count as used (re-export surface).
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            )
            and isinstance(node.value, (ast.List, ast.Tuple, ast.Set))
        ):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    used.add(element.value)
    return used


@analyzer
def import_rules(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for source in files:
        lines = source.text.splitlines()
        purity_pinned = any(
            source.rel.endswith(pin) for pin in _PURITY_PINNED
        )
        forbidden_roots: tuple[str, ...] = ()
        for prefix, roots in _LAYERING.items():
            if prefix in source.rel:
                forbidden_roots = roots
                break
        used = _used_names(source.tree)
        is_package_surface = source.rel.endswith("__init__.py")
        for node in ast.walk(source.tree):
            modules = _imported_modules(node)
            if not modules:
                continue
            if purity_pinned:
                for module in modules:
                    if module == "numpy" or module.startswith(
                        "numpy."
                    ):
                        findings.append(
                            Finding(
                                rule="PURITY-ENGINE",
                                path=source.rel,
                                line=node.lineno,
                                message=(
                                    "purity-pinned module imports "
                                    f"{module}; the reference/oracle "
                                    "path must stay numpy-free"
                                ),
                            )
                        )
            for root in forbidden_roots:
                for module in modules:
                    if module == root or module.startswith(
                        root + "."
                    ):
                        findings.append(
                            Finding(
                                rule="LAYER-DAG",
                                path=source.rel,
                                line=node.lineno,
                                message=(
                                    f"{module} imported from a "
                                    "foundation layer; the DAG "
                                    "points the other way"
                                ),
                            )
                        )
            if is_package_surface:
                continue
            line_text = (
                lines[node.lineno - 1]
                if node.lineno - 1 < len(lines)
                else ""
            )
            if "noqa" in line_text:
                continue
            for binding in _import_bindings(node):
                if binding not in used:
                    findings.append(
                        Finding(
                            rule="UNUSED-IMPORT",
                            path=source.rel,
                            line=node.lineno,
                            message=(
                                f"{binding!r} is imported but never "
                                "used"
                            ),
                        )
                    )
    return findings


__all__ = ["import_rules"]
