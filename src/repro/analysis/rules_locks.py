"""The lock-order analyzer: LOCK-ORDER and LOCK-BLOCKING.

Builds, per module, a *lock acquisition-order graph*: nodes are lock
identities (``Class.attr`` for ``self._lock``-style members,
``module.name`` for module-level locks, ``Class.method()`` for
factory-made locks like ``ArtifactStore._build_lock``), and there is
an edge ``A -> B`` whenever ``B`` is acquired while ``A`` is held —
directly (``with self.a: with self.b:``) or through a call to another
function *in the same module* (interprocedural via a call-graph
approximation: ``self.f(...)`` resolves to the enclosing class's
method, ``f(...)`` to a module-level function, and function summaries
are closed under a fixpoint so chains and recursion converge).

A cycle in the graph is the classic deadlock shape — two threads each
holding one lock of the cycle and waiting for the next — and is
reported as LOCK-ORDER with the full cycle path.  Re-acquiring a
non-reentrant ``threading.Lock`` on the same path (a self-loop) is
reported the same way: a plain ``Lock`` is not reentrant, so the
thread deadlocks against itself.

Separately, any blocking call (see :mod:`repro.analysis.blocking`)
made while at least one lock is held is reported as LOCK-BLOCKING:
locks guard memory, not I/O, and an fsync or a pipe read under a lock
stalls every waiter for the device's latency.  The repository's
deliberate cases (the WAL's group commit orders appends *by* holding
its lock across the fsync) carry justified suppressions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.blocking import blocking_call
from repro.analysis.core import Finding, SourceFile, analyzer

#: Lock factory callables: ``threading.Lock()`` / ``RLock()`` (bare or
#: dotted).  ``RLock`` identities are marked reentrant so self-loops on
#: them are not findings.
_LOCK_FACTORIES = {"Lock": False, "RLock": True, "Condition": True}


def _factory_kind(call: ast.expr) -> bool | None:
    """``False`` for a non-reentrant lock ctor, ``True`` for
    reentrant, ``None`` if not a lock constructor call."""
    if not isinstance(call, ast.Call):
        return None
    func = call.func
    if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        return _LOCK_FACTORIES[func.id]
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("threading", "multiprocessing")
        and func.attr in _LOCK_FACTORIES
    ):
        return _LOCK_FACTORIES[func.attr]
    return None


@dataclass
class _FunctionInfo:
    """One function/method and its analysis summary."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None
    #: locks acquired anywhere inside, transitively through local calls
    acquires: set[str] = field(default_factory=set)
    #: blocking-call descriptions reachable from the body, transitively
    blocking: set[str] = field(default_factory=set)
    #: local functions called (keys into the module's function table)
    calls: set[tuple[str | None, str]] = field(default_factory=set)


class _ModuleLocks:
    """Per-module lock inventory, function table, and call graph."""

    def __init__(self, source: SourceFile):
        self.source = source
        #: lock identity -> reentrant?
        self.locks: dict[str, bool] = {}
        self.functions: dict[tuple[str | None, str], _FunctionInfo] = {}
        self._collect()

    # -- inventory ---------------------------------------------------------

    def _collect(self) -> None:
        module = self.source.tree
        for statement in module.body:
            self._collect_assign(statement, cls=None)
        for node in ast.walk(module):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self.functions[(node.name, item.name)] = (
                            _FunctionInfo(item, node.name)
                        )
                        for inner in ast.walk(item):
                            self._collect_assign(inner, cls=node.name)
        for statement in module.body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self.functions[(None, statement.name)] = _FunctionInfo(
                    statement, None
                )

    def _collect_assign(self, node: ast.stmt, cls: str | None) -> None:
        if not isinstance(node, ast.Assign):
            return
        kind = _factory_kind(node.value)
        if kind is None:
            return
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and cls is not None
            ):
                self.locks[f"{cls}.{target.attr}"] = kind
            elif isinstance(target, ast.Name) and cls is None:
                module = self.source.rel.rsplit("/", 1)[-1]
                self.locks[f"{module}:{target.id}"] = kind

    # -- lock-expression recognition ---------------------------------------

    def lock_identity(
        self, expr: ast.expr, cls: str | None
    ) -> str | None:
        """The lock identity an expression acquires, or ``None``."""
        if isinstance(expr, ast.Attribute):
            # self.X / self.a.b.X: identify by the *attribute path* so
            # self._lock in two classes of one module stays distinct.
            path = ast.unparse(expr)
            if path.startswith("self.") and cls is not None:
                identity = f"{cls}.{path[len('self.'):]}"
                if identity in self.locks:
                    return identity
                # A lock-suffixed member we never saw constructed (it
                # may be injected): still track it, non-reentrant.
                if expr.attr.endswith("lock"):
                    return identity
                return None
            module = self.source.rel.rsplit("/", 1)[-1]
            if expr.attr.endswith("lock"):
                return f"{module}:{path}"
            return None
        if isinstance(expr, ast.Name):
            module = self.source.rel.rsplit("/", 1)[-1]
            identity = f"{module}:{expr.id}"
            if identity in self.locks:
                return identity
            if expr.id.endswith("lock"):
                return identity
            return None
        if isinstance(expr, ast.Call):
            # A lock factory used inline: `with self._build_lock(k):`
            func = expr.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and "lock" in func.attr
                and cls is not None
            ):
                return f"{cls}.{func.attr}()"
            if isinstance(func, ast.Name) and "lock" in func.id:
                module = self.source.rel.rsplit("/", 1)[-1]
                return f"{module}:{func.id}()"
        return None

    def reentrant(self, identity: str) -> bool:
        return self.locks.get(identity, False)

    # -- call resolution ---------------------------------------------------

    def resolve_call(
        self, call: ast.Call, cls: str | None
    ) -> tuple[str | None, str] | None:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and cls is not None
        ):
            key = (cls, func.attr)
            return key if key in self.functions else None
        if isinstance(func, ast.Name):
            key = (None, func.id)
            return key if key in self.functions else None
        return None


def _summarize(module: _ModuleLocks) -> None:
    """Fill per-function summaries, closed over the local call graph."""
    for key, info in module.functions.items():
        cls = info.cls
        for node in ast.walk(info.node):
            if isinstance(node, ast.With) or isinstance(
                node, ast.AsyncWith
            ):
                for item in node.items:
                    identity = module.lock_identity(
                        item.context_expr, cls
                    )
                    if identity is not None:
                        info.acquires.add(identity)
            elif isinstance(node, ast.Call):
                described = blocking_call(node)
                if described is not None:
                    info.blocking.add(described)
                resolved = module.resolve_call(node, cls)
                if resolved is not None and resolved != key:
                    info.calls.add(resolved)
    # Fixpoint: propagate acquires/blocking through local calls until
    # stable (the call graph may have cycles).
    changed = True
    while changed:
        changed = False
        for info in module.functions.values():
            for callee_key in info.calls:
                callee = module.functions[callee_key]
                if not callee.acquires <= info.acquires:
                    info.acquires |= callee.acquires
                    changed = True
                if not callee.blocking <= info.blocking:
                    info.blocking |= callee.blocking
                    changed = True


class _RegionWalker:
    """Walks one function with the ordered stack of held locks,
    recording acquisition edges and blocking-under-lock findings."""

    def __init__(
        self,
        module: _ModuleLocks,
        info: _FunctionInfo,
        edges: dict[tuple[str, str], tuple[str, int]],
        findings: list[Finding],
    ):
        self.module = module
        self.info = info
        self.edges = edges
        self.findings = findings
        self.held: list[str] = []

    def edge(self, held: str, acquired: str, line: int) -> None:
        key = (held, acquired)
        if key not in self.edges:
            self.edges[key] = (self.module.source.rel, line)

    def walk(self, statements: list[ast.stmt]) -> None:
        for statement in statements:
            self._statement(statement)

    def _statement(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in node.items:
                identity = self.module.lock_identity(
                    item.context_expr, self.info.cls
                )
                if identity is None:
                    self._expression(item.context_expr)
                    continue
                self._acquire(identity, node.lineno)
                acquired.append(identity)
                self.held.append(identity)
            self.walk(node.body)
            for _ in acquired:
                self.held.pop()
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # a nested def runs later, not under these locks
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._statement(child)
            elif isinstance(child, ast.expr):
                self._expression(child)
            elif isinstance(child, ast.excepthandler):
                self.walk(child.body)

    def _expression(self, node: ast.expr) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            self._call(call)

    def _acquire(self, identity: str, line: int) -> None:
        for held in self.held:
            if held == identity and not self.module.reentrant(
                identity
            ):
                self.findings.append(
                    Finding(
                        rule="LOCK-ORDER",
                        path=self.module.source.rel,
                        line=line,
                        message=(
                            f"non-reentrant lock {identity} "
                            "re-acquired while already held "
                            "(self-deadlock)"
                        ),
                    )
                )
            elif held != identity:
                self.edge(held, identity, line)

    def _call(self, call: ast.Call) -> None:
        if not self.held:
            # Still record acquire()-style edges? Nothing held: no.
            return
        described = blocking_call(call)
        if described is not None:
            self.findings.append(
                Finding(
                    rule="LOCK-BLOCKING",
                    path=self.module.source.rel,
                    line=call.lineno,
                    message=(
                        f"blocking call {described}() while holding "
                        f"{self.held[-1]}"
                    ),
                )
            )
        resolved = self.module.resolve_call(call, self.info.cls)
        if resolved is None:
            return
        callee = self.module.functions[resolved]
        for acquired in sorted(callee.acquires):
            self._acquire(acquired, call.lineno)
        if callee.blocking:
            names = ", ".join(sorted(callee.blocking))
            self.findings.append(
                Finding(
                    rule="LOCK-BLOCKING",
                    path=self.module.source.rel,
                    line=call.lineno,
                    message=(
                        f"call to {resolved[1]}() which blocks "
                        f"({names}) while holding {self.held[-1]}"
                    ),
                )
            )


def _cycles(
    edges: dict[tuple[str, str], tuple[str, int]]
) -> list[list[str]]:
    """Every elementary cycle reachable in the edge set, each reported
    once, deterministically (smallest node first, sorted)."""
    graph: dict[str, list[str]] = {}
    for origin, target in sorted(edges):
        graph.setdefault(origin, []).append(target)
    cycles: list[list[str]] = []
    seen: set[tuple[str, ...]] = set()

    def visit(node: str, path: list[str], on_path: set[str]) -> None:
        for successor in graph.get(node, ()):
            if successor in on_path:
                cycle = path[path.index(successor) :]
                anchor = min(cycle)
                pivot = cycle.index(anchor)
                canonical = tuple(cycle[pivot:] + cycle[:pivot])
                if canonical not in seen:
                    seen.add(canonical)
                    cycles.append(list(canonical))
            else:
                visit(
                    successor, path + [successor], on_path | {successor}
                )

    for origin in sorted(graph):
        visit(origin, [origin], {origin})
    return cycles


@analyzer
def lock_rules(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for source in files:
        module = _ModuleLocks(source)
        if not module.functions:
            continue
        _summarize(module)
        edges: dict[tuple[str, str], tuple[str, int]] = {}
        for info in module.functions.values():
            walker = _RegionWalker(module, info, edges, findings)
            walker.walk(info.node.body)
        for cycle in _cycles(edges):
            path = " -> ".join(cycle + [cycle[0]])
            first_edge = (
                (cycle[0], cycle[1])
                if len(cycle) > 1
                else (cycle[0], cycle[0])
            )
            rel, line = edges.get(first_edge, (source.rel, 1))
            sites = "; ".join(
                f"{a}->{b} at line {edges[(a, b)][1]}"
                for a, b in zip(cycle, cycle[1:] + cycle[:1])
                if (a, b) in edges
            )
            findings.append(
                Finding(
                    rule="LOCK-ORDER",
                    path=rel,
                    line=line,
                    message=(
                        f"lock acquisition-order cycle: {path} "
                        f"({sites})"
                    ),
                )
            )
    return findings


__all__ = ["lock_rules"]
