"""Shared infrastructure for the static-analysis pass.

One :class:`SourceFile` per analyzed module (source text, parsed AST,
per-line suppressions), one :class:`Finding` per rule hit, and the
:func:`analyze_paths` driver that runs every registered analyzer and
applies ``repro: noqa[RULE-ID]`` comment suppressions.

The pass is deliberately stdlib-only (``ast`` + ``tokenize``-free line
scanning): it must run in the barest environment the test suite runs
in, with zero install cost, and its JSON report must be byte-identical
across runs — no timestamps, no absolute paths, no dict-order
dependence.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.analysis.registry import RULES

#: The suppression grammar: ``repro: noqa[RULE-ID]`` (in a comment) with an
#: optional (strict-mandatory) ``-- justification`` tail.  Several ids
#: may be listed comma-separated inside one bracket pair.
_NOQA = re.compile(
    r"#\s*repro:\s*noqa\[(?P<ids>[A-Z0-9,\- ]+)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a file:line."""

    rule: str
    path: str  # repo-relative, forward slashes (stable across hosts)
    line: int
    message: str

    @property
    def severity(self) -> str:
        return RULES[self.rule].severity

    def sort_key(self) -> tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: noqa[...]`` annotation found in a source line."""

    path: str
    line: int
    rules: tuple[str, ...]
    justification: str | None


@dataclass
class SourceFile:
    """One module under analysis: text, AST, and suppressions."""

    path: Path  # absolute, for reading
    rel: str  # repo-relative display path, forward slashes
    text: str
    tree: ast.Module
    #: line number -> rule ids suppressed on that line ("*" = all)
    noqa: dict[int, set[str]] = field(default_factory=dict)
    suppressions: list[Suppression] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        source = cls(path=path, rel=rel, text=text, tree=tree)
        for number, line in enumerate(text.splitlines(), start=1):
            match = _NOQA.search(line)
            if match is None:
                continue
            ids = tuple(
                token.strip()
                for token in match.group("ids").split(",")
                if token.strip()
            )
            source.noqa.setdefault(number, set()).update(ids)
            source.suppressions.append(
                Suppression(
                    path=rel,
                    line=number,
                    rules=ids,
                    justification=match.group("why"),
                )
            )
        return source

    def suppressed(self, rule: str, line: int) -> bool:
        ids = self.noqa.get(line)
        return ids is not None and (rule in ids or "*" in ids)


#: An analyzer: takes the loaded files, yields findings.  Registered
#: via :func:`analyzer`; the driver runs them in registration order
#: and sorts the merged findings, so analyzer order never shows in
#: the report.
Analyzer = Callable[[list[SourceFile]], Iterable[Finding]]

_ANALYZERS: list[Analyzer] = []


def analyzer(fn: Analyzer) -> Analyzer:
    _ANALYZERS.append(fn)
    return fn


def _load_analyzers() -> None:
    """Import the rule modules (each registers via @analyzer)."""
    if getattr(_load_analyzers, "_done", False):
        return
    from repro.analysis import (  # noqa: F401 -- imported for side effect
        rules_async,
        rules_exceptions,
        rules_imports,
        rules_locks,
        rules_registry_sync,
    )

    _load_analyzers._done = True  # type: ignore[attr-defined]


def collect_files(paths: list[Path], root: Path) -> list[SourceFile]:
    """Every ``.py`` file under ``paths``, loaded and parsed, in
    stable (repo-relative path) order."""
    seen: dict[str, SourceFile] = {}
    for target in paths:
        if target.is_dir():
            candidates = sorted(target.rglob("*.py"))
        else:
            candidates = [target]
        for candidate in candidates:
            source = SourceFile.load(candidate, root)
            seen[source.rel] = source
    return [seen[rel] for rel in sorted(seen)]


@dataclass
class Report:
    """The outcome of one pass: findings, suppressions, and totals."""

    findings: list[Finding]
    suppressed: list[Finding]
    suppressions: list[Suppression]
    files: int
    rules: tuple[str, ...]

    def exit_code(self, strict: bool = False) -> int:
        if strict:
            return 1 if self.findings else 0
        return (
            1
            if any(f.severity == "error" for f in self.findings)
            else 0
        )

    def as_dict(self) -> dict:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {
            "version": 1,
            "files": self.files,
            "rules": list(self.rules),
            "counts": {k: counts[k] for k in sorted(counts)},
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render_text(self) -> list[str]:
        lines = [
            f"{f.path}:{f.line}: {f.rule} [{f.severity}] {f.message}"
            for f in self.findings
        ]
        lines.append(
            f"{len(self.findings)} finding(s) "
            f"({len(self.suppressed)} suppressed) across "
            f"{self.files} file(s), {len(self.rules)} rule(s)"
        )
        return lines


def analyze_paths(
    paths: list[Path],
    root: Path | None = None,
    rules: Iterable[str] | None = None,
    strict: bool = False,
) -> Report:
    """Run the pass over ``paths`` and return the :class:`Report`.

    ``rules`` restricts the report to a subset of rule ids (analyzers
    still run; their findings are filtered — selection must not change
    what any one rule sees).  Under ``strict``, a suppression without
    a justification becomes a NOQA-BARE finding.
    """
    _load_analyzers()
    selected = _validate_rules(rules)
    files = collect_files(paths, root or Path.cwd())
    raw: list[Finding] = []
    for run in _ANALYZERS:
        raw.extend(run(files))
    by_rel = {source.rel: source for source in files}
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        if finding.rule not in RULES:
            raise ValueError(
                f"analyzer reported unregistered rule {finding.rule!r}"
            )
        source = by_rel.get(finding.path)
        if source is not None and source.suppressed(
            finding.rule, finding.line
        ):
            suppressed.append(finding)
        else:
            findings.append(finding)
    suppressions = [
        suppression
        for source in files
        for suppression in source.suppressions
    ]
    if strict:
        for suppression in suppressions:
            if suppression.justification is None:
                findings.append(
                    Finding(
                        rule="NOQA-BARE",
                        path=suppression.path,
                        line=suppression.line,
                        message=(
                            "suppression of "
                            f"{', '.join(suppression.rules)} has no "
                            "'-- justification' tail"
                        ),
                    )
                )
    if selected is not None:
        findings = [f for f in findings if f.rule in selected]
        suppressed = [f for f in suppressed if f.rule in selected]
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return Report(
        findings=findings,
        suppressed=suppressed,
        suppressions=suppressions,
        files=len(files),
        rules=tuple(sorted(selected or RULES)),
    )


def _validate_rules(
    rules: Iterable[str] | None,
) -> set[str] | None:
    if rules is None:
        return None
    selected = set(rules)
    unknown = selected - set(RULES)
    if unknown:
        known = ", ".join(sorted(RULES))
        raise ValueError(
            f"unknown rule id(s) {sorted(unknown)} (known: {known})"
        )
    return selected


__all__ = [
    "Analyzer",
    "Finding",
    "Report",
    "SourceFile",
    "Suppression",
    "analyze_paths",
    "analyzer",
    "collect_files",
]
