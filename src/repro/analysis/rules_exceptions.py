"""The exception-taxonomy rules: EXC-TAXONOMY, EXC-CHAOS, EXC-BARE.

* EXC-TAXONOMY — in the taxonomy-governed packages (``session/``,
  ``server/``, ``data/``) every ``raise`` must be a library exception:
  a :class:`~repro.errors.ReproError` subclass, ``ChaosCrash`` (the
  deliberate crash boundary that must *not* be a ReproError), or a
  re-raise.  Raising a Python builtin (ValueError, RuntimeError, …)
  leaks an unclassified failure to callers who were promised one
  ``except ReproError`` clause; the deliberate pass-throughs carry
  justified suppressions.
* EXC-CHAOS — PR 9's contract: no layer acknowledges past a crash.  A
  broad ``except Exception`` in ``server/`` swallows
  :class:`~repro.chaos.faults.ChaosCrash` and turns an injected
  process death into a served error response.  Every such handler
  must be preceded by an ``except ChaosCrash: raise`` clause (or
  itself re-raise).
* EXC-BARE — no bare ``except:`` anywhere: it swallows
  KeyboardInterrupt and SystemExit.
"""

from __future__ import annotations

import ast
import builtins

from repro.analysis.core import Finding, SourceFile, analyzer

#: Packages whose raises are taxonomy-governed.
_TAXONOMY_SCOPES = ("repro/session/", "repro/server/", "repro/data/")

#: Exceptions that are legitimate everywhere: the library taxonomy
#: root (membership is checked dynamically against repro.errors), the
#: deliberate crash boundary, and exceptions that are contracts of
#: the language itself (iteration, abstract-interface stubs).
_ALWAYS_ALLOWED = frozenset(
    {
        "ChaosCrash",
        "StopIteration",
        "StopAsyncIteration",
        "NotImplementedError",
    }
)

#: Builtin exception class names (the set EXC-TAXONOMY flags).
_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)


def _repro_error_names() -> frozenset[str]:
    """Every class exported by repro.errors that subclasses ReproError."""
    from repro import errors

    return frozenset(
        name
        for name in dir(errors)
        if isinstance(getattr(errors, name), type)
        and issubclass(getattr(errors, name), errors.ReproError)
    )


def _raised_name(node: ast.Raise) -> str | None:
    exc = node.exc
    if exc is None:
        return None  # bare re-raise
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def _local_taxonomy_classes(
    tree: ast.Module, known: frozenset[str]
) -> set[str]:
    """Classes defined in the module whose bases are (transitively)
    known taxonomy members."""
    local: set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in local:
                continue
            for base in node.bases:
                name = (
                    base.id
                    if isinstance(base, ast.Name)
                    else base.attr
                    if isinstance(base, ast.Attribute)
                    else None
                )
                if name in known or name in local:
                    local.add(node.name)
                    changed = True
                    break
    return local


def _in_scope(rel: str) -> bool:
    return any(scope in rel for scope in _TAXONOMY_SCOPES)


def _handles_exception(handler: ast.ExceptHandler) -> bool:
    """Does the handler's type mention the broad ``Exception``?"""
    node = handler.type
    if node is None:
        return False
    names = [node] if not isinstance(node, ast.Tuple) else node.elts
    return any(
        isinstance(name, ast.Name) and name.id == "Exception"
        for name in names
    )


def _mentions_chaoscrash(node: ast.expr | None) -> bool:
    if node is None:
        return False
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == "ChaosCrash":
            return True
        if (
            isinstance(child, ast.Attribute)
            and child.attr == "ChaosCrash"
        ):
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body contain a bare re-raise (directly or in
    an ``isinstance(..., ChaosCrash)`` guard)?"""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


@analyzer
def exception_rules(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    taxonomy = _repro_error_names()
    for source in files:
        local = _local_taxonomy_classes(source.tree, taxonomy)
        governed = _in_scope(source.rel)
        server_path = "repro/server/" in source.rel
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    findings.append(
                        Finding(
                            rule="EXC-BARE",
                            path=source.rel,
                            line=node.lineno,
                            message=(
                                "bare except: swallows "
                                "KeyboardInterrupt and SystemExit; "
                                "name the exceptions"
                            ),
                        )
                    )
                continue
            if governed and isinstance(node, ast.Raise):
                name = _raised_name(node)
                if name is None:
                    continue
                if (
                    name in taxonomy
                    or name in local
                    or name in _ALWAYS_ALLOWED
                ):
                    continue
                if name in _BUILTIN_EXCEPTIONS:
                    findings.append(
                        Finding(
                            rule="EXC-TAXONOMY",
                            path=source.rel,
                            line=node.lineno,
                            message=(
                                f"raises builtin {name} in a "
                                "taxonomy-governed package; raise a "
                                "ReproError subclass (or suppress a "
                                "deliberate pass-through)"
                            ),
                        )
                    )
                continue
            if server_path and isinstance(node, ast.Try):
                guarded = False
                for handler in node.handlers:
                    if _mentions_chaoscrash(handler.type):
                        guarded = True
                    if not _handles_exception(handler):
                        continue
                    if guarded or _reraises(handler):
                        continue
                    findings.append(
                        Finding(
                            rule="EXC-CHAOS",
                            path=source.rel,
                            line=handler.lineno,
                            message=(
                                "except Exception in a server path "
                                "can acknowledge past an injected "
                                "crash; add `except ChaosCrash: "
                                "raise` before it"
                            ),
                        )
                    )
    return findings


__all__ = ["exception_rules"]
