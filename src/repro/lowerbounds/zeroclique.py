"""Zero-k-Clique: instances, brute force, and the Theorem 27 reduction.

The Zero-k-Clique Conjecture (Conjecture 1) is the paper's hardness
source. We implement:

* complete multipartite weighted instances (random and with a planted
  zero-clique) — Observation 28 lets the paper assume this shape;
* the ``O(n^k)`` brute-force solver (the conjectured-optimal baseline);
* the full randomized reduction of Theorem 27 from Zero-(k+1)-Clique to
  ``k``-Set-Intersection: pick a prime field, rehash edge weights with
  the zero-sum-preserving random shift (equation (1)), split the field
  into intervals, and for every *interval tuple* summing to zero query a
  set-intersection data structure; candidates are verified exactly.

Executing the reduction on planted instances is how we "reproduce" the
lower bounds: the reduction is answer-preserving and its instance counts
match the paper's accounting.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from itertools import combinations, product

from repro.lowerbounds.setdisjointness import (
    SetIntersectionEnumeration,
    SetSystem,
    StarSetIntersection,
)


@dataclass(frozen=True)
class MultipartiteInstance:
    """A complete k-partite edge-weighted graph.

    ``parts`` is the number of color classes, each of size ``n``; vertex
    ``(i, a)`` is the ``a``-th vertex of class ``i``. ``weights`` maps
    cross-class vertex pairs (with ``i < j``) to integer weights.
    """

    parts: int
    n: int
    weights: dict[tuple[tuple[int, int], tuple[int, int]], int]

    def weight(self, u: tuple[int, int], v: tuple[int, int]) -> int:
        if u > v:
            u, v = v, u
        return self.weights[(u, v)]

    def clique_weight(self, vertices: tuple[tuple[int, int], ...]) -> int:
        return sum(
            self.weight(u, v) for u, v in combinations(vertices, 2)
        )

    @classmethod
    def random(
        cls,
        parts: int,
        n: int,
        weight_bound: int | None = None,
        plant_zero: bool = False,
        seed: int = 0,
    ) -> "MultipartiteInstance":
        """A random instance; optionally adjust one edge to plant a zero."""
        rng = random.Random(seed)
        bound = weight_bound if weight_bound is not None else n ** 2
        weights = {}
        for i, j in combinations(range(parts), 2):
            for a in range(n):
                for b in range(n):
                    weights[((i, a), (j, b))] = rng.randint(-bound, bound)
        instance = cls(parts, n, weights)
        if plant_zero:
            clique = tuple(
                (i, rng.randrange(n)) for i in range(parts)
            )
            total = instance.clique_weight(clique)
            u, v = clique[0], clique[1]
            weights[(min(u, v), max(u, v))] -= total
            instance = cls(parts, n, weights)
        return instance


def complete_multipartite_from_graph(
    n: int,
    edges: dict[tuple[int, int], int],
    parts: int,
    blocking_weight: int | None = None,
) -> MultipartiteInstance:
    """Observation 28: general Zero-k-Clique → complete k-partite.

    Every vertex ``v`` of the input graph is duplicated once per color
    class as ``(i, v)``; an input edge ``{u, v}`` of weight ``w`` becomes
    the cross-class edges ``{(i, u), (j, v)}`` of weight ``w``; missing
    edges get a ``blocking_weight`` so large no zero-clique can use them.
    Zero-k-cliques of the input correspond exactly to colorful
    zero-cliques of the output.

    Args:
        n: number of vertices of the input graph (labelled 0..n-1).
        edges: undirected edge weights keyed by ``(u, v)`` with u < v.
        parts: the clique size ``k``.
        blocking_weight: weight for non-edges; defaults to a value
            exceeding any achievable clique-weight magnitude.
    """
    max_abs = max((abs(w) for w in edges.values()), default=1)
    if blocking_weight is None:
        blocking_weight = parts * parts * max_abs + 1
    weights: dict[tuple[tuple[int, int], tuple[int, int]], int] = {}
    for i, j in combinations(range(parts), 2):
        for u in range(n):
            for v in range(n):
                key = (min(u, v), max(u, v))
                if u != v and key in edges:
                    weight = edges[key]
                else:
                    weight = blocking_weight
                weights[((i, u), (j, v))] = weight
    return MultipartiteInstance(parts, n, weights)


def brute_force_zero_clique(
    instance: MultipartiteInstance,
) -> tuple[tuple[int, int], ...] | None:
    """Exhaustive search over all ``n^k`` colorful cliques."""
    ranges = [range(instance.n)] * instance.parts
    for choice in product(*ranges):
        clique = tuple(
            (i, a) for i, a in enumerate(choice)
        )
        if instance.clique_weight(clique) == 0:
            return clique
    return None


def _random_prime(low: int, high: int, rng: random.Random) -> int:
    """A prime in ``[low, high]`` by rejection sampling + Miller-Rabin."""

    def is_prime(m: int) -> bool:
        if m < 2:
            return False
        for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
            if m % p == 0:
                return m == p
        d, s = m - 1, 0
        while d % 2 == 0:
            d //= 2
            s += 1
        for _ in range(24):
            a = rng.randrange(2, m - 1)
            x = pow(a, d, m)
            if x in (1, m - 1):
                continue
            for _ in range(s - 1):
                x = x * x % m
                if x == m - 1:
                    break
            else:
                return False
        return True

    while True:
        candidate = rng.randrange(low, high + 1)
        if is_prime(candidate):
            return candidate


class ZeroCliqueViaSetIntersection:
    """The Theorem 27 reduction: Zero-(k+1)-Clique → k-Set-Intersection.

    Args:
        instance: a complete (k+1)-partite instance (classes
            ``V_1..V_k`` are the query side, ``V_{k+1}`` the universe).
        intervals: the number ``n^ρ`` of field intervals (the paper's
            ``ρ`` is fixed by ε; here it is an explicit knob).
        oracle_factory: builds the k-Set-Intersection data structure from
            a :class:`SetSystem` — by default the paper's own star-query
            direct-access structure.
        seed: randomness for the prime and the weight rehash.
    """

    def __init__(
        self,
        instance: MultipartiteInstance,
        intervals: int = 4,
        oracle_factory=StarSetIntersection,
        seed: int = 0,
    ):
        if instance.parts < 3:
            raise ValueError("needs at least 3 parts (k >= 2)")
        self.instance = instance
        self.k = instance.parts - 1
        self.intervals = intervals
        self.oracle_factory = oracle_factory
        self.rng = random.Random(seed)
        self.stats: dict[str, int] = {
            "instances": 0,
            "queries": 0,
            "candidates": 0,
        }

    # -- field setup ------------------------------------------------------

    def _field_and_rehash(self):
        """Pick p and the zero-preserving random weight rehash (eq. (1))."""
        instance = self.instance
        k = self.k
        max_abs = max(
            (abs(w) for w in instance.weights.values()), default=1
        )
        scale = max(max_abs, 1)
        low = 10 * (k + 1) ** 2 * scale
        p = _random_prime(low, 10 * low, self.rng)
        x = self.rng.randrange(1, p)
        y = {
            (v, j): self.rng.randrange(p)
            for v in range(instance.n)
            for j in range(1, k)
        }

        def rehash(i: int, a: int, j: int, b: int) -> int:
            """w'((i,a),(j,b)) for i < j, both 0-based part indices."""
            w = x * instance.weight((i, a), (j, b)) % p
            if j == k:  # edges into V_{k+1}
                if i == 0:
                    if k >= 2:
                        w = (w + y[(b, 1)]) % p
                elif i < k - 1:
                    w = (w + y[(b, i + 1)] - y[(b, i)]) % p
                else:  # i == k - 1
                    w = (w - y[(b, k - 1)]) % p
            return w

        return p, rehash

    def _interval_of(self, value: int, p: int) -> int:
        return value * self.intervals // p

    def _interval_bounds(self, index: int, p: int) -> tuple[int, int]:
        """Inclusive bounds of interval ``index``: ``{v : v*m // p == index}``."""
        m = self.intervals
        low = -(-index * p // m)  # ceil(index * p / m)
        high = -(-(index + 1) * p // m) - 1
        return low, high

    def _zero_sum_tuples(self, p: int):
        """All interval tuples ``(I_0..I_k)`` with ``0 ∈ Σ I_i (mod p)``."""
        m = self.intervals
        for prefix in product(range(m), repeat=self.k):
            lows = [self._interval_bounds(i, p)[0] for i in prefix]
            highs = [self._interval_bounds(i, p)[1] for i in prefix]
            # Need I_k with 0 ∈ sum: i.e. exists t in I_k with
            # (t + Σ prefix values) ≡ 0, i.e. I_k ∩ [-Σhigh, -Σlow] ≠ ∅.
            target_low = (-sum(highs)) % p
            span = sum(highs) - sum(lows)
            first = self._interval_of(target_low, p)
            count = span * m // p + 2
            seen = set()
            for step in range(count + 1):
                index = (first + step) % m
                if index not in seen:
                    seen.add(index)
                    yield (*prefix, index)

    # -- the solver -------------------------------------------------------

    def find_zero_clique(
        self,
    ) -> tuple[tuple[int, int], ...] | None:
        """One round of the randomized reduction.

        Finds a planted zero-clique with constant probability (boost by
        re-running with fresh seeds); never returns a false positive.
        """
        instance = self.instance
        k = self.k
        n = instance.n
        p, rehash = self._field_and_rehash()
        limit = max(1, math.ceil(100 * (3 ** k) * n / self.intervals ** k))

        for interval_tuple in self._zero_sum_tuples(p):
            self.stats["instances"] += 1
            families = []
            for i in range(k):
                low, high = self._interval_bounds(interval_tuple[i + 1], p)
                family = []
                for a in range(n):
                    family.append(
                        frozenset(
                            u
                            for u in range(n)
                            if low <= rehash(i, a, k, u) <= high
                        )
                    )
                families.append(tuple(family))
            oracle = self.oracle_factory(SetSystem(tuple(families)))

            low0, high0 = self._interval_bounds(interval_tuple[0], p)
            for choice in product(range(n), repeat=k):
                head = tuple((i, a) for i, a in enumerate(choice))
                head_weight = 0
                for (i, a), (j, b) in combinations(head, 2):
                    head_weight = (head_weight + rehash(i, a, j, b)) % p
                if not low0 <= head_weight <= high0:
                    continue
                self.stats["queries"] += 1
                for u in oracle.intersect(choice, limit):
                    self.stats["candidates"] += 1
                    clique = head + ((k, u),)
                    if instance.clique_weight(clique) == 0:
                        return clique
        return None


class ZeroCliqueViaEnumeration:
    """The Lemma 52 variant: Zero-(k+1)-Clique → k-Set-Intersection-
    Enumeration (Section 9.1).

    Differs from :class:`ZeroCliqueViaSetIntersection` in two ways that
    mirror the paper exactly: the weight rehash (equation (7)) draws an
    extra random value ``y_v`` per vertex of ``V_1`` (subtracted on
    ``V_1``–``V_{k+1}`` edges and added on ``V_1``–``V_2`` edges), and
    instead of online queries, each interval tuple contributes a *batch*
    instance whose answers are enumerated until a zero-clique shows up.
    """

    def __init__(
        self,
        instance: MultipartiteInstance,
        intervals: int = 4,
        seed: int = 0,
    ):
        if instance.parts < 3:
            raise ValueError("needs at least 3 parts (k >= 2)")
        self.instance = instance
        self.k = instance.parts - 1
        self.intervals = intervals
        self.rng = random.Random(seed)
        self.stats: dict[str, int] = {
            "instances": 0,
            "answers_enumerated": 0,
        }

    def _field_and_rehash(self):
        """Pick p and the equation-(7) rehash (extra y_v on V_1)."""
        instance = self.instance
        k = self.k
        max_abs = max(
            (abs(w) for w in instance.weights.values()), default=1
        )
        low = 10 * (k + 1) ** 2 * max(max_abs, 1)
        p = _random_prime(low, 10 * low, self.rng)
        x = self.rng.randrange(1, p)
        y_center = {
            (v, j): self.rng.randrange(p)
            for v in range(instance.n)
            for j in range(1, k)
        }
        y_first = {
            v: self.rng.randrange(p) for v in range(instance.n)
        }

        def rehash(i: int, a: int, j: int, b: int) -> int:
            """w'((i,a),(j,b)) for part indices i < j (0-based)."""
            w = x * instance.weight((i, a), (j, b)) % p
            if j == k:  # edges into V_{k+1}
                if i == 0:
                    w = (w + y_center[(b, 1)] - y_first[a]) % p if k >= 2 else (w - y_first[a]) % p
                elif i < k - 1:
                    w = (w + y_center[(b, i + 1)] - y_center[(b, i)]) % p
                else:
                    w = (w - y_center[(b, k - 1)]) % p
            elif i == 0 and j == 1:  # V_1 - V_2 edges
                w = (w + y_first[a]) % p
            return w

        return p, rehash

    def _interval_of(self, value: int, p: int) -> int:
        return value * self.intervals // p

    def _interval_bounds(self, index: int, p: int) -> tuple[int, int]:
        m = self.intervals
        low = -(-index * p // m)
        high = -(-(index + 1) * p // m) - 1
        return low, high

    def _zero_sum_tuples(self, p: int):
        m = self.intervals
        for prefix in product(range(m), repeat=self.k):
            lows = [self._interval_bounds(i, p)[0] for i in prefix]
            highs = [self._interval_bounds(i, p)[1] for i in prefix]
            target_low = (-sum(highs)) % p
            span = sum(highs) - sum(lows)
            first = self._interval_of(target_low, p)
            count = span * m // p + 2
            seen = set()
            for step in range(count + 1):
                index = (first + step) % m
                if index not in seen:
                    seen.add(index)
                    yield (*prefix, index)

    def find_zero_clique(
        self,
    ) -> tuple[tuple[int, int], ...] | None:
        """One round; finds a planted zero-clique with high probability."""
        instance = self.instance
        k = self.k
        n = instance.n
        p, rehash = self._field_and_rehash()

        for interval_tuple in self._zero_sum_tuples(p):
            self.stats["instances"] += 1
            families = []
            for i in range(k):
                low, high = self._interval_bounds(
                    interval_tuple[i + 1], p
                )
                family = []
                for a in range(n):
                    family.append(
                        frozenset(
                            u
                            for u in range(n)
                            if low <= rehash(i, a, k, u) <= high
                        )
                    )
                families.append(tuple(family))

            low0, high0 = self._interval_bounds(interval_tuple[0], p)
            queries = []
            for choice in product(range(n), repeat=k):
                head = tuple((i, a) for i, a in enumerate(choice))
                head_weight = 0
                for (i, a), (j, b) in combinations(head, 2):
                    head_weight = (
                        head_weight + rehash(i, a, j, b)
                    ) % p
                if low0 <= head_weight <= high0:
                    queries.append(choice)

            enumeration = SetIntersectionEnumeration(
                SetSystem(tuple(families)), queries
            )
            for choice, u in enumeration:
                self.stats["answers_enumerated"] += 1
                clique = tuple(
                    (i, a) for i, a in enumerate(choice)
                ) + ((k, u),)
                if instance.clique_weight(clique) == 0:
                    return clique
        return None
