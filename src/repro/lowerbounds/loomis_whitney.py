"""Loomis-Whitney joins and enumeration (Section 9).

``LW_k`` has fractional edge cover number ``1 + 1/(k-1)``; Theorem 53
shows (under Zero-k-Clique) that constant-delay enumeration cannot beat
the trivial algorithm that materializes the output with a worst-case
optimal join during preprocessing. We implement:

* :class:`MaterializingEnumerator` — the trivial (conjectured-optimal)
  algorithm, with measured preprocessing time and per-answer delay;
* :func:`triangle_database_from_set_intersection` — the Theorem 53
  construction (k=3 case, no padding needed) turning a
  2-Set-Intersection-Enumeration instance into a triangle database whose
  answers are exactly the (query, element) pairs;
* :func:`lw_database_from_set_intersection` — the general construction
  with the ``[n]^{k-3}`` padding of the proof.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from itertools import product

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.generic_join import generic_join_iter, tables_of_query
from repro.lowerbounds.setdisjointness import SetSystem
from repro.query.catalog import loomis_whitney_query
from repro.query.query import JoinQuery


class MaterializingEnumerator:
    """Enumerate ``Q(D)`` after materializing it with Generic Join.

    ``preprocessing_seconds`` and ``max_delay_seconds`` expose the two
    quantities Theorem 53 bounds: the trivial algorithm spends
    ``O(|D|^{1+1/(k-1)})`` preprocessing on ``LW_k`` and then has O(1)
    delay.
    """

    def __init__(self, query: JoinQuery, database: Database):
        self.query = query
        self.variables = tuple(query.variables)
        start = time.perf_counter()
        tables = tables_of_query(query, database)
        self._answers = list(
            generic_join_iter(tables, list(query.variables))
        )
        self.preprocessing_seconds = time.perf_counter() - start
        self.max_delay_seconds = 0.0

    def __len__(self) -> int:
        return len(self._answers)

    def __iter__(self) -> Iterator[tuple]:
        previous = time.perf_counter()
        for answer in self._answers:
            now = time.perf_counter()
            self.max_delay_seconds = max(
                self.max_delay_seconds, now - previous
            )
            previous = now
            yield answer


def triangle_database_from_set_intersection(
    instance: SetSystem, queries: set[tuple[int, int]]
) -> Database:
    """Theorem 53's reduction for ``k = 3`` (the triangle query).

    ``instance`` must be a 2-family set system. Triangle answers
    ``(x1, x2, x3)`` correspond exactly to set-intersection-enumeration
    answers: ``(x1, x2) ∈ queries`` and ``x3 ∈ S_{1,x1} ∩ S_{2,x2}``.

    The triangle atoms are ``R1(x2,x3), R2(x1,x3), R3(x1,x2)``.
    """
    if instance.k != 2:
        raise ValueError("triangle construction needs k-1 = 2 families")
    relation_one = {
        (j, v)
        for j, subset in enumerate(instance.families[1])
        for v in subset
    }
    relation_two = {
        (j, v)
        for j, subset in enumerate(instance.families[0])
        for v in subset
    }
    return Database(
        {
            "R1": Relation(relation_one, arity=2),
            "R2": Relation(relation_two, arity=2),
            "R3": Relation(set(queries), arity=2),
        }
    )


def lw_database_from_set_intersection(
    instance: SetSystem,
    queries: set[tuple[int, ...]],
    padding_domain: int,
) -> Database:
    """The general Theorem 53 construction for ``LW_k``, ``k-1`` families.

    Atom ``R_i`` (``i ∈ [k-1]``) holds the pairs of set family ``i+`` on
    the attributes ``(x_{i+}, x_k)`` padded with every combination over
    ``range(padding_domain)`` on the remaining ``k-3`` attributes; atom
    ``R_k`` holds the queries. Sizes grow as ``n^{k-2}`` per padded
    relation, exactly as in the proof — keep instances small.
    """
    k = instance.k + 1
    query = loomis_whitney_query(k)
    variables = [f"x{i + 1}" for i in range(k)]
    relations: dict[str, Relation] = {}
    for i in range(1, k):  # atoms R_1..R_{k-1}, 1-based
        plus = i % (k - 1) + 1  # the paper's i+: i+1 mod (k-1)
        pairs = {
            (j, v)
            for j, subset in enumerate(instance.families[plus - 1])
            for v in subset
        }
        atom = query.atoms[i - 1]
        slots = list(atom.variables)
        fill_positions = [
            p
            for p, variable in enumerate(slots)
            if variable not in (f"x{plus}", f"x{k}")
        ]
        main_positions = {
            variable: p for p, variable in enumerate(slots)
        }
        rows = set()
        for j, v in pairs:
            base = [None] * len(slots)
            base[main_positions[f"x{plus}"]] = j
            base[main_positions[f"x{k}"]] = v
            for filler in product(
                range(padding_domain), repeat=len(fill_positions)
            ):
                row = list(base)
                for position, value in zip(fill_positions, filler):
                    row[position] = value
                rows.add(tuple(row))
        relations[f"R{i}"] = Relation(rows, arity=k - 1)
    relations[f"R{k}"] = Relation(set(queries), arity=k - 1)
    return Database(relations)
