"""Executable lower-bound machinery: Sections 4, 5 and 9."""

from repro.lowerbounds.cyclic_joins import (
    CyclicJoinEmbedding,
    find_chordless_cycle,
    find_non_conformal_clique,
)
from repro.lowerbounds.loomis_whitney import (
    MaterializingEnumerator,
    lw_database_from_set_intersection,
    triangle_database_from_set_intersection,
)
from repro.lowerbounds.setdisjointness import (
    MergeDisjointness,
    SetIntersectionEnumeration,
    PrecomputedDisjointness,
    SetIntersectionViaUnique,
    SetSystem,
    StarDisjointness,
    StarSetIntersection,
    UniqueSetIntersectionViaDisjointness,
    star_database,
)
from repro.lowerbounds.star_queries import StarEmbedding
from repro.lowerbounds.zeroclique import (
    MultipartiteInstance,
    complete_multipartite_from_graph,
    ZeroCliqueViaEnumeration,
    ZeroCliqueViaSetIntersection,
    brute_force_zero_clique,
)

__all__ = [
    "CyclicJoinEmbedding",
    "MaterializingEnumerator",
    "MergeDisjointness",
    "MultipartiteInstance",
    "PrecomputedDisjointness",
    "SetIntersectionEnumeration",
    "SetIntersectionViaUnique",
    "SetSystem",
    "StarDisjointness",
    "StarEmbedding",
    "StarSetIntersection",
    "UniqueSetIntersectionViaDisjointness",
    "ZeroCliqueViaEnumeration",
    "ZeroCliqueViaSetIntersection",
    "brute_force_zero_clique",
    "find_chordless_cycle",
    "find_non_conformal_clique",
    "complete_multipartite_from_graph",
    "lw_database_from_set_intersection",
    "star_database",
    "triangle_database_from_set_intersection",
]
