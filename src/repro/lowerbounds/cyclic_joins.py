"""Lemma 54 / Theorem 55: every cyclic join embeds a Loomis-Whitney join.

A hypergraph is cyclic iff it contains a *chordless cycle* (length ≥ 4,
or a triangle of pairwise neighbors) or a *non-conformal clique* (a set
of pairwise neighbors contained in no edge); a minimal non-conformal
clique of size ``k`` yields an exact reduction from ``LW_k``, and a
chordless cycle yields one from ``LW_3`` (the triangle), by threading the
third variable along the cycle. Composing with Theorem 53 transfers the
enumeration lower bound to every self-join-free cyclic join
(Theorem 55).

The embedding here is executable: :class:`CyclicJoinEmbedding` finds the
obstruction, translates any ``LW_k`` database into a database for the
host query in linear time, and maps answers back bijectively.
"""

from __future__ import annotations

from itertools import combinations, permutations

from repro.data.database import Database
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.catalog import loomis_whitney_query
from repro.query.query import JoinQuery

BOTTOM = "__bottom__"


def find_non_conformal_clique(
    hypergraph: Hypergraph,
) -> tuple[str, ...] | None:
    """A minimal non-conformal clique, or None.

    Minimal means every proper subset of size k-1 lies in an edge, which
    holds automatically for a *smallest* non-conformal clique: its
    (k-1)-subsets are smaller cliques, and smaller cliques are conformal
    by minimality.
    """
    vertices = sorted(hypergraph.vertices)
    for size in range(3, len(vertices) + 1):
        for subset in combinations(vertices, size):
            if not hypergraph.is_clique(subset):
                continue
            if any(set(subset) <= edge for edge in hypergraph.edges):
                continue
            return subset
    return None


def find_chordless_cycle(
    hypergraph: Hypergraph,
) -> tuple[str, ...] | None:
    """A chordless cycle of length >= 4, or None.

    Brute force over vertex sequences — fine for query-sized
    hypergraphs. Consecutive vertices (cyclically) must be neighbors;
    non-consecutive ones must not be.
    """
    vertices = sorted(hypergraph.vertices)
    neighbors = {v: hypergraph.neighbors(v) for v in vertices}
    for length in range(4, len(vertices) + 1):
        for subset in combinations(vertices, length):
            anchor, *rest = subset
            for middle in permutations(rest):
                cycle = (anchor, *middle)
                if _is_chordless_cycle(cycle, neighbors):
                    return cycle
    return None


def _is_chordless_cycle(cycle: tuple[str, ...], neighbors) -> bool:
    length = len(cycle)
    for i in range(length):
        for j in range(i + 1, length):
            adjacent = (j - i == 1) or (i == 0 and j == length - 1)
            connected = cycle[j] in neighbors[cycle[i]]
            if adjacent != connected:
                return False
    return True


class CyclicJoinEmbedding:
    """The Lemma 54 exact reduction ``LW_k ≤ Q`` for a cyclic join ``Q``.

    Attributes:
        k: the Loomis-Whitney arity embedded (clique size, or 3 for a
            chordless cycle).
        kind: ``"clique"`` or ``"cycle"``.
    """

    def __init__(self, query: JoinQuery):
        if query.has_self_joins:
            raise QueryError(
                "Lemma 54 concerns self-join-free queries"
            )
        self.query = query
        self.hypergraph = Hypergraph.of_query(query)
        if is_acyclic(self.hypergraph):
            raise QueryError(f"{query.name} is acyclic")
        clique = find_non_conformal_clique(self.hypergraph)
        if clique is not None:
            self.kind = "clique"
            self.clique = clique
            self.k = len(clique)
            self.cycle: tuple[str, ...] | None = None
        else:
            cycle = find_chordless_cycle(self.hypergraph)
            if cycle is None:
                raise AssertionError(
                    "cyclic hypergraphs must contain a chordless "
                    "cycle or a non-conformal clique"
                )
            self.kind = "cycle"
            self.cycle = cycle
            self.clique = None
            self.k = 3
        self.lw_query = loomis_whitney_query(self.k)

    # -- database translation ------------------------------------------

    def transform_database(self, lw_db: Database) -> Database:
        """A database for the host query encoding an ``LW_k`` database."""
        if self.kind == "clique":
            return self._transform_clique(lw_db)
        return self._transform_cycle(lw_db)

    def _lw_tables(self, lw_db: Database) -> list[set[tuple]]:
        """Atom relations of LW_k; index i omits variable x_{i+1}."""
        return [
            set(lw_db[f"R{i + 1}"].tuples) for i in range(self.k)
        ]

    def _transform_clique(self, lw_db: Database) -> Database:
        clique = list(self.clique)
        position = {v: i for i, v in enumerate(clique)}
        lw_tables = self._lw_tables(lw_db)
        # lw_variables[i]: the LW variables of atom i, in scope order.
        lw_vars = [
            [int(v[1:]) - 1 for v in atom.variables]
            for atom in self.lw_query.atoms
        ]

        relations: dict[str, Relation] = {}
        for atom in self.query.atoms:
            trace = [v for v in atom.variables if v in position]
            trace_set = {position[v] for v in trace}
            # the clique is non-conformal: every atom misses some s_i
            missing = next(
                i for i in range(self.k) if i not in trace_set
            )
            rows = set()
            for lw_row in lw_tables[missing]:
                value_of = dict(zip(lw_vars[missing], lw_row))
                rows.add(
                    tuple(
                        value_of[position[v]]
                        if v in position
                        else BOTTOM
                        for v in atom.variables
                    )
                )
            relations[atom.relation] = Relation(
                rows, arity=atom.arity
            )
        return Database(relations)

    def _transform_cycle(self, lw_db: Database) -> Database:
        """Thread the triangle around a chordless cycle.

        Cycle c_1..c_m: c_1 carries x_1, c_2 carries x_2, and
        c_3..c_m all carry x_3; the triangle atoms sit on the edges
        (c_1,c_2) -> R3(x1,x2), (c_2,c_3) -> R1(x2,x3),
        (c_m,c_1) -> R2(x1,x3) reversed, and the remaining cycle edges
        propagate x_3 by equality.
        """
        cycle = list(self.cycle)
        m = len(cycle)
        lw_tables = self._lw_tables(lw_db)

        # Triangle atoms: R1(x2,x3), R2(x1,x3), R3(x1,x2).
        def pairs_for(index: int) -> set[tuple]:
            return lw_tables[index]

        values_x3 = {row[1] for row in pairs_for(0)} | {
            row[1] for row in pairs_for(1)
        }
        edge_content: dict[tuple[str, str], set[tuple]] = {}
        edge_content[(cycle[0], cycle[1])] = {
            (a, b) for a, b in pairs_for(2)  # R3(x1, x2)
        }
        edge_content[(cycle[1], cycle[2])] = {
            (a, b) for a, b in pairs_for(0)  # R1(x2, x3)
        }
        for i in range(2, m - 1):  # propagate x3
            edge_content[(cycle[i], cycle[i + 1])] = {
                (v, v) for v in values_x3
            }
        edge_content[(cycle[m - 1], cycle[0])] = {
            (b, a) for a, b in pairs_for(1)  # R2(x1, x3) reversed
        }

        cycle_set = set(cycle)
        relations: dict[str, Relation] = {}
        for atom in self.query.atoms:
            touched = [v for v in atom.scope if v in cycle_set]
            rows = set()
            if len(touched) <= 1:
                content = (
                    sorted(self._domain_of(touched[0], edge_content))
                    if touched
                    else [None]
                )
                for value in content:
                    rows.add(
                        tuple(
                            value if v in cycle_set else BOTTOM
                            for v in atom.variables
                        )
                    )
            else:
                # chordless: exactly two touched, cyclically adjacent
                first, second = touched
                key = self._edge_key(first, second, cycle)
                for pair in edge_content[key]:
                    value_of = {
                        key[0]: pair[0],
                        key[1]: pair[1],
                    }
                    rows.add(
                        tuple(
                            value_of[v]
                            if v in value_of
                            else BOTTOM
                            for v in atom.variables
                        )
                    )
            relations[atom.relation] = Relation(
                rows, arity=atom.arity
            )
        return Database(relations)

    def _edge_key(
        self, first: str, second: str, cycle: list[str]
    ) -> tuple[str, str]:
        m = len(cycle)
        for i in range(m):
            a, b = cycle[i], cycle[(i + 1) % m]
            if {a, b} == {first, second}:
                return (a, b)
        raise AssertionError(
            f"{first}, {second} are not a cycle edge"
        )

    def _domain_of(self, variable: str, edge_content) -> set:
        out = set()
        for (a, b), pairs in edge_content.items():
            for pair in pairs:
                if a == variable:
                    out.add(pair[0])
                if b == variable:
                    out.add(pair[1])
        return out

    # -- answer translation ----------------------------------------------

    def lw_answer(self, answer: dict[str, object]) -> tuple:
        """Map a host-query answer back to an ``LW_k`` answer tuple."""
        if self.kind == "clique":
            return tuple(answer[v] for v in self.clique)
        cycle = list(self.cycle)
        return (answer[cycle[0]], answer[cycle[1]], answer[cycle[2]])
