"""k-Set-Disjointness and k-Set-Intersection (Definitions 20, 26, 29).

These are the problems the paper's lower bounds route through. All of
them are *data structure* problems — preprocess an instance, then answer
queries — so we implement them as classes with an explicit preprocessing
phase, which is what the benchmarks measure.

Implemented back-ends:

* :class:`MergeDisjointness` — (near-)linear preprocessing, per-query
  cost proportional to the smallest queried set (the classic baseline).
* :class:`PrecomputedDisjointness` — preprocess *all* index tuples
  (``Θ(n^k)``-ish preprocessing, the regime the lower bound says is
  necessary for fast queries), constant-time queries.
* :class:`StarDisjointness` / :class:`StarSetIntersection` — the paper's
  own connection (Lemma 22 + Proposition 19): encode the instance as a
  database for the star query ``Q*_k`` and answer queries through
  lexicographic direct access with a *bad* order.
* :class:`UniqueSetIntersectionViaDisjointness` — the bit-splitting
  reduction of Lemma 31.
* :class:`SetIntersectionViaUnique` — the subsampling reduction of
  Lemma 30.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product

from repro.core.access import DirectAccess
from repro.core.counting import (
    CountingFromDirectAccess,
    PrefixConstraint,
)
from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.catalog import star_bad_order, star_query


@dataclass(frozen=True)
class SetSystem:
    """An instance ``I``: families ``A_1..A_k`` of subsets of a universe.

    ``families[i][j]`` is the set ``S_{i+1, j+1}`` of the paper (0-based
    here). ``size`` is ``‖I‖ = Σ |S|``.
    """

    families: tuple[tuple[frozenset[int], ...], ...]

    @property
    def k(self) -> int:
        return len(self.families)

    @property
    def size(self) -> int:
        return sum(
            len(s) for family in self.families for s in family
        )

    @property
    def set_count(self) -> int:
        """``n = Σ_i |A_i|``."""
        return sum(len(family) for family in self.families)

    def universe(self) -> frozenset[int]:
        out: set[int] = set()
        for family in self.families:
            for subset in family:
                out |= subset
        return frozenset(out)

    @classmethod
    def random(
        cls,
        k: int,
        sets_per_family: int,
        set_size: int,
        universe_size: int,
        seed: int = 0,
    ) -> "SetSystem":
        rng = random.Random(seed)
        families = []
        for _ in range(k):
            family = []
            for _ in range(sets_per_family):
                family.append(
                    frozenset(
                        rng.sample(
                            range(universe_size),
                            min(set_size, universe_size),
                        )
                    )
                )
            families.append(tuple(family))
        return cls(tuple(families))


class MergeDisjointness:
    """Linear preprocessing; query cost ~ the smallest queried set."""

    def __init__(self, instance: SetSystem):
        self.instance = instance

    def disjoint(self, indices: tuple[int, ...]) -> bool:
        sets = [
            self.instance.families[i][j]
            for i, j in enumerate(indices)
        ]
        sets.sort(key=len)
        smallest, rest = sets[0], sets[1:]
        return not any(
            all(element in other for other in rest)
            for element in smallest
        )


class PrecomputedDisjointness:
    """Precompute every query — the ``n^k`` preprocessing regime."""

    def __init__(self, instance: SetSystem):
        self.instance = instance
        merge = MergeDisjointness(instance)
        shape = [range(len(f)) for f in instance.families]
        self._answers = {
            indices: merge.disjoint(indices)
            for indices in product(*shape)
        }

    def disjoint(self, indices: tuple[int, ...]) -> bool:
        return self._answers[indices]


def star_database(instance: SetSystem) -> Database:
    """Lemma 22's encoding: ``R_i = {(j, v) | v ∈ S_{i,j}}``."""
    relations = {}
    for i, family in enumerate(instance.families):
        rows = {
            (j, v) for j, subset in enumerate(family) for v in subset
        }
        relations[f"R{i + 1}"] = Relation(rows, arity=2)
    return Database(relations)


class StarDisjointness:
    """Set-disjointness through direct access on the star query.

    Composes Lemma 22 (instance → star database) with Proposition 19
    (testing the projected star via logarithmically many accesses —
    realized here through prefix-constraint counting, which is binary
    search over the sorted answer array).
    """

    def __init__(self, instance: SetSystem):
        self.instance = instance
        k = instance.k
        self.query = star_query(k)
        self.order = star_bad_order(k)
        self.access = DirectAccess(
            self.query, self.order, star_database(instance)
        )
        self._counter = CountingFromDirectAccess(self.access)

    def disjoint(self, indices: tuple[int, ...]) -> bool:
        constraint = PrefixConstraint(
            tuple(indices[:-1]), indices[-1], indices[-1]
        )
        return self._counter.count(constraint) == 0


class StarSetIntersection:
    """k-Set-Intersection (Definition 26) through star direct access.

    The answers extending a fixed ``(j_1..j_k)`` prefix are contiguous in
    the sorted array of ``Q*_k`` answers under a bad order; two binary
    searches find the range, and up to ``T`` accesses read off elements.
    """

    def __init__(self, instance: SetSystem):
        self.instance = instance
        k = instance.k
        self.query = star_query(k)
        self.order = star_bad_order(k)
        self.access = DirectAccess(
            self.query, self.order, star_database(instance)
        )
        self._counter = CountingFromDirectAccess(self.access)

    def intersect(
        self, indices: tuple[int, ...], limit: int
    ) -> list[int]:
        """Up to ``limit`` elements of the queried intersection."""
        constraint = PrefixConstraint(
            tuple(indices[:-1]), indices[-1], indices[-1]
        )
        start = self._counter.first_index_above(
            tuple(indices), strict=False
        )
        count = self._counter.count(constraint)
        out = []
        for offset in range(min(limit, count)):
            answer = self.access.tuple_at(start + offset)
            out.append(answer[-1])  # the value of z
        return out


class SetIntersectionEnumeration:
    """k-Set-Intersection-Enumeration (Definition 51, §9.1).

    The offline variant: a batch of queries is given up front and *all*
    pairs ``(query, element-of-its-intersection)`` must be enumerated.
    Lemma 52 lower-bounds its preprocessing/delay trade-off; this
    implementation enumerates through a per-query intersection oracle,
    which is what the Loomis-Whitney reduction of Theorem 53 consumes.
    """

    def __init__(
        self,
        instance: SetSystem,
        queries: list[tuple[int, ...]],
        backend=None,
    ):
        self.instance = instance
        self.queries = list(queries)
        self._oracle = (
            backend(instance) if backend is not None else None
        )

    def _intersection(self, indices: tuple[int, ...]):
        if self._oracle is not None:
            return self._oracle.intersect(
                indices, len(self.instance.universe()) + 1
            )
        sets = [
            self.instance.families[i][j]
            for i, j in enumerate(indices)
        ]
        out = sets[0]
        for other in sets[1:]:
            out = out & other
        return sorted(out)

    def __iter__(self):
        """Yield every ``(query, element)`` answer pair."""
        for indices in self.queries:
            for element in self._intersection(indices):
                yield (indices, element)

    def answer_count(self) -> int:
        return sum(1 for _ in self)


class UniqueSetIntersectionViaDisjointness:
    """Unique-k-Set-Intersection from k-Set-Disjointness (Lemma 31).

    Builds ``2ℓ`` disjointness instances (``ℓ`` = bit-length of the
    universe): ``I_{t,b}`` removes the elements whose ``t``-th bit is
    ``b``. A query has a unique answer iff for every bit exactly one of
    the two restricted queries is empty, and then the bits of the answer
    can be read off (Claim 2).
    """

    def __init__(self, instance: SetSystem, backend=MergeDisjointness):
        self.instance = instance
        universe = instance.universe()
        bits = max(universe).bit_length() if universe else 1
        self._bits = max(bits, 1)
        self._oracles: dict[tuple[int, int], object] = {}
        for t in range(self._bits):
            for b in (0, 1):
                restricted = SetSystem(
                    tuple(
                        tuple(
                            frozenset(
                                v
                                for v in subset
                                if (v >> t) & 1 != b
                            )
                            for subset in family
                        )
                        for family in instance.families
                    )
                )
                self._oracles[(t, b)] = backend(restricted)

    def unique_element(
        self, indices: tuple[int, ...]
    ) -> int | None:
        """The unique element of the intersection, or None (``⊥``)."""
        answer = 0
        for t in range(self._bits):
            empty0 = self._oracles[(t, 0)].disjoint(indices)
            empty1 = self._oracles[(t, 1)].disjoint(indices)
            if empty0 == empty1:
                return None
            if empty0:  # all surviving elements have bit 0 == removing b=0 empties it
                answer |= 0 << t
            else:
                answer |= 1 << t
        # empty0 means: elements with bit t != 0 form an empty intersection,
        # i.e. the unique element has bit t = 0. Cross-check membership:
        sets = [
            self.instance.families[i][j]
            for i, j in enumerate(indices)
        ]
        if all(answer in s for s in sets):
            return answer
        return None


class SetIntersectionViaUnique:
    """k-Set-Intersection from Unique-k-Set-Intersection (Lemma 30).

    Randomized: subsample the universe at rates ``2^{-ℓ}`` for
    ``ℓ = log T .. log 4n``, ``rounds`` instances each; a query unions the
    unique answers that got isolated. Succeeds with high probability for
    sufficiently many rounds.
    """

    def __init__(
        self,
        instance: SetSystem,
        limit: int,
        rounds: int | None = None,
        seed: int = 0,
        backend=MergeDisjointness,
    ):
        self.instance = instance
        self.limit = limit
        universe = sorted(instance.universe())
        n = max(len(universe), 2)
        if rounds is None:
            import math

            rounds = max(8, int(4 * limit * math.log(n + 1)))
        rng = random.Random(seed)
        levels = []
        level = max(1, limit)
        while level <= 4 * n:
            levels.append(level)
            level *= 2
        self._instances = []
        for level in levels:
            for _ in range(rounds):
                keep = {
                    v
                    for v in universe
                    if rng.random() < 1.0 / level
                }
                restricted = SetSystem(
                    tuple(
                        tuple(
                            frozenset(subset & keep)
                            for subset in family
                        )
                        for family in instance.families
                    )
                )
                self._instances.append(
                    UniqueSetIntersectionViaDisjointness(
                        restricted, backend=backend
                    )
                )

    def intersect(self, indices: tuple[int, ...]) -> list[int]:
        """Up to ``limit`` elements of the queried intersection (whp)."""
        found: set[int] = set()
        for oracle in self._instances:
            element = oracle.unique_element(indices)
            if element is not None:
                # Filter out wrong answers as the paper does.
                if all(
                    element in self.instance.families[i][j]
                    for i, j in enumerate(indices)
                ):
                    found.add(element)
            if len(found) >= self.limit:
                break
        return sorted(found)[: self.limit]
