"""Star embeddings: Lemmas 15 and 17 of Section 4.1.

The hardness of a self-join-free query ``Q`` with order ``L`` is shown by
*embedding* the star query ``Q*_k`` into ``Q``: variables of ``Q`` are
assigned *roles* among ``x_1..x_k, z`` guided by a maximum (fractional)
independent set of the witness bag of the disruption-free decomposition,
and any star database is translated into a database for ``Q`` so that the
``L``-lexicographic answer order of ``Q`` maps to a *bad* order of the
star (center last). Lemma 15 is the integral case; Lemma 17 handles
fractional incompatibility numbers by packing ``λ = lcm`` of the
denominators many roles per variable; both are covered here (Lemma 15 is
the ``λ = 1`` special case).

Executing the embedding demonstrates the reduction is lex-preserving and
has the claimed ``O(|D*|^λ)`` blow-up — the computable half of the lower
bound.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.core.decomposition import DisruptionFreeDecomposition
from repro.data.database import Database
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.lp.covers import fractional_independent_set
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder

X_ROLE = "x"
Z_ROLE = "z"


class StarEmbedding:
    """The role assignment of Lemmas 15/17 for ``(Q, L)``.

    Attributes:
        star_size: ``k`` — the number of star leaves embedded.
        blowup: ``λ`` — the instance-size exponent of the translation.
        roles: per query variable, the ordered list of carried roles;
            ``("x", j)`` (1-based leaf index) sorted ascending, then
            possibly ``("z",)`` last.
    """

    def __init__(self, query: JoinQuery, order: VariableOrder):
        if query.has_self_joins:
            raise QueryError(
                "the star embedding needs a self-join-free query "
                "(Section 6 removes self-joins first)"
            )
        self.query = query
        self.order = order
        self.decomposition = DisruptionFreeDecomposition(query, order)
        self.iota: Fraction = self.decomposition.incompatibility_number

        witness = self.decomposition.witness_bag()
        hypergraph = self.decomposition.hypergraph
        _value, phi = fractional_independent_set(
            hypergraph.induced(witness.edge)
        )
        self.blowup = math.lcm(
            *(weight.denominator for weight in phi.values())
        ) if phi else 1
        star_size = self.blowup * self.iota
        if star_size.denominator != 1:
            raise AssertionError("λ·ι must be integral")
        self.star_size = int(star_size)

        position = {v: i for i, v in enumerate(order)}
        suffix = set(list(order)[witness.index:])
        self.component = hypergraph.induced(suffix).connected_component(
            witness.variable
        )

        self.roles: dict[str, list[tuple]] = {
            v: [] for v in query.variables
        }
        next_role = 1
        for variable in sorted(phi, key=position.__getitem__):
            count = int(self.blowup * phi[variable])
            self.roles[variable].extend(
                (X_ROLE, j)
                for j in range(next_role, next_role + count)
            )
            next_role += count
        if next_role - 1 != self.star_size:
            raise AssertionError("distributed roles must total k")
        for variable in self.component:
            self.roles[variable].append((Z_ROLE,))

    # -- database translation ------------------------------------------

    def transform_database(self, star_db: Database) -> Database:
        """A database ``D`` for ``Q`` encoding the star database ``D*``.

        Values of ``D`` are tuples packing, per variable, the values of
        its roles (empty tuple for role-less variables); size and
        construction time are ``O(|D*|^λ)``.
        """
        centers: set = set()
        leaf_by_center: dict[int, dict] = {}
        for j in range(1, self.star_size + 1):
            relation = star_db[f"R{j}"]
            by_center: dict = {}
            for leaf, center in relation.tuples:
                by_center.setdefault(center, set()).add(leaf)
                centers.add(center)
            leaf_by_center[j] = by_center

        relations: dict[str, Relation] = {}
        for atom in self.query.atoms:
            x_roles = sorted(
                {
                    role[1]
                    for variable in atom.scope
                    for role in self.roles[variable]
                    if role[0] == X_ROLE
                }
            )
            uses_z = any(
                (Z_ROLE,) in self.roles[variable]
                for variable in atom.scope
            )
            rows = set()
            if x_roles:
                for center in centers:
                    options = [
                        sorted(leaf_by_center[j].get(center, ()))
                        for j in x_roles
                    ]
                    if any(not opts for opts in options):
                        continue
                    assignments = [()]
                    for opts in options:
                        assignments = [
                            prefix + (leaf,)
                            for prefix in assignments
                            for leaf in opts
                        ]
                    for assignment in assignments:
                        leaf_of = dict(zip(x_roles, assignment))
                        rows.add(
                            self._pack_row(atom, leaf_of, center)
                        )
            elif uses_z:
                for center in centers:
                    rows.add(self._pack_row(atom, {}, center))
            else:
                rows.add(self._pack_row(atom, {}, None))
            relations[atom.relation] = Relation(
                rows, arity=atom.arity
            )
        return Database(relations)

    def _pack_row(self, atom, leaf_of: dict, center) -> tuple:
        row = []
        for variable in atom.variables:
            packed = []
            for role in self.roles[variable]:
                if role[0] == X_ROLE:
                    packed.append(leaf_of[role[1]])
                else:
                    packed.append(center)
            row.append(tuple(packed))
        return tuple(row)

    # -- answer translation ----------------------------------------------

    def star_answer(self, answer: dict[str, object]) -> tuple:
        """τ: map an answer of ``Q`` to ``(x_1..x_k, z)`` star values."""
        values: dict[tuple, object] = {}
        for variable, packed in answer.items():
            for role, value in zip(self.roles[variable], packed):
                values[role] = value
        return tuple(
            values[(X_ROLE, j)] for j in range(1, self.star_size + 1)
        ) + (values[(Z_ROLE,)],)
