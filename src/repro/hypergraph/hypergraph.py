"""Hypergraphs (Section 2.3).

A hypergraph is a finite set of vertices plus a set of edges (vertex
subsets). Join queries are used interchangeably with their underlying
hypergraph: vertices are variables, edges are atom scopes.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.query.query import JoinQuery


class Hypergraph:
    """An immutable hypergraph ``H = (V, E)``.

    Vertices are arbitrary hashable labels (variables in practice). Edges
    are stored as a *set* of frozensets: parallel edges collapse, matching
    the paper's definition of ``E`` as a set of subsets of ``V``.
    """

    def __init__(
        self,
        vertices: Iterable[str],
        edges: Iterable[Iterable[str]],
    ):
        self._vertices = frozenset(vertices)
        self._edges = frozenset(frozenset(e) for e in edges)
        for edge in self._edges:
            if not edge <= self._vertices:
                raise ValueError(
                    f"edge {set(edge)} mentions unknown vertices"
                )

    @classmethod
    def of_query(cls, query: JoinQuery) -> "Hypergraph":
        """The hypergraph underlying a join query."""
        return cls(query.variables, query.scopes())

    @property
    def vertices(self) -> frozenset[str]:
        return self._vertices

    @property
    def edges(self) -> frozenset[frozenset[str]]:
        return self._edges

    def __eq__(self, other) -> bool:
        if isinstance(other, Hypergraph):
            return (
                self._vertices == other._vertices
                and self._edges == other._edges
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._vertices, self._edges))

    def __repr__(self) -> str:
        edges = sorted(tuple(sorted(e)) for e in self._edges)
        return f"Hypergraph({sorted(self._vertices)}, {edges})"

    # -- neighborhoods -------------------------------------------------

    def neighbors(self, vertex: str) -> frozenset[str]:
        """``N_H(v)``: vertices sharing an edge with ``vertex`` (excl. it)."""
        out: set[str] = set()
        for edge in self._edges:
            if vertex in edge:
                out |= edge
        out.discard(vertex)
        return frozenset(out)

    def neighbors_of_set(self, vertices: Iterable[str]) -> frozenset[str]:
        """``N_H(S)``: union of neighborhoods of ``S``, minus ``S``."""
        vertex_set = set(vertices)
        out: set[str] = set()
        for vertex in vertex_set:
            out |= self.neighbors(vertex)
        return frozenset(out - vertex_set)

    # -- substructures -------------------------------------------------

    def induced(self, vertices: Iterable[str]) -> "Hypergraph":
        """``H[S]``: restrict every edge to ``S`` (empty traces dropped)."""
        vertex_set = frozenset(vertices)
        traced = {e & vertex_set for e in self._edges}
        traced.discard(frozenset())
        return Hypergraph(vertex_set, traced)

    def with_extra_edges(
        self, extra: Iterable[Iterable[str]]
    ) -> "Hypergraph":
        """A super-hypergraph on the same vertices with added edges."""
        return Hypergraph(
            self._vertices,
            set(self._edges) | {frozenset(e) for e in extra},
        )

    # -- connectivity --------------------------------------------------

    def connected_component(self, vertex: str) -> frozenset[str]:
        """Vertex set of the connected component containing ``vertex``."""
        if vertex not in self._vertices:
            raise ValueError(f"{vertex} is not a vertex")
        seen = {vertex}
        frontier = [vertex]
        while frontier:
            current = frontier.pop()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return frozenset(seen)

    def connected_components(self) -> list[frozenset[str]]:
        """All connected components (isolated vertices included)."""
        remaining = set(self._vertices)
        components = []
        while remaining:
            component = self.connected_component(next(iter(remaining)))
            components.append(component)
            remaining -= component
        return components

    def is_connected(self) -> bool:
        return len(self.connected_components()) <= 1

    # -- cliques / conformality -----------------------------------------

    def is_clique(self, vertices: Iterable[str]) -> bool:
        """True when the given vertices are pairwise neighbors."""
        vertex_list = list(vertices)
        for i, u in enumerate(vertex_list):
            for v in vertex_list[i + 1:]:
                if v not in self.neighbors(u):
                    return False
        return True

    def is_conformal(self) -> bool:
        """True when every clique is contained in an edge.

        Acyclic hypergraphs are conformal (used in Lemma 13). Checked by
        brute force over maximal candidate sets — adequate for query-sized
        hypergraphs.
        """
        from itertools import combinations

        vertex_list = sorted(self._vertices)
        for size in range(2, len(vertex_list) + 1):
            for subset in combinations(vertex_list, size):
                if self.is_clique(subset) and not any(
                    set(subset) <= edge for edge in self._edges
                ):
                    return False
        return True
