"""GYO elimination: acyclicity, elimination orders, join trees (Section 2.3).

A hypergraph is *acyclic* when repeatedly (a) deleting edges contained in
other edges and (b) deleting vertices contained in a single edge empties
it. An order in which the vertices get deleted is an *elimination order*.
"""

from __future__ import annotations

from repro.hypergraph.hypergraph import Hypergraph


def gyo_reduce(hypergraph: Hypergraph) -> tuple[list[str], Hypergraph]:
    """Run the GYO algorithm.

    Returns ``(eliminated, residual)`` where ``eliminated`` is an
    elimination order of the removed vertices and ``residual`` is the
    hypergraph left when no rule applies. ``hypergraph`` is acyclic exactly
    when the residual has no vertices.
    """
    vertices = set(hypergraph.vertices)
    edges = {e for e in hypergraph.edges if e}
    eliminated: list[str] = []
    changed = True
    while changed:
        changed = False
        # Rule 1: drop edges strictly contained in another edge.
        redundant = {e for e in edges if any(e < f for f in edges)}
        if redundant:
            edges -= redundant
            changed = True
        # Rule 2: drop vertices occurring in a single edge.
        for vertex in sorted(vertices):
            containing = [e for e in edges if vertex in e]
            if len(containing) <= 1:
                eliminated.append(vertex)
                vertices.discard(vertex)
                if containing:
                    old = containing[0]
                    edges.discard(old)
                    new = old - {vertex}
                    if new:
                        edges.add(new)
                changed = True
    return eliminated, Hypergraph(vertices, edges)


def is_acyclic(hypergraph: Hypergraph) -> bool:
    """True when GYO elimination empties the hypergraph."""
    _, residual = gyo_reduce(hypergraph)
    return not residual.vertices


def is_elimination_order(hypergraph: Hypergraph, order: list[str]) -> bool:
    """Check whether ``order`` is a valid GYO elimination order.

    Follows the definition: at each step, after exhaustively removing
    covered edges, the next vertex of ``order`` must lie in at most one
    remaining edge.
    """
    if set(order) != set(hypergraph.vertices):
        return False
    edges = {e for e in hypergraph.edges if e}

    def drop_covered() -> None:
        nonlocal edges
        edges = {e for e in edges if not any(e < f for f in edges)}

    for vertex in order:
        drop_covered()
        containing = [e for e in edges if vertex in e]
        if len(containing) > 1:
            return False
        if containing:
            old = containing[0]
            edges.discard(old)
            new = old - {vertex}
            if new:
                edges.add(new)
    drop_covered()
    return not edges


def join_tree(hypergraph: Hypergraph) -> dict[frozenset[str], frozenset[str] | None]:
    """Build a join tree of an acyclic hypergraph.

    Returns a parent map over the *maximal* edges: ``parent[e]`` is the
    edge ``e`` hangs from, or None for roots (one root per connected
    component). The running-intersection property holds: for every vertex,
    the edges containing it form a subtree.

    Raises ValueError when the hypergraph is cyclic.
    """
    maximal = [
        e
        for e in hypergraph.edges
        if e and not any(e < f for f in hypergraph.edges)
    ]
    if not is_acyclic(hypergraph):
        raise ValueError("join trees exist only for acyclic hypergraphs")
    # Classic algorithm: repeatedly find an "ear" — an edge e whose
    # intersection with the union of the others is contained in a single
    # other edge w (its witness); hang e below w.
    parent: dict[frozenset[str], frozenset[str] | None] = {}
    remaining = list(maximal)
    while remaining:
        if len(remaining) == 1:
            parent[remaining[0]] = None
            break
        for i, edge in enumerate(remaining):
            others = remaining[:i] + remaining[i + 1:]
            separator = edge & frozenset().union(*others)
            witness = next(
                (other for other in others if separator <= other), None
            )
            if witness is not None:
                parent[edge] = witness
                remaining = others
                break
        else:
            raise ValueError("ear decomposition failed on acyclic input")
    return parent
