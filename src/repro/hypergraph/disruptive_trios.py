"""Disruptive trios (Section 2.3).

Given a hypergraph and a permutation of its vertices, a *disruptive trio*
is a triple ``(v1, v2, v3)`` where ``v3`` comes after ``v1`` and ``v2`` in
the permutation, ``v1`` and ``v2`` are not neighbors, but ``v3`` neighbors
both. A permutation is the reverse of a GYO elimination order iff the
hypergraph is acyclic and the permutation has no disruptive trio
(Brault-Baron; quoted as the trio characterization in the paper).
"""

from __future__ import annotations

from repro.hypergraph.gyo import is_acyclic, is_elimination_order
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.variable_order import VariableOrder


def find_disruptive_trio(
    hypergraph: Hypergraph, order: VariableOrder
) -> tuple[str, str, str] | None:
    """Return some disruptive trio ``(v1, v2, v3)``, or None if there is none.

    ``order`` must be a permutation of the hypergraph's vertices.
    """
    variables = list(order)
    if set(variables) != set(hypergraph.vertices):
        raise ValueError("order must cover exactly the vertices")
    neighbor_of = {v: hypergraph.neighbors(v) for v in variables}
    for k, late in enumerate(variables):
        early_neighbors = [
            v for v in variables[:k] if v in neighbor_of[late]
        ]
        for i, first in enumerate(early_neighbors):
            for second in early_neighbors[i + 1:]:
                if second not in neighbor_of[first]:
                    return (first, second, late)
    return None


def has_disruptive_trio(
    hypergraph: Hypergraph, order: VariableOrder
) -> bool:
    """True when the order has a disruptive trio with the hypergraph."""
    return find_disruptive_trio(hypergraph, order) is not None


def is_reverse_elimination_order(
    hypergraph: Hypergraph, order: VariableOrder
) -> bool:
    """True when ``reversed(order)`` is a GYO elimination order.

    Equivalent (and asserted so in tests) to "acyclic and no disruptive
    trio" by the Brault-Baron characterization.
    """
    return is_elimination_order(hypergraph, list(reversed(list(order))))


def is_tractable_pair(
    hypergraph: Hypergraph, order: VariableOrder
) -> bool:
    """The dichotomy predicate of Carmeli et al. [18].

    A join query and full lexicographic order admit direct access with
    linear preprocessing and logarithmic access iff the query is acyclic
    and the order has no disruptive trio.
    """
    return is_acyclic(hypergraph) and not has_disruptive_trio(
        hypergraph, order
    )
