"""Hypergraph substrate: structure, GYO acyclicity, disruptive trios."""

from repro.hypergraph.disruptive_trios import (
    find_disruptive_trio,
    has_disruptive_trio,
    is_reverse_elimination_order,
    is_tractable_pair,
)
from repro.hypergraph.gyo import (
    gyo_reduce,
    is_acyclic,
    is_elimination_order,
    join_tree,
)
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "Hypergraph",
    "find_disruptive_trio",
    "gyo_reduce",
    "has_disruptive_trio",
    "is_acyclic",
    "is_elimination_order",
    "is_reverse_elimination_order",
    "is_tractable_pair",
    "join_tree",
]
