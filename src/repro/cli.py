"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze`` — classify a query/order pair: acyclicity, disruptive
  trios, the disruption-free decomposition, and the incompatibility
  number (the preprocessing exponent of Theorem 44).
* ``fhtw`` — the fractional hypertree width and a witness order
  (Proposition 45).
* ``access`` — prepare a query over relations read from CSV-ish files
  (through the :func:`repro.connect` facade) and serve indices /
  medians from the command line.
* ``session`` — load the relations once, then serve repeated requests
  read from stdin against one :class:`~repro.Connection`.  Two wire
  forms, one codepath: the human text grammar (``access x,y 0``) and
  ``--json`` mode (one :class:`~repro.session.SessionRequest` object
  per line) both parse into the same request dataclass and run through
  :func:`repro.session.protocol.execute`.
* ``serve`` — the same protocol over HTTP: ``--workers`` per-worker
  sessions over one shared artifact store (``POST /v1/session``,
  ``GET /healthz``, ``GET /stats``; spec in ``docs/protocol.md``),
  behind either the threaded stdlib front or, with ``--async``, an
  asyncio event loop multiplexing thousands of keep-alive connections
  onto the same bounded worker queues.  ``--wal PATH`` makes serving
  durable: every applied delta is logged before it runs, and a
  restarted server replays the log back to the pre-crash version.
  Query it with ``curl`` or from Python via
  ``repro.connect("http://host:port")``.
* ``wal`` — inspect, truncate, or compact a write-ahead log produced
  by ``serve --wal`` (compaction folds the whole history into one
  snapshot record).

The global ``--engine {python,numpy}`` flag selects the execution
engine (default: the ``REPRO_ENGINE`` environment variable, else
``python``).

Examples::

    python -m repro analyze "Q(x,y,z) :- R(x,y), S(y,z)" --order x,y,z
    python -m repro fhtw "Q(a,b,c) :- R(a,b), S(b,c), T(c,a)"
    python -m repro --engine numpy access "Q(x,y) :- R(x,y)" --order y,x \\
        --relation R=data/r.csv --index 0 --median
    printf 'access x,y 0\\nmedian -\\nstats\\n' | \\
        python -m repro session "Q(x,y) :- R(x,y)" --relation R=data/r.csv
    printf '{"op": "count"}\\n{"op": "quit"}\\n' | \\
        python -m repro session --json "Q(x,y) :- R(x,y)" \\
        --relation R=data/r.csv
    python -m repro serve --port 8080 --workers 8 \\
        --relation R=data/r.csv --query "Q(x,y) :- R(x,y)"
"""

from __future__ import annotations

import argparse
import sys

from repro.core.decomposition import DisruptionFreeDecomposition
from repro.engine import available_engines, set_engine
from repro.core.htw import fractional_hypertree_width
from repro.data.database import Database
from repro.data.relation import Relation  # noqa: F401 (re-export)
from repro.facade import connect
from repro.hypergraph.disruptive_trios import find_disruptive_trio
from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.parser import parse_query
from repro.query.variable_order import VariableOrder


def _parse_order(text: str) -> VariableOrder:
    return VariableOrder([v.strip() for v in text.split(",")])


def _load_relation(spec: str) -> tuple[str, Relation]:
    """Parse ``NAME=path``; the file format is that of repro.data.io."""
    from repro.data.io import load_relation
    from repro.errors import DatabaseError

    name, _, path = spec.partition("=")
    if not path:
        raise SystemExit(f"--relation needs NAME=path, got {spec!r}")
    try:
        return name, load_relation(path)
    except DatabaseError as error:
        raise SystemExit(str(error)) from None


def cmd_analyze(args) -> int:
    """Dual-mode ``repro analyze``.

    With ``--order`` (or a query-shaped positional containing ``:-``)
    this is the original query/order classifier.  Otherwise it is the
    project linter: the static-analysis pass of
    :mod:`repro.analysis` over the given paths (default ``src``),
    ``--strict`` failing on warnings and unjustified suppressions,
    ``--json`` emitting the deterministic report.
    """
    targets = args.targets
    query_shaped = bool(targets) and ":-" in targets[0]
    if args.order is not None or query_shaped:
        if args.order is None:
            raise SystemExit(
                "query classification needs --order (or pass paths "
                "to run the static-analysis linter)"
            )
        if len(targets) != 1:
            raise SystemExit(
                "query classification takes exactly one query"
            )
        return _analyze_query(targets[0], args)
    return _analyze_paths(targets, args)


def _analyze_paths(targets: list[str], args) -> int:
    """The linter half of ``repro analyze``."""
    import json as json_module
    from pathlib import Path

    from repro.analysis import analyze_paths

    paths = [Path(target) for target in (targets or ["src"])]
    for path in paths:
        if not path.exists():
            raise SystemExit(f"no such path: {path}")
    try:
        report = analyze_paths(
            paths,
            root=Path.cwd(),
            rules=args.rule or None,
            strict=args.strict,
        )
    except (ValueError, SyntaxError) as error:
        raise SystemExit(str(error)) from None
    if args.json:
        print(json_module.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        for line in report.render_text():
            print(line)
    return report.exit_code(strict=args.strict)


def _analyze_query(query_text: str, args) -> int:
    query = parse_query(query_text)
    hypergraph = Hypergraph.of_query(query)
    print(f"query:        {query}")
    print(f"acyclic:      {is_acyclic(hypergraph)}")
    order = _parse_order(args.order)
    trio = find_disruptive_trio(hypergraph, order)
    print(f"order:        {list(order)}")
    print(
        "disruptive trio: "
        + (f"{trio}" if trio else "none")
    )
    decomposition = DisruptionFreeDecomposition(query, order)
    print("disruption-free decomposition bags:")
    for bag in decomposition.bags:
        cover = ", ".join(
            f"{set(edge)}:{weight}" for edge, weight in bag.cover
        )
        print(
            f"  e_{bag.index + 1} ({bag.variable}): "
            f"{sorted(bag.edge)}  ρ* = {bag.cover_number}  "
            f"[cover: {cover}]"
        )
    iota = decomposition.incompatibility_number
    print(f"incompatibility number ι = {iota}")
    print(
        f"=> direct access: O(|D|^{iota}) preprocessing, "
        "O(log |D|) access (tight under Zero-Clique)"
    )
    return 0


def cmd_fhtw(args) -> int:
    query = parse_query(args.query)
    width, order = fractional_hypertree_width(query)
    print(f"query: {query}")
    print(f"fractional hypertree width: {width}")
    print(f"witness order: {list(order)}")
    return 0


def cmd_access(args) -> int:
    query = parse_query(args.query)
    order = _parse_order(args.order)
    relations = dict(
        _load_relation(spec) for spec in args.relation
    )
    view = connect(Database(relations)).prepare(query, order=order)
    print(f"{len(view)} answers over {list(order)}")
    for index in args.index or []:
        print(f"answers[{index}] = {view[index]}")
    if args.median:
        print(f"median = {view.median()}")
    return 0


_SESSION_HELP = """\
commands (one per line; order '-' lets the advisor choose):
  access <order|-> <index> [<index> ...]   answers at the indices
  median <order|->                          the middle answer
  page <order|-> <number> <size>            one page of ranked answers
  count <order|->                           the number of answers
  rank <order|-> <v1,v2,...>                inverse access: answer -> index
  plan [prefix]                             the order the advisor would pick
  insert <relation> <v1,v2> [...]           add rows (bumps db_version)
  delete <relation> <v1,v2> [...]           remove rows (bumps db_version)
  db_version                                the database's current version
  stats                                     cache/work counters
  help                                      this text
  quit                                      end the session

with --json, each line is one SessionRequest object instead, e.g.
  {"op": "access", "order": ["x", "y"], "indices": [0, -1]}
and each reply one SessionResponse object.\
"""


def _render_text(response) -> list[str]:
    """Human lines for one protocol response (the legacy text format)."""
    if not response.ok:
        return [f"error: {response.error}"]
    result = response.result
    op = response.op
    if op == "stats":
        return [f"  {key}: {value}" for key, value in result.items()]
    if op == "plan":
        return [
            f"order {','.join(result['order'])}  ι = {result['iota']}"
        ]
    if op == "count":
        return [
            f"{result['count']} answers over {result['order']}"
        ]
    if op == "access":
        return [
            f"answers[{index}] = {tuple(answer)}"
            for index, answer in zip(
                result["indices"], result["answers"]
            )
        ]
    if op == "median":
        return [f"median = {tuple(result['answer'])}"]
    if op == "page":
        return [f"{tuple(answer)}" for answer in result["answers"]]
    if op == "rank":
        rank = result["rank"]
        found = rank if rank is not None else "not an answer"
        return [f"rank[{tuple(result['answer'])}] = {found}"]
    if op in ("insert", "delete"):
        past = "inserted into" if op == "insert" else "deleted from"
        return [
            f"{result['rows']} row(s) {past} {result['relation']}; "
            f"db_version = {result['db_version']}"
        ]
    if op == "db_version":
        return [f"db_version = {result['db_version']}"]
    return []


def cmd_session(args) -> int:
    """Serve repeated stdin requests against one facade Connection.

    Text grammar and ``--json`` lines both become
    :class:`~repro.session.SessionRequest` objects and run through the
    protocol executor — one codepath, two renderings.
    """
    from repro.errors import ProtocolError, ReproError
    from repro.session.protocol import (
        SessionRequest,
        SessionResponse,
        execute,
        parse_command,
    )

    if args.capacity < 0:
        raise SystemExit("--capacity must be non-negative")
    query = parse_query(args.query)
    relations = dict(_load_relation(spec) for spec in args.relation)
    # The connection's engine does the right database preparation
    # itself (shared dictionary under numpy, warm sort caches under
    # python).
    database = Database(relations)
    try:
        # Fail fast at startup, not once per request.
        database.validate_for(query)
    except ReproError as error:
        raise SystemExit(str(error)) from None
    connection = connect(database, cache=args.capacity)
    json_mode = args.json
    if not json_mode:
        print(
            f"session ready: {query}  |D|={len(database)}  "
            f"engine={connection.engine_name}"
        )

    stream = args.commands if args.commands is not None else sys.stdin
    for line in stream:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if not json_mode and stripped.split()[0].lower() == "help":
            print(_SESSION_HELP)
            continue
        try:
            request = (
                SessionRequest.from_json(stripped)
                if json_mode
                else parse_command(stripped)
            )
        except ProtocolError as error:
            response = SessionResponse(
                op="?", ok=False, error=str(error)
            )
            print(
                response.to_json()
                if json_mode
                else f"error: {error}"
            )
            continue
        response = execute(connection, request, default_query=query)
        if json_mode:
            print(response.to_json())
        else:
            for rendered in _render_text(response):
                print(rendered)
        if request.op == "quit" and response.ok:
            break
    if not json_mode:
        stats = connection.session.stats
        print(
            f"served {stats.requests} requests; "
            f"{stats.bag_materializations} bag materializations, "
            f"{stats.forest_builds} forest builds"
        )
    return 0


def cmd_chaos(args) -> int:
    """Run the crash/recovery chaos harness (``repro chaos``)."""
    import json as json_module
    import os
    import time

    from repro.chaos.runner import run_chaos

    faults_spec = args.faults
    if faults_spec is not None and faults_spec.strip().lower() == "none":
        faults_spec = ""
    try:
        report = run_chaos(
            seed=args.seed,
            ops=args.ops,
            faults_spec=faults_spec,
            engine=args.engine,
            procs=args.procs,
            quick=args.quick,
            workers=args.workers,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    if args.record:
        from pathlib import Path

        target = Path(args.record)
        try:
            history = json_module.loads(target.read_text())
            if not isinstance(history, list):
                history = []
        except (OSError, ValueError):
            history = []
        entry = dict(report.as_dict())
        entry["bench"] = "chaos"
        entry["recorded_at"] = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        )
        entry["cpus"] = os.cpu_count()
        history.append(entry)
        target.write_text(
            json_module.dumps(history, indent=2, default=str) + "\n"
        )
    if args.json:
        print(json_module.dumps(report.as_dict(), indent=2))
    else:
        print(
            f"chaos seed={report.seed} ops={report.ops} "
            f"engine={report.engine}"
            + (f" procs={report.procs}" if report.procs else "")
            + f": {report.verdict.upper()}"
        )
        print(
            f"  executed={report.executed} crashes={report.crashes} "
            f"restarts={report.restarts} "
            f"ops_survived={report.ops_survived}"
        )
        for site in sorted(report.fault_counters):
            counts = report.fault_counters[site]
            if counts["calls"] or counts["fired"]:
                print(
                    f"  {site}: fired {counts['fired']} of "
                    f"{counts['calls']} passes"
                )
        for violation in report.violations:
            print(
                f"  VIOLATION at op {violation.op_index}: "
                f"{violation.kind}: {violation.detail}"
            )
        if report.repro:
            print(f"  reproduce: {report.repro}")
    return 0 if report.verdict == "pass" else 1


def cmd_serve(args) -> int:
    """Serve the JSON session protocol over HTTP (``repro serve``)."""
    import signal

    from repro.errors import ReproError

    if args.capacity < 0:
        raise SystemExit("--capacity must be non-negative")
    relations = dict(_load_relation(spec) for spec in args.relation)
    database = Database(relations)
    try:
        # Bad worker counts, unparsable/unsatisfiable default queries,
        # and unavailable engines must die at startup with one clean
        # line, not one traceback per request.
        common = dict(
            workers=args.workers,
            capacity=args.capacity,
            default_query=args.query,
            host=args.host,
            port=args.port,
            stats_per_worker=args.stats_per_worker,
            verbose=args.verbose,
            procs=args.procs,
            shards=args.shards,
            read_only=args.read_only,
            shard_relation=args.shard_relation,
            shard_variable=args.shard_variable,
            queue_depth=args.queue_depth,
            shard_backends=args.shard_backend or None,
            wal=args.wal,
            retain_versions=args.retain_versions,
            strict_views=args.strict_views,
            request_timeout=args.request_timeout,
            chaos=args.chaos,
        )
        if args.async_front:
            from repro.server.aio import AsyncReproServer

            server = AsyncReproServer(
                database,
                max_connections=args.max_connections,
                **common,
            )
        else:
            from repro.server.http import ReproServer

            server = ReproServer(database, **common)
    except (ValueError, ReproError) as error:
        raise SystemExit(str(error)) from None
    # SIGTERM must drain exactly like Ctrl-C: stop accepting, let
    # in-flight requests finish, detach and unlink every shared-memory
    # segment.  Both fronts expose request_shutdown() because the
    # blocking shutdown path cannot run on this main thread — the
    # threaded front's httpd.shutdown() *blocks* until serve_forever
    # (below, on this same thread) exits, and the async front's stop
    # event lives on the loop thread.  Installing a handler is only
    # legal on the main thread — embedded callers (tests drive main()
    # on a thread) rely on their own shutdown path instead.  Installed
    # *before* the server answers its first request: the async front
    # serves as soon as start() returns, so a supervisor that probes
    # /healthz and immediately signals must not beat the handler.

    def _drain(*_signal_args) -> None:
        server.request_shutdown()

    try:
        signal.signal(signal.SIGTERM, _drain)
    except ValueError:
        pass
    if args.async_front:
        # The async front binds on start (the threaded one binds in
        # its constructor); bind now so the banner prints the real
        # port — and a taken port dies here with one clean line.
        try:
            server.start()
        except OSError as error:
            raise SystemExit(str(error)) from None
    mode = server.health()["mode"]
    front = "async" if args.async_front else "threads"
    bound = "" if args.query is None else f"  query: {args.query}"
    flags = "  read-only" if server.read_only else ""
    print(
        f"repro serving on {server.url}  |D|={len(database)}  "
        f"engine={server.store.engine.name}  mode={mode}  "
        f"front={front}  "
        f"workers={server.workers}{flags}{bound}",
        flush=True,
    )
    print(
        f"  POST {server.url}/v1/session   "
        "(GET /healthz, GET /stats; SIGTERM/Ctrl-C drains)",
        flush=True,
    )
    if args.wal is not None:
        print(
            f"  wal: {args.wal}  recovered db_version="
            f"{server.store.db_version}",
            flush=True,
        )

    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    if server.clean_shutdown is False:
        print("unclean drain: a worker had to be terminated", flush=True)
        return 1
    return 0


def cmd_wal(args) -> int:
    """Inspect / truncate / compact a ``serve --wal`` log."""
    from repro.data.wal import WriteAheadLog
    from repro.errors import WalError

    try:
        wal = WriteAheadLog(args.path)
    except WalError as error:
        raise SystemExit(str(error)) from None
    try:
        if args.wal_command == "truncate":
            dropped = wal.truncate(args.keep_through)
            print(
                f"dropped {dropped} record(s) after seq "
                f"{args.keep_through}; last_seq = {wal.last_seq}, "
                f"db_version = {wal.last_db_version}"
            )
            return 0
        if args.wal_command == "compact":
            subsumed = wal.compact()
            print(
                f"compacted {subsumed} record(s) into one snapshot; "
                f"last_seq = {wal.last_seq}, "
                f"db_version = {wal.last_db_version}"
            )
            return 0
        # inspect (the default)
        stats = wal.wal_stats()
        records = wal.records()
        print(
            f"wal {args.path}: format {stats['format']}, "
            f"{len(records)} record(s), last_seq = {stats['last_seq']}, "
            f"db_version = {stats['last_db_version']}"
        )
        if stats["torn_tail_dropped"]:
            print(
                f"  (dropped {stats['torn_tail_dropped']} torn "
                "record(s) at the tail)"
            )
        for record in records:
            if record.kind == "snapshot":
                rows = sum(
                    len(side) for side in record.relations.values()
                )
                print(
                    f"  seq {record.seq}: snapshot @ db_version "
                    f"{record.db_version} "
                    f"({len(record.relations)} relation(s), "
                    f"{rows} row(s))"
                )
            else:
                print(
                    f"  seq {record.seq}: delta -> db_version "
                    f"{record.db_version} "
                    f"({record.delta.size()} row(s) across "
                    f"{sorted(record.delta.touched)})"
                )
        return 0
    except WalError as error:
        raise SystemExit(str(error)) from None
    finally:
        wal.close()


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__
    from repro.data.wal import WAL_FORMAT_VERSION
    from repro.session.protocol import PROTOCOL_VERSION

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lexicographic direct access on join queries "
        "(Bringmann, Carmeli & Mengel, PODS 2022).",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=(
            f"repro {__version__} (protocol {PROTOCOL_VERSION}, "
            f"wal format {WAL_FORMAT_VERSION})"
        ),
        help="print package, protocol, and wal-format versions "
        "and exit",
    )
    parser.add_argument(
        "--engine",
        choices=["python", "numpy"],
        default=None,
        help="execution engine (default: $REPRO_ENGINE or 'python'; "
        f"available here: {', '.join(available_engines())})",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze",
        help="classify a query/order pair, or lint the project's "
        "invariants statically",
        description="Two modes.  With --order: classify a query/order "
        "pair (acyclicity, disruptive trios, the incompatibility "
        "number).  Without: run the static-analysis pass "
        "(docs/analysis.md) over the given paths — lock-order "
        "deadlock detection, async/exception safety, layering and "
        "registry sync — with per-line '# repro: noqa[RULE-ID] -- "
        "reason' suppressions.",
    )
    analyze.add_argument(
        "targets",
        nargs="*",
        help="a query (with --order) or paths to lint (default: src)",
    )
    analyze.add_argument(
        "--order",
        default=None,
        help="comma-separated variables (selects classifier mode)",
    )
    analyze.add_argument(
        "--strict",
        action="store_true",
        help="linter mode: fail on warnings and on suppressions "
        "without a justification (the CI gate)",
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="linter mode: emit the deterministic JSON report",
    )
    analyze.add_argument(
        "--rule",
        action="append",
        default=[],
        metavar="RULE-ID",
        help="linter mode: only report these rule ids (repeatable)",
    )
    analyze.set_defaults(func=cmd_analyze)

    fhtw = commands.add_parser(
        "fhtw", help="fractional hypertree width (Prop. 45)"
    )
    fhtw.add_argument("query")
    fhtw.set_defaults(func=cmd_fhtw)

    access = commands.add_parser(
        "access", help="direct access over CSV relations"
    )
    access.add_argument("query")
    access.add_argument("--order", required=True)
    access.add_argument(
        "--relation",
        action="append",
        default=[],
        help="NAME=path, repeatable",
    )
    access.add_argument(
        "--index", type=int, action="append", help="repeatable"
    )
    access.add_argument("--median", action="store_true")
    access.set_defaults(func=cmd_access)

    session = commands.add_parser(
        "session",
        help="load relations once, serve repeated requests from stdin",
        description="Serve access/median/page/count requests read from "
        "stdin against one cached AccessSession.\n\n" + _SESSION_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    session.add_argument("query")
    session.add_argument(
        "--relation",
        action="append",
        default=[],
        help="NAME=path, repeatable",
    )
    session.add_argument(
        "--capacity",
        type=int,
        default=64,
        help="per-cache LRU capacity (default 64)",
    )
    session.add_argument(
        "--json",
        action="store_true",
        help="speak the JSON protocol: one SessionRequest object per "
        "input line, one SessionResponse object per output line",
    )
    session.set_defaults(func=cmd_session, commands=None)

    serve = commands.add_parser(
        "serve",
        help="serve the JSON session protocol over HTTP",
        description="Serve the versioned JSON session protocol "
        "(docs/protocol.md) at POST /v1/session, with GET /healthz "
        "and GET /stats, using per-worker sessions over one shared "
        "artifact store.",
    )
    serve.add_argument(
        "--relation",
        action="append",
        default=[],
        help="NAME=path, repeatable",
    )
    serve.add_argument(
        "--query",
        default=None,
        help="bind a default query for requests that carry none",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port (0 picks an ephemeral one)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="per-worker session pool size (default 4)",
    )
    serve.add_argument(
        "--capacity",
        type=int,
        default=64,
        help="per-artifact-kind cache capacity (default 64)",
    )
    serve.add_argument(
        "--async",
        dest="async_front",
        action="store_true",
        help="serve with the asyncio front: one event loop "
        "multiplexes all connections onto the worker pool "
        "(same wire protocol; combines with every mode)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="bound on each worker's pending-request queue "
        "(default 16); a full fleet answers 503 + Retry-After",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=1024,
        help="async front only: ceiling on open connections "
        "(default 1024); excess connections get a structured 503",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="socket read/write timeout in seconds (default 30); "
        "stalled clients lose the connection, not a worker",
    )
    serve.add_argument(
        "--shard-backend",
        action="append",
        default=[],
        metavar="URL",
        help="serve by fanning reads out to this remote repro-serve "
        "replica (repeatable, one per range shard, in shard order; "
        "read-only, needs --query)",
    )
    serve.add_argument(
        "--procs",
        type=int,
        default=None,
        help="serve with N worker processes attached zero-copy to "
        "one shared-memory database (default: in-process threads)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve with one process per range shard of the "
        "partitioned relation (read-only; needs --query)",
    )
    serve.add_argument(
        "--shard-relation",
        default=None,
        help="partition this relation (default: largest candidate)",
    )
    serve.add_argument(
        "--shard-variable",
        default=None,
        help="shard on this leading variable (default: the advisor's "
        "preferred order decides)",
    )
    serve.add_argument(
        "--wal",
        default=None,
        metavar="PATH",
        help="write-ahead log: replayed at startup (crash recovery), "
        "appended before every applied delta (durable mutations); "
        "inspect with 'repro wal'",
    )
    serve.add_argument(
        "--retain-versions",
        type=int,
        default=None,
        help="MVCC snapshot window: how many database versions "
        "pinned views can keep reading (default 4)",
    )
    serve.add_argument(
        "--strict-views",
        action="store_true",
        help="restore the strict staleness contract: any pinned read "
        "after a mutation fails with StaleViewError",
    )
    serve.add_argument(
        "--read-only",
        action="store_true",
        help="refuse insert/delete/apply with a structured HTTP 403",
    )
    serve.add_argument(
        "--stats-per-worker",
        action="store_true",
        help="include a (bounded) per-worker breakdown in GET /stats "
        "next to the aggregated totals",
    )
    serve.add_argument(
        "--verbose",
        action="store_true",
        help="log one line per HTTP request",
    )
    serve.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="arm deterministic fault injection, e.g. "
        "'seed=7,wal.fsync:nth=3,client.timeout:p=0.25' "
        "(testing only; see docs/architecture.md, Failure model)",
    )
    serve.set_defaults(func=cmd_serve)

    chaos = commands.add_parser(
        "chaos",
        help="run the deterministic crash/recovery chaos harness",
        description="Drive a live serving core with seeded mixed "
        "traffic while injecting faults (torn WAL writes, worker "
        "kills, lost fsyncs), crash and restart it, and model-check "
        "that no acknowledged write is lost, no unacknowledged write "
        "is resurrected, and pinned snapshots stay bit-identical. "
        "Fully deterministic: the same seed replays the same run.",
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=1,
        help="seed for the op stream and every fault schedule "
        "(default 1)",
    )
    chaos.add_argument(
        "--ops",
        type=int,
        default=300,
        help="operations to drive (default 300)",
    )
    chaos.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault plan (default: every WAL site, plus the pool "
        "sites under --procs); 'none' disables injection",
    )
    chaos.add_argument(
        "--engine",
        default=None,
        help="serve with this engine (default: the resolved one)",
    )
    chaos.add_argument(
        "--procs",
        type=int,
        default=None,
        help="run the process-pool mode with N workers",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker pool size (default 2)",
    )
    chaos.add_argument(
        "--quick",
        action="store_true",
        help="small seed database (CI smoke size)",
    )
    chaos.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON instead of a summary",
    )
    chaos.add_argument(
        "--record",
        default=None,
        metavar="PATH",
        help="append the verdict to this BENCH_serving.json-style "
        "trajectory file",
    )
    chaos.set_defaults(func=cmd_chaos)

    wal = commands.add_parser(
        "wal",
        help="inspect, truncate, or compact a serve --wal log",
        description="Operate on a write-ahead log produced by "
        "'repro serve --wal': 'inspect' lists every durable record, "
        "'truncate' drops records after a sequence number, and "
        "'compact' folds the whole history into one snapshot record "
        "(same recovered state, shortest possible replay).",
    )
    wal_commands = wal.add_subparsers(
        dest="wal_command", required=True
    )
    wal_inspect = wal_commands.add_parser(
        "inspect", help="list the log's records and position"
    )
    wal_inspect.add_argument("path", help="path of the log file")
    wal_truncate = wal_commands.add_parser(
        "truncate", help="drop records after --keep-through"
    )
    wal_truncate.add_argument("path", help="path of the log file")
    wal_truncate.add_argument(
        "--keep-through",
        type=int,
        required=True,
        metavar="SEQ",
        help="keep records with seq <= SEQ, drop the rest",
    )
    wal_compact = wal_commands.add_parser(
        "compact",
        help="fold the whole history into one snapshot record",
    )
    wal_compact.add_argument("path", help="path of the log file")
    wal.set_defaults(func=cmd_wal)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.engine import get_engine
    from repro.errors import EngineError

    try:
        if args.engine is not None:
            set_engine(args.engine)
        else:
            get_engine()  # surface a bad $REPRO_ENGINE cleanly
    except EngineError as error:
        raise SystemExit(str(error)) from None
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-stream: normal for
        # a serving CLI. Detach stdout so interpreter shutdown does not
        # try (and fail) to flush it.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
