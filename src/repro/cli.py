"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze`` — classify a query/order pair: acyclicity, disruptive
  trios, the disruption-free decomposition, and the incompatibility
  number (the preprocessing exponent of Theorem 44).
* ``fhtw`` — the fractional hypertree width and a witness order
  (Proposition 45).
* ``access`` — preprocess a query over relations read from CSV-ish
  files and serve indices / medians from the command line.
* ``session`` — load the relations once, then serve repeated
  ``access`` / ``median`` / ``page`` / ``count`` requests read from
  stdin against one :class:`~repro.session.AccessSession` (shared
  dictionary encoding, cross-order preprocessing cache).

The global ``--engine {python,numpy}`` flag selects the execution
engine (default: the ``REPRO_ENGINE`` environment variable, else
``python``).

Examples::

    python -m repro analyze "Q(x,y,z) :- R(x,y), S(y,z)" --order x,y,z
    python -m repro fhtw "Q(a,b,c) :- R(a,b), S(b,c), T(c,a)"
    python -m repro --engine numpy access "Q(x,y) :- R(x,y)" --order y,x \\
        --relation R=data/r.csv --index 0 --median
    printf 'access x,y 0\\nmedian -\\nstats\\n' | \\
        python -m repro session "Q(x,y) :- R(x,y)" --relation R=data/r.csv
"""

from __future__ import annotations

import argparse
import sys

from repro.core.access import DirectAccess
from repro.core.decomposition import DisruptionFreeDecomposition
from repro.engine import available_engines, set_engine
from repro.core.htw import fractional_hypertree_width
from repro.core.tasks import median
from repro.data.database import Database
from repro.data.relation import Relation  # noqa: F401 (re-export)
from repro.hypergraph.disruptive_trios import find_disruptive_trio
from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.parser import parse_query
from repro.query.variable_order import VariableOrder


def _parse_order(text: str) -> VariableOrder:
    return VariableOrder([v.strip() for v in text.split(",")])


def _load_relation(spec: str) -> tuple[str, Relation]:
    """Parse ``NAME=path``; the file format is that of repro.data.io."""
    from repro.data.io import load_relation
    from repro.errors import DatabaseError

    name, _, path = spec.partition("=")
    if not path:
        raise SystemExit(f"--relation needs NAME=path, got {spec!r}")
    try:
        return name, load_relation(path)
    except DatabaseError as error:
        raise SystemExit(str(error)) from None


def cmd_analyze(args) -> int:
    query = parse_query(args.query)
    hypergraph = Hypergraph.of_query(query)
    print(f"query:        {query}")
    print(f"acyclic:      {is_acyclic(hypergraph)}")
    order = _parse_order(args.order)
    trio = find_disruptive_trio(hypergraph, order)
    print(f"order:        {list(order)}")
    print(
        "disruptive trio: "
        + (f"{trio}" if trio else "none")
    )
    decomposition = DisruptionFreeDecomposition(query, order)
    print("disruption-free decomposition bags:")
    for bag in decomposition.bags:
        cover = ", ".join(
            f"{set(edge)}:{weight}" for edge, weight in bag.cover
        )
        print(
            f"  e_{bag.index + 1} ({bag.variable}): "
            f"{sorted(bag.edge)}  ρ* = {bag.cover_number}  "
            f"[cover: {cover}]"
        )
    iota = decomposition.incompatibility_number
    print(f"incompatibility number ι = {iota}")
    print(
        f"=> direct access: O(|D|^{iota}) preprocessing, "
        "O(log |D|) access (tight under Zero-Clique)"
    )
    return 0


def cmd_fhtw(args) -> int:
    query = parse_query(args.query)
    width, order = fractional_hypertree_width(query)
    print(f"query: {query}")
    print(f"fractional hypertree width: {width}")
    print(f"witness order: {list(order)}")
    return 0


def cmd_access(args) -> int:
    query = parse_query(args.query)
    order = _parse_order(args.order)
    relations = dict(
        _load_relation(spec) for spec in args.relation
    )
    database = Database(relations)
    access = DirectAccess(query, order, database)
    print(f"{len(access)} answers over {list(order)}")
    for index in args.index or []:
        print(f"answers[{index}] = {access.tuple_at(index)}")
    if args.median:
        print(f"median = {median(access)}")
    return 0


_SESSION_HELP = """\
commands (one per line; order '-' lets the advisor choose):
  access <order|-> <index> [<index> ...]   answers at the indices
  median <order|->                          the middle answer
  page <order|-> <number> <size>            one page of ranked answers
  count <order|->                           the number of answers
  plan [prefix]                             the order the advisor would pick
  stats                                     cache/work counters
  help                                      this text
  quit                                      end the session\
"""


def cmd_session(args) -> int:
    """Serve repeated requests from stdin against one AccessSession."""
    from repro.errors import ReproError
    from repro.session import AccessSession

    if args.capacity < 0:
        raise SystemExit("--capacity must be non-negative")
    query = parse_query(args.query)
    relations = dict(_load_relation(spec) for spec in args.relation)
    # The session's engine does the right database preparation itself
    # (shared dictionary under numpy, warm sort caches under python).
    database = Database(relations)
    try:
        # Fail fast at startup, not once per request.
        database.validate_for(query)
    except ReproError as error:
        raise SystemExit(str(error)) from None
    session = AccessSession(database, capacity=args.capacity)
    print(
        f"session ready: {query}  |D|={len(database)}  "
        f"engine={session.engine.name}"
    )

    def resolve_order(token: str):
        return None if token == "-" else _parse_order(token)

    stream = args.commands if args.commands is not None else sys.stdin
    for line in stream:
        words = line.split()
        if not words or words[0].startswith("#"):
            continue
        command, rest = words[0].lower(), words[1:]
        try:
            if command in ("quit", "exit"):
                break
            elif command == "help":
                print(_SESSION_HELP)
            elif command == "stats":
                for key, value in session.cache_stats().items():
                    print(f"  {key}: {value}")
            elif command == "plan":
                prefix = _parse_order(rest[0]) if rest else None
                report = session.plan(query, prefix)
                print(
                    f"order {','.join(report.order)}  ι = {report.iota}"
                )
            elif command == "count":
                (order_token,) = rest
                access = session.access(
                    query, order=resolve_order(order_token)
                )
                print(f"{len(access)} answers over {list(access.order)}")
            elif command == "access":
                order_token, *index_tokens = rest
                if not index_tokens:
                    raise ValueError("access needs at least one index")
                # Parse before serving: a malformed index must not pay
                # (and then discard) a cold preprocessing pass.
                indices = [int(token) for token in index_tokens]
                access = session.access(
                    query, order=resolve_order(order_token)
                )
                for index, answer in zip(
                    indices, access.tuples_at(indices)
                ):
                    print(f"answers[{index}] = {answer}")
            elif command == "median":
                (order_token,) = rest
                median = session.median(
                    query, order=resolve_order(order_token)
                )
                print(f"median = {median}")
            elif command == "page":
                order_token, number, size = rest
                number, size = int(number), int(size)
                for answer in session.page(
                    query, number, size,
                    order=resolve_order(order_token),
                ):
                    print(answer)
            else:
                print(f"error: unknown command {command!r} (try 'help')")
        except (ReproError, ValueError) as error:
            print(f"error: {error}")
    stats = session.stats
    print(
        f"served {stats.requests} requests; "
        f"{stats.bag_materializations} bag materializations, "
        f"{stats.forest_builds} forest builds"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lexicographic direct access on join queries "
        "(Bringmann, Carmeli & Mengel, PODS 2022).",
    )
    parser.add_argument(
        "--engine",
        choices=["python", "numpy"],
        default=None,
        help="execution engine (default: $REPRO_ENGINE or 'python'; "
        f"available here: {', '.join(available_engines())})",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze", help="classify a query/order pair"
    )
    analyze.add_argument("query")
    analyze.add_argument(
        "--order", required=True, help="comma-separated variables"
    )
    analyze.set_defaults(func=cmd_analyze)

    fhtw = commands.add_parser(
        "fhtw", help="fractional hypertree width (Prop. 45)"
    )
    fhtw.add_argument("query")
    fhtw.set_defaults(func=cmd_fhtw)

    access = commands.add_parser(
        "access", help="direct access over CSV relations"
    )
    access.add_argument("query")
    access.add_argument("--order", required=True)
    access.add_argument(
        "--relation",
        action="append",
        default=[],
        help="NAME=path, repeatable",
    )
    access.add_argument(
        "--index", type=int, action="append", help="repeatable"
    )
    access.add_argument("--median", action="store_true")
    access.set_defaults(func=cmd_access)

    session = commands.add_parser(
        "session",
        help="load relations once, serve repeated requests from stdin",
        description="Serve access/median/page/count requests read from "
        "stdin against one cached AccessSession.\n\n" + _SESSION_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    session.add_argument("query")
    session.add_argument(
        "--relation",
        action="append",
        default=[],
        help="NAME=path, repeatable",
    )
    session.add_argument(
        "--capacity",
        type=int,
        default=64,
        help="per-cache LRU capacity (default 64)",
    )
    session.set_defaults(func=cmd_session, commands=None)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.engine import get_engine
    from repro.errors import EngineError

    try:
        if args.engine is not None:
            set_engine(args.engine)
        else:
            get_engine()  # surface a bad $REPRO_ENGINE cleanly
    except EngineError as error:
        raise SystemExit(str(error)) from None
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-stream: normal for
        # a serving CLI. Detach stdout so interpreter shutdown does not
        # try (and fail) to flush it.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
