"""The public facade: ``connect`` → :class:`Connection` → :class:`AnswerView`.

The paper's result is that, after preprocessing, the sorted answer set
``Q(D)`` behaves like an array: the k-th answer is retrievable in
``O(ℓ log |D|)``.  That is exactly Python's :class:`collections.abc.Sequence`
contract, so the library's public surface is one prepared-query handle
with sequence semantics:

    >>> import repro
    >>> conn = repro.connect({"R": {(1, 2), (3, 2)}, "S": {(2, 7), (2, 9)}})
    >>> view = conn.prepare("Q(x, y, z) :- R(x, y), S(y, z)",
    ...                     order=["x", "y", "z"])
    >>> len(view), view[0], view[-1]
    (4, (1, 2, 7), (3, 2, 9))
    >>> view.rank((3, 2, 7))            # inverse access: answer -> index
    2
    >>> list(view[1:3])                 # slices are lazy sub-views
    [(1, 2, 9), (3, 2, 7)]

Everything underneath — engine selection, dictionary encoding,
cache-aware planning, cross-order preprocessing reuse — is the
:class:`~repro.session.AccessSession` engine room behind the
:class:`Connection`; every :meth:`Connection.prepare` is a cache-aware
planning step, so preparing the same query twice costs one
preprocessing pass.

Inverse access (:meth:`AnswerView.rank` / ``in`` / ``index``) descends
the counting forest with one binary search per level — ``O(ℓ log |D|)``
per lookup, never enumeration — so ``view[view.rank(t)] == t``
round-trips and membership over answer sets of any size is cheap.
"""

from __future__ import annotations

import operator
import weakref
from collections.abc import Iterator, Mapping, Sequence
from fractions import Fraction

from repro.core import tasks
from repro.core.access import DirectAccess
from repro.core.advisor import OrderReport
from repro.engine.registry import get_engine
from repro.data.database import Database
from repro.data.delta import Delta
from repro.errors import (
    NotAnAnswerError,
    OutOfBoundsError,
    ReproError,
    StaleViewError,
)
from repro.query.parser import parse_query
from repro.session.session import AccessSession


def connect(
    database: Database | Mapping | str,
    *,
    engine=None,
    cache: int | None = 64,
    cache_slack: Fraction | int | float = 0,
    timeout: float = 30.0,
    retain_versions: int | None = None,
    strict_views: bool = False,
):
    """Open a connection over a database — local or served over HTTP.

    With a database (or a plain mapping), this returns an in-process
    :class:`Connection`; with a URL string, an
    :class:`~repro.server.client.HTTPConnection` to a ``repro serve``
    process — same ``prepare`` → view API, so application code does not
    care where the preprocessing runs:

        >>> import repro
        >>> conn = repro.connect({"R": {(1, 2)}, "S": {(2, 7)}})
        >>> conn.prepare("Q(x, y, z) :- R(x, y), S(y, z)",
        ...              order=["x", "y", "z"])[0]
        (1, 2, 7)
        >>> repro.connect("http://127.0.0.1:8080")      # doctest: +SKIP
        HTTPConnection('http://127.0.0.1:8080', open)

    Args:
        database: a :class:`~repro.data.database.Database`, a plain
            mapping of relation names to tuple iterables (converted),
            or the URL of a running ``repro serve`` (``"http://..."``,
            ``"https://..."``, or a bare ``"host:port"``).
        engine: execution engine (name, instance, or ``None`` for a
            fresh instance of the process-global active engine's kind);
            pinned for the connection's lifetime.  Passing ``None`` or
            a name gives the connection its own instance — and thus its
            own :class:`~repro.engine.base.OpCounters` — while an
            explicit instance is shared as given.  (Local connections
            only: a URL's engine was chosen by the server.)
        cache: per-artifact cache capacity of the connection's store
            (``None`` = unbounded, ``0`` = caching disabled).
        cache_slack: how much preprocessing exponent the planner may
            trade for a warm cache (see
            :class:`~repro.session.AccessSession`).
        timeout: per-request socket timeout in seconds (URLs only).
        retain_versions: how many MVCC database snapshots the store
            keeps, so views prepared before a mutation keep serving
            (see :class:`~repro.session.mvcc.SnapshotPlane`; local
            connections only).
        strict_views: opt-in strict staleness — any read of a view
            pinned to a non-head version raises
            :class:`~repro.errors.StaleViewError` (the pre-MVCC
            contract; local connections only).
    """
    if isinstance(database, str):
        from repro.server.client import HTTPConnection

        if (
            engine is not None
            or cache != 64
            or cache_slack != 0
            or retain_versions is not None
            or strict_views
        ):
            raise ReproError(
                "engine/cache/cache_slack/retain_versions/strict_views "
                "are server-side settings; set them where `repro "
                "serve` runs"
            )
        return HTTPConnection(database, timeout=timeout)
    if not isinstance(database, Database):
        database = Database(database)
    if engine is None:
        # A fresh instance of the active engine's kind: connection-local
        # op counters, no shared mutable state with other connections.
        engine = get_engine().name
    return Connection(
        AccessSession(
            database,
            engine=engine,
            capacity=cache,
            cache_slack=cache_slack,
            retain_versions=retain_versions,
            strict_views=strict_views,
        )
    )


class Connection:
    """A prepared-query handle over one database.

    Wraps the serving layer (:class:`~repro.session.AccessSession`):
    every :meth:`prepare` is cache-aware planning, so repeated or
    sibling-order requests share dictionary encodings, materialized bag
    relations, and counting forests.  Thread-safe: artifacts live in a
    :class:`~repro.session.ArtifactStore` whose builds synchronize per
    artifact, so concurrent threads never duplicate a preprocessing
    pass — and never serialize behind an unrelated one.

    Construct through :func:`connect` — with a URL instead of a
    database, :func:`connect` returns the wire twin of this class
    (:class:`~repro.server.client.HTTPConnection`) and ``prepare``
    returns remote views with the same Sequence semantics.
    """

    def __init__(self, session: AccessSession):
        self._session = session
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Drop the caches and refuse further ``prepare`` calls."""
        if not self._closed:
            self._session.clear()
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("connection is closed")

    # -- the one API -------------------------------------------------------

    def prepare(
        self,
        query,
        order=None,
        prefix=None,
        projected: frozenset[str] | set[str] = frozenset(),
        at_version: int | None = None,
    ) -> "AnswerView":
        """Preprocess ``query`` and return its sorted answers as a view.

        Args:
            query: a :class:`~repro.query.query.JoinQuery` or its text.
            order: the lexicographic variable order; ``None`` lets the
                cache-aware planner choose the cheapest one.
            prefix: with ``order=None``, a required order prefix — the
                planner picks the cheapest completion (Definition 49).
            projected: variables to project away (must form a suffix of
                an explicit ``order``).
            at_version: pin the view to a retained MVCC snapshot
                instead of the current head; raises
                :class:`~repro.errors.StaleViewError` when that
                version is no longer retained.
        """
        self._check_open()
        access, version = self._session.access_versioned(
            query,
            order=order,
            prefix=prefix,
            projected=projected,
            at_version=at_version,
        )
        return AnswerView(
            access, session=self._session, version=version
        )

    def plan(self, query, prefix=None) -> OrderReport:
        """The order :meth:`prepare` would serve ``query`` with."""
        self._check_open()
        if isinstance(query, str):
            query = parse_query(query)
        return self._session.plan(query, prefix)

    # -- mutations ---------------------------------------------------------

    def apply(self, delta) -> int:
        """Apply a :class:`~repro.data.delta.Delta` of tuple inserts
        and deletes; returns the new database version.

        Maintenance is incremental where order-preservation allows
        (shared dictionary extended in place, untouched relations and
        their cached artifacts reused).  Views prepared before the
        delta keep serving their MVCC snapshot while it stays
        retained; :class:`~repro.errors.StaleViewError` is raised
        only once the snapshot is evicted (or always, under
        ``strict_views``).  A delta that changes nothing *effective*
        (every insert already present, every delete already absent)
        is a no-op: no version bump, current version returned.
        """
        self._check_open()
        return self._session.apply(delta)

    def insert(self, relation: str, rows) -> int:
        """Insert ``rows`` into ``relation``; the new database version."""
        return self.apply(Delta(inserts={relation: rows}))

    def delete(self, relation: str, rows) -> int:
        """Delete ``rows`` from ``relation``; the new database version."""
        return self.apply(Delta(deletes={relation: rows}))

    @property
    def db_version(self) -> int:
        """The served database's version (bumped by :meth:`apply`)."""
        return self._session.db_version

    # -- observability -----------------------------------------------------

    @property
    def database(self) -> Database:
        return self._session.database

    @property
    def engine_name(self) -> str:
        return self._session.engine.name

    @property
    def session(self) -> AccessSession:
        """The serving engine room (caches, planner) behind this handle."""
        return self._session

    def stats(self) -> dict:
        """An atomic snapshot of cache/work counters (plain dicts)."""
        return self._session.cache_stats()

    def clear_cache(self) -> None:
        """Drop every cached artifact (counters are kept)."""
        self._check_open()
        self._session.clear()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Connection({self.database!r}, "
            f"engine={self.engine_name!r}, {state})"
        )


class WindowedAnswers(Sequence):
    """The window and inverse-access laws every answer view obeys.

    Subclasses supply three primitives — :meth:`_resolve` (batch
    positional fetch of *underlying* indices), :meth:`_rank_underlying`
    (inverse access in the un-windowed sequence, ``None`` for
    non-answers), and :meth:`_subview` (rewrap a narrowed ``range``
    window) — and inherit the whole ``Sequence`` surface: negative
    indices, lazy slice sub-views (steps included), chunked
    ``__iter__``/``__reversed__``, :meth:`rank` / ``in`` /
    :meth:`index` / :meth:`count`, and the order-statistics task layer
    (:meth:`median`, :meth:`quantile`, :meth:`page`, :meth:`sample`,
    :meth:`boxplot`).  One implementation keeps the local view
    (:class:`AnswerView`) and the HTTP view
    (:class:`~repro.server.client.RemoteAnswerView`) law-identical —
    the cross-engine Sequence-law suite runs against both.
    """

    #: Batch size of ``__iter__``/``__reversed__``.
    ITER_CHUNK = 1024

    __slots__ = ("_window",)

    # -- subclass primitives -----------------------------------------------

    def _resolve(self, underlying: list[int]) -> list[tuple]:
        """Answer tuples at the given *underlying* (pre-window) indices."""
        raise NotImplementedError

    def _rank_underlying(self, row: tuple) -> int | None:
        """The pre-window rank of ``row``, or ``None`` if no answer."""
        raise NotImplementedError

    def _subview(self, window: range) -> "WindowedAnswers":
        """This view narrowed to ``window`` (lazily — nothing copied)."""
        raise NotImplementedError

    @property
    def query(self):
        raise NotImplementedError

    # -- Sequence: positional access ---------------------------------------

    def __len__(self) -> int:
        return len(self._window)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __getitem__(self, item):
        if isinstance(item, slice):
            return self._subview(self._window[item])
        try:
            underlying = self._window[operator.index(item)]
        except IndexError:
            n = len(self._window)
            raise OutOfBoundsError(
                f"index {item} out of range [-{n}, {n})"
            ) from None
        return self._resolve([underlying])[0]

    def tuple_at(self, index: int) -> tuple:
        """Positional access (the ``SupportsDirectAccess`` protocol)."""
        return self[index]

    def tuples_at(self, indices) -> list[tuple]:
        """Batch positional access: one backend batch for ``indices``."""
        window = self._window
        n = len(window)
        underlying = []
        for index in indices:
            index = operator.index(index)
            try:
                underlying.append(window[index])
            except IndexError:
                raise OutOfBoundsError(
                    f"index {index} out of range [-{n}, {n})"
                ) from None
        return self._resolve(underlying)

    def __iter__(self) -> Iterator[tuple]:
        window = self._window
        for start in range(0, len(window), self.ITER_CHUNK):
            chunk = window[start : start + self.ITER_CHUNK]
            yield from self._resolve(list(chunk))

    def __reversed__(self) -> Iterator[tuple]:
        return iter(self[::-1])

    # -- Sequence: inverse access ------------------------------------------

    def rank(self, row: tuple) -> int:
        """The index of answer ``row`` in this view (inverse access).

        One counting-forest descent with a per-level binary search —
        ``O(ℓ log |D|)``, no enumeration — then an O(1) window
        translation for sliced views.  Raises
        :class:`~repro.errors.NotAnAnswerError` (a ``ValueError``) when
        ``row`` is not an answer, or lies outside this view's window.
        """
        underlying = self._rank_underlying(row)
        if underlying is None:
            raise NotAnAnswerError(
                f"{row!r} is not an answer of {self.query}"
            )
        try:
            return self._window.index(underlying)
        except ValueError:
            raise NotAnAnswerError(
                f"{row!r} is an answer of {self.query} but outside "
                f"this view's window"
            ) from None

    def ranks(self, rows) -> list[int | None]:
        """Batch :meth:`rank`: the view index of each row, ``None`` for
        non-answers (and answers outside the window) instead of raising."""
        out = []
        for row in rows:
            try:
                out.append(self.rank(row))
            except NotAnAnswerError:
                out.append(None)
        return out

    def __contains__(self, row) -> bool:
        try:
            self.rank(row)
        except NotAnAnswerError:
            return False
        return True

    def index(self, value, start: int = 0, stop: int | None = None) -> int:
        """``Sequence.index`` without enumeration: one rank lookup."""
        position = self.rank(value)  # NotAnAnswerError is a ValueError
        n = len(self)
        if start < 0:
            start = max(n + start, 0)
        if stop is None:
            stop = n
        elif stop < 0:
            stop += n
        if not start <= position < stop:
            raise ValueError(
                f"{value!r} is not in view[{start}:{stop}]"
            )
        return position

    def count(self, value) -> int:
        """0 or 1: answers are distinct and the window never repeats."""
        return 1 if value in self else 0

    # -- the task layer ----------------------------------------------------

    def median(self) -> tuple:
        """The middle answer of this view."""
        return tasks.median_impl(self)

    def quantile(self, fraction: Fraction | float) -> tuple:
        """The answer at rank ``⌊fraction * (len-1)⌋`` (nearest-rank)."""
        return tasks.quantile_impl(self, fraction)

    def boxplot(self) -> dict[str, tuple]:
        """Five-number summary, resolved in one batch access."""
        return tasks.boxplot_impl(self)

    def page(self, page_number: int, page_size: int) -> list[tuple]:
        """Ranked pagination: answers ``[page*size, (page+1)*size)``."""
        return tasks.page_impl(self, page_number, page_size)

    def sample(self, k: int, seed: int | None = None) -> list[tuple]:
        """``k`` uniform answers without repetition, one batch access."""
        return tasks.sample_impl(self, k, seed)

    def to_list(self) -> list[tuple]:
        """Materialize the view (chunked batches under the hood)."""
        return list(self)


class AnswerView(WindowedAnswers):
    """The sorted answers of a prepared query, as a lazy ``Sequence``.

    ``view[k]`` is the k-th answer tuple in ``O(ℓ log |D|)``; negative
    indices count from the end and slices return lazy sub-views (a
    ``range`` window over the same preprocessed structure — nothing is
    copied or enumerated).  Inverse access goes the other way:
    :meth:`rank` maps an answer tuple back to its index by descending
    the counting forest with one binary search per level, which also
    powers ``in`` and :meth:`index` without any enumeration, so
    ``view[view.rank(t)] == t`` round-trips.

    Iteration (and ``reversed``) resolves indices in chunked batches —
    vectorized level-synchronously under the numpy engine — while
    staying lazy.  The order-statistics task layer lives here too:
    :meth:`median`, :meth:`quantile`, :meth:`page`, :meth:`sample`,
    :meth:`boxplot` all delegate to the batch kernels.  (The window
    and inverse-access laws themselves live in
    :class:`WindowedAnswers`, shared with the HTTP client's remote
    view.)
    """

    __slots__ = (
        "_access",
        "_session",
        "_version",
        "_finalizer",
        "__weakref__",
    )

    def __init__(
        self,
        access: DirectAccess,
        window: range | None = None,
        *,
        session: AccessSession | None = None,
        version: int | None = None,
    ):
        self._access = access
        self._window = (
            range(len(access)) if window is None else window
        )
        # MVCC version pinning (facade-prepared views): the view takes
        # a reference on its snapshot in the store's SnapshotPlane, so
        # it keeps serving across later mutations; the last close (or
        # GC, via the finalizer) lets the store drop the snapshot and
        # its artifacts.  Unpinned views (direct construction over a
        # standalone DirectAccess) skip all of it — there is no
        # mutable store behind them.
        self._session = session
        self._version = version
        self._finalizer = None
        if session is not None and version is not None:
            if session.store.pin_version(version):
                self._finalizer = weakref.finalize(
                    self, session.store.release_version, version
                )

    def _check_fresh(self) -> None:
        if self._session is None:
            return
        if not self._session.store.is_readable(self._version):
            raise StaleViewError(
                f"view was prepared at db_version {self._version}, "
                f"database is now at {self._session.db_version} and "
                "the snapshot is no longer retained; re-prepare the "
                "query for a fresh view"
            )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release this view's snapshot pin (idempotent).

        Closing the last view of an out-of-retention-window version
        lets the store drop that snapshot and garbage-collect its
        cached artifacts; further reads on this view raise
        :class:`~repro.errors.StaleViewError` once the snapshot is
        gone.  Views are also released automatically when
        garbage-collected — ``close`` just makes the release (and the
        store-side GC) deterministic.
        """
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None

    def __enter__(self) -> "AnswerView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def db_version(self) -> int | None:
        """The database version this view is pinned to (``None`` for
        unpinned views built outside a connection)."""
        return self._version

    def __len__(self) -> int:
        # Counts obey the same snapshot contract as answers: served
        # from the pinned version while it is retained, loud
        # StaleViewError once it is gone.
        self._check_fresh()
        return len(self._window)

    # -- the windowed-Sequence primitives ----------------------------------

    def _resolve(self, underlying: list[int]) -> list[tuple]:
        self._check_fresh()
        return self._access.tuples_at(underlying)

    def _rank_underlying(self, row: tuple) -> int | None:
        self._check_fresh()
        return self._access.rank_of(row)

    def _subview(self, window: range) -> "AnswerView":
        return AnswerView(
            self._access,
            window,
            session=self._session,
            version=self._version,
        )

    def ranks(self, rows) -> list[int | None]:
        """Batch :meth:`rank` through the engine's vectorized
        ``ranks_of`` (one batched forest descent, not per-row calls)."""
        self._check_fresh()
        out = []
        for underlying in self._access.ranks_of(rows):
            if underlying is None:
                out.append(None)
                continue
            try:
                out.append(self._window.index(underlying))
            except ValueError:
                out.append(None)
        return out

    # -- provenance --------------------------------------------------------

    @property
    def query(self):
        return self._access.query

    @property
    def order(self):
        """The variable order the answers are sorted by."""
        return self._access.order

    @property
    def columns(self) -> tuple[str, ...]:
        """The variables of each answer tuple, in order position."""
        return self._access.free_variables

    @property
    def engine_name(self) -> str:
        return self._access.engine_name

    def op_counters(self) -> dict[str, int]:
        """Snapshot of the engine's operation counters (for assertions
        that a lookup did no enumeration — see
        :class:`~repro.engine.base.OpCounters`)."""
        return self._access._engine.counters.snapshot()

    def __repr__(self) -> str:
        window = self._window
        full = window == range(len(self._access))
        span = "" if full else f", window={window!r}"
        # Window length directly: repr must stay usable (debuggers,
        # logs) even on a stale view, where len(self) raises.
        return (
            f"AnswerView({self.query}, order={list(self.order)}, "
            f"len={len(window)}{span})"
        )


__all__ = ["AnswerView", "Connection", "WindowedAnswers", "connect"]
