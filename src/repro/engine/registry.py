"""Engine selection: ``get_engine`` / ``set_engine`` / ``REPRO_ENGINE``.

The active engine is process-global.  It is resolved lazily on first use
from the ``REPRO_ENGINE`` environment variable (``python`` by default)
and can be switched at runtime with :func:`set_engine` or scoped —
per thread, so concurrent sessions cannot corrupt each other — with
the :func:`use_engine` context manager.  Long-lived structures such as
:class:`~repro.core.access.DirectAccess` capture the engine active at
construction time, so switching engines never corrupts existing indexes.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from repro.data.columnar import numpy_available
from repro.engine.base import Engine
from repro.errors import EngineError

_ENV_VAR = "REPRO_ENGINE"
_current: Engine | None = None
# Scoped engine activations (use_engine) are per-thread: each thread
# keeps its own override stack, so a session building under its pinned
# engine can never observe — or leave behind — another thread's engine,
# and no lock (hence no lock-order coupling with session locks) is
# needed.  set_engine() stays process-global.
_scoped = threading.local()


def available_engines() -> list[str]:
    """Engine names usable in this environment, default first."""
    names = ["python"]
    if numpy_available():
        names.append("numpy")
    return names


def _instantiate(name: str) -> Engine:
    if name == "python":
        from repro.engine.python_engine import PythonEngine

        return PythonEngine()
    if name == "numpy":
        if not numpy_available():
            raise EngineError(
                "engine 'numpy' requires numpy, which is not installed; "
                "available engines: " + ", ".join(available_engines())
            )
        from repro.engine.numpy_engine import NumpyEngine

        return NumpyEngine()
    raise EngineError(
        f"unknown engine {name!r}; available engines: "
        + ", ".join(available_engines())
    )


def resolve_engine(engine: str | Engine | None) -> Engine:
    """An engine instance for ``engine``, *without* activating it.

    ``None`` resolves to the process-global active engine; a string is
    instantiated by name; an instance passes through.  Sessions use this
    to pin their own engine independently of the global one.
    """
    if engine is None:
        return get_engine()
    if isinstance(engine, Engine):
        return engine
    return _instantiate(str(engine).strip().lower())


def get_engine() -> Engine:
    """The active engine (resolving ``REPRO_ENGINE`` on first use).

    A :func:`use_engine` scope on the *calling thread* takes precedence
    over the process-global engine.
    """
    stack = getattr(_scoped, "stack", None)
    if stack:
        return stack[-1]
    global _current
    if _current is None:
        name = os.environ.get(_ENV_VAR, "python").strip().lower()
        _current = _instantiate(name or "python")
    return _current


def set_engine(engine: str | Engine) -> Engine:
    """Activate an engine by name or instance; returns it."""
    global _current
    if isinstance(engine, Engine):
        _current = engine
    else:
        _current = _instantiate(str(engine).strip().lower())
    return _current


@contextmanager
def use_engine(engine: str | Engine):
    """Temporarily activate ``engine`` for the calling thread.

    The activation is **thread-local**: concurrent sessions pinning
    different engines never observe each other's scope, and no lock is
    involved (so a ``use_engine`` block may freely call into locked
    structures like :class:`~repro.session.AccessSession`).  Threads
    spawned inside the block do not inherit it; outside any scope,
    :func:`get_engine` keeps the process-global semantics.
    """
    active = resolve_engine(engine)
    stack = getattr(_scoped, "stack", None)
    if stack is None:
        stack = _scoped.stack = []
    stack.append(active)
    try:
        yield active
    finally:
        stack.pop()
