"""Vectorized engine over dictionary-encoded columnar storage.

Every operator works on ``int64`` code matrices (:mod:`repro.data.columnar`)
instead of frozensets of tuples: joins become ``searchsorted`` range
lookups over packed keys, semijoins become ``isin`` masks, and the
counting-forest build becomes one ``lexsort`` plus ``cumsum`` per bag.
Because the dictionary encoding preserves the value order, every result
— row sets, group contents, enumeration order — is bit-identical to the
:class:`~repro.engine.python_engine.PythonEngine`.

The engine degrades gracefully rather than changing semantics:

* domains that cannot be totally ordered (``TypeError`` while encoding)
  fall back to the Python engine per operation;
* counting-forest builds whose weights could overflow ``int64`` fall
  back per bag (the Python path uses arbitrary-precision ints);
* batch access falls back per call when the answer count or the packed
  search keys would not fit in ``int64``.
"""

from __future__ import annotations

import numpy as np

from repro.data.columnar import (
    _MAX_SAFE,
    ColumnarTable,
    Dictionary,
    extend_shared_dictionary,
    pack_keys,
    pack_pair,
    shared_dictionary_encode,
)
from repro.engine.base import BagIndex, Engine
from repro.engine.python_engine import PythonEngine


def _columnar(table) -> ColumnarTable:
    """The (cached) columnar encoding of a Table; TypeError if unsortable."""
    ct = table._columnar
    if ct is None:
        ct = ColumnarTable.from_rows(
            list(table.rows), len(table.schema)
        )
        table._columnar = ct
    return ct


def _relation_columnar(relation) -> ColumnarTable:
    ct = relation._columnar
    if ct is None:
        ct = ColumnarTable.from_rows(
            relation.sorted_tuples(), relation.arity
        )
        relation._columnar = ct
    return ct


def _expand_matches(rows, lo, counts, order):
    """Indices realizing every (probe row, matching sorted-key row) pair.

    ``lo[r]``/``counts[r]`` delimit probe row ``r``'s match range in the
    key-sorted permutation ``order``.  Returns ``(rep, idx)`` where
    ``rep`` repeats each probe row once per match and ``idx`` is the
    matching row in the original (unsorted) array.
    """
    total = int(counts.sum())
    rep = rows.repeat(counts)
    starts = np.repeat(lo, counts)
    offs = np.arange(total) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return rep, order[starts + offs]


def _unique_rows(codes, card: int):
    """Distinct rows of a code matrix (order not specified)."""
    if codes.shape[1] == 0:
        return codes[:1]
    keys = pack_keys(
        [codes[:, i] for i in range(codes.shape[1])], card
    )
    _, idx = np.unique(keys, return_index=True)
    return codes[idx]


class _BagAux:
    """Columnar (CSR-style) mirror of a :class:`BagIndex`.

    Groups are lexicographically sorted by interface codes;
    ``offsets[g]:offsets[g+1]`` slices the flat candidate arrays.
    ``cum_before[t]`` is the weight strictly before candidate ``t``
    within its group.  All arrays are int64 (the build guards overflow).
    """

    __slots__ = (
        "dictionary",
        "group_codes",
        "offsets",
        "values_flat",
        "weights_flat",
        "cum_before",
        "totals",
        "max_total",
        "_shifted",
        "_val_shifted",
    )

    def __init__(
        self,
        dictionary,
        group_codes,
        offsets,
        values_flat,
        weights_flat,
        cum_before,
        totals,
    ):
        self.dictionary = dictionary
        self.group_codes = group_codes
        self.offsets = offsets
        self.values_flat = values_flat
        self.weights_flat = weights_flat
        self.cum_before = cum_before
        self.totals = totals
        self.max_total = int(totals.max()) if len(totals) else 0
        self._shifted = None
        self._val_shifted = None

    def cum_shifted(self):
        """``cum_before`` offset by ``group_id * (max_total + 1)``.

        Makes the per-group ascending runs globally ascending, so one
        ``searchsorted`` answers a different within-group query per row.
        """
        if self._shifted is None:
            stride = self.max_total + 1
            counts = np.diff(self.offsets)
            gid = np.repeat(np.arange(len(counts)), counts)
            self._shifted = self.cum_before + gid * stride
        return self._shifted

    def values_shifted(self):
        """``values_flat`` offset by ``group_id * len(dictionary)``.

        The same trick as :meth:`cum_shifted`, for inverse access: the
        per-group ascending candidate-code runs become one globally
        ascending array, so a single ``searchsorted`` locates a
        different (group, value) pair per row.
        """
        if self._val_shifted is None:
            stride = max(len(self.dictionary), 1)
            counts = np.diff(self.offsets)
            gid = np.repeat(np.arange(len(counts)), counts)
            self._val_shifted = self.values_flat + gid * stride
        return self._val_shifted


def bag_index_from_aux(aux: "_BagAux") -> BagIndex:
    """Rebuild a full :class:`BagIndex` from its CSR mirror.

    Totals are decoded eagerly (needed by parent builds and any
    Python-path fallback); the per-group candidate lists are
    materialized lazily from the CSR mirror with exactly the structure
    the Python engine builds.  Shared by the in-process build tail and
    the shared-memory attach path, which reconstructs indexes from
    published mirror arrays instead of re-running the lexsort build.
    """
    index = BagIndex()
    index.aux = aux
    domain = aux.dictionary.values
    group_of: dict[tuple, int] = {}
    totals_list = aux.totals.tolist()
    for g, key_codes in enumerate(aux.group_codes.tolist()):
        interface = tuple(domain[c] for c in key_codes)
        group_of[interface] = g
        index.totals[interface] = totals_list[g]
    index.groups = _LazyGroups(aux, group_of)
    return index


class _LazyGroups(dict):
    """``BagIndex.groups`` decoded from the CSR mirror on demand.

    Decoding every candidate back to Python objects eagerly would cost
    O(rows) per bag and double the index's memory; scalar ``answer_at``
    only ever touches a handful of interface groups, so each group is
    materialized (with exactly the structure the Python engine builds)
    on first access and then cached like a normal dict entry.
    """

    __slots__ = ("_aux", "_group_of")

    def __init__(self, aux: "_BagAux", group_of: dict):
        super().__init__()
        self._aux = aux
        self._group_of = group_of

    def __contains__(self, interface) -> bool:
        return (
            super().__contains__(interface)
            or interface in self._group_of
        )

    def __missing__(self, interface):
        group = self._group_of[interface]  # KeyError when unknown
        aux = self._aux
        start = int(aux.offsets[group])
        end = int(aux.offsets[group + 1])
        domain = aux.dictionary.values
        weights = aux.weights_flat[start:end].tolist()
        before = aux.cum_before[start:end].tolist()
        cumulative = [0]
        cumulative.extend(b + w for b, w in zip(before, weights))
        values = [
            domain[c] for c in aux.values_flat[start:end].tolist()
        ]
        triple = (values, weights, cumulative)
        self[interface] = triple
        return triple


class NumpyEngine(Engine):
    """Batch execution over dictionary-encoded int64 columns."""

    name = "numpy"

    def __init__(self) -> None:
        super().__init__()
        self._fallback = PythonEngine()

    # -- relational operators ---------------------------------------------

    def from_atom(self, atom, relation):
        from repro.joins.operators import Table

        try:
            ct = _relation_columnar(relation)
        except TypeError:
            return self._fallback.from_atom(atom, relation)
        schema: list[str] = []
        first: list[int] = []
        for i, var in enumerate(atom.variables):
            if var not in schema:
                schema.append(var)
                first.append(i)
        codes = ct.codes
        if len(schema) != len(atom.variables):
            mask = np.ones(codes.shape[0], dtype=bool)
            for var, pos in zip(schema, first):
                for j, other in enumerate(atom.variables):
                    if other == var and j != pos:
                        mask &= codes[:, pos] == codes[:, j]
            codes = codes[mask]
        sub = np.ascontiguousarray(codes[:, first])
        return Table._from_columnar(
            tuple(schema), ColumnarTable(sub, ct.dictionary)
        )

    def project(self, table, variables, positions):
        from repro.joins.operators import Table

        if not positions:
            return Table(variables, [()] if len(table) else ())
        try:
            ct = _columnar(table)
        except TypeError:
            return self._fallback.project(table, variables, positions)
        sub = _unique_rows(
            np.ascontiguousarray(ct.codes[:, positions]),
            max(len(ct.dictionary), 1),
        )
        return Table._from_columnar(
            variables, ColumnarTable(sub, ct.dictionary)
        )

    def select(self, table, assignment):
        from repro.joins.operators import Table

        bound = [
            (i, assignment[v])
            for i, v in enumerate(table.schema)
            if v in assignment
        ]
        if not bound:
            return table
        try:
            ct = _columnar(table)
        except TypeError:
            return self._fallback.select(table, assignment)
        mask = np.ones(ct.nrows, dtype=bool)
        for position, value in bound:
            code = ct.dictionary.code(value)
            if code < 0:
                return Table(table.schema, ())
            mask &= ct.codes[:, position] == code
        return Table._from_columnar(
            table.schema,
            ColumnarTable(ct.codes[mask], ct.dictionary),
        )

    def semijoin(self, left, right):
        from repro.joins.operators import Table

        shared = [v for v in left.schema if v in right.schema]
        if not shared:
            return left if len(right) else Table(left.schema, ())
        try:
            lct, rct = _columnar(left), _columnar(right)
            merged = Dictionary.merged(lct.dictionary, rct.dictionary)
        except TypeError:
            return self._fallback.semijoin(left, right)
        lcols = lct.with_dictionary(merged).codes[
            :, left._positions(shared)
        ]
        rcols = rct.with_dictionary(merged).codes[
            :, right._positions(shared)
        ]
        ka, kb = pack_pair(lcols, rcols, max(len(merged), 1))
        mask = np.isin(ka, kb)
        return Table._from_columnar(
            left.schema, ColumnarTable(lct.codes[mask], lct.dictionary)
        )

    def natural_join(self, left, right):
        from repro.joins.operators import Table

        shared = [v for v in left.schema if v in right.schema]
        extra = [v for v in right.schema if v not in left.schema]
        out_schema = left.schema + tuple(extra)
        try:
            lct, rct = _columnar(left), _columnar(right)
            merged = Dictionary.merged(lct.dictionary, rct.dictionary)
        except TypeError:
            return self._fallback.natural_join(left, right)
        lcodes = lct.with_dictionary(merged).codes
        rcodes = rct.with_dictionary(merged).codes
        ka, kb = pack_pair(
            lcodes[:, left._positions(shared)],
            rcodes[:, right._positions(shared)],
            max(len(merged), 1),
        )
        order = np.argsort(kb, kind="stable")
        kb_sorted = kb[order]
        lo = np.searchsorted(kb_sorted, ka, side="left")
        hi = np.searchsorted(kb_sorted, ka, side="right")
        rep, ridx = _expand_matches(
            np.arange(lcodes.shape[0]), lo, hi - lo, order
        )
        out = np.concatenate(
            [
                lcodes[rep],
                rcodes[ridx][:, right._positions(extra)],
            ],
            axis=1,
        )
        return Table._from_columnar(
            out_schema,
            ColumnarTable(np.ascontiguousarray(out), merged),
        )

    def join(self, tables, variable_order):
        from repro.joins.operators import Table

        variable_order = list(variable_order)
        covered = {v for table in tables for v in table.schema}
        if set(variable_order) != covered:
            raise ValueError(
                "variable order must cover exactly the joined variables"
            )
        if not tables:
            return Table((), [()])
        try:
            cts = [_columnar(table) for table in tables]
            merged = cts[0].dictionary
            for ct in cts[1:]:
                merged = Dictionary.merged(merged, ct.dictionary)
        except TypeError:
            return self._fallback.join(tables, variable_order)
        mats = [ct.with_dictionary(merged).codes for ct in cts]
        card = max(len(merged), 1)
        col_of = [
            {v: i for i, v in enumerate(table.schema)}
            for table in tables
        ]
        frontier = None
        bound_index: dict[str, int] = {}
        for v in variable_order:
            parts = [t for t in range(len(tables)) if v in col_of[t]]
            if frontier is None:
                # First variable: sorted intersection of the candidate
                # value sets of every participating table.
                cand = None
                for t in parts:
                    u = np.unique(mats[t][:, col_of[t][v]])
                    cand = (
                        u
                        if cand is None
                        else self.intersect_sorted(cand, u)
                    )
                frontier = cand.reshape(-1, 1)
                bound_index[v] = 0
                continue
            # Generic Join's adaptive probing, batched: every participant
            # reports its per-prefix candidate count, each frontier row
            # expands from its *smallest* candidate list, and the other
            # participants filter the result.  Per-row (not per-table)
            # choice is what preserves the worst-case optimal bound.
            lookups = []
            count_columns = []
            for t in parts:
                key_vars = [
                    u for u in tables[t].schema if u in bound_index
                ]
                cols = [col_of[t][u] for u in key_vars] + [col_of[t][v]]
                proj = _unique_rows(
                    np.ascontiguousarray(mats[t][:, cols]), card
                )
                fkeys = np.ascontiguousarray(
                    frontier[:, [bound_index[u] for u in key_vars]]
                )
                ka, kb = pack_pair(fkeys, proj[:, :-1], card)
                order = np.argsort(kb, kind="stable")
                kb_sorted = kb[order]
                lo = np.searchsorted(kb_sorted, ka, side="left")
                hi = np.searchsorted(kb_sorted, ka, side="right")
                lookups.append((proj, order, lo))
                count_columns.append(hi - lo)
            counts_matrix = np.stack(count_columns, axis=1)
            choice = np.argmin(counts_matrix, axis=1)
            width = frontier.shape[1]
            chunks = []
            for p, (proj, order, lo) in enumerate(lookups):
                rows = np.flatnonzero(choice == p)
                if not len(rows):
                    continue
                counts = counts_matrix[rows, p]
                if not counts.sum():
                    continue
                rep, pidx = _expand_matches(
                    rows, lo[rows], counts, order
                )
                chunks.append(
                    np.concatenate(
                        [
                            frontier[rep],
                            proj[pidx, -1].reshape(-1, 1),
                        ],
                        axis=1,
                    )
                )
            if chunks:
                frontier = np.concatenate(chunks, axis=0)
            else:
                frontier = np.empty((0, width + 1), dtype=np.int64)
            bound_index[v] = width
            for t in parts:
                if len(parts) == 1 or not frontier.shape[0]:
                    break
                fvars = [u for u in tables[t].schema if u in bound_index]
                tproj = _unique_rows(
                    np.ascontiguousarray(
                        mats[t][:, [col_of[t][u] for u in fvars]]
                    ),
                    card,
                )
                fcols = np.ascontiguousarray(
                    frontier[:, [bound_index[u] for u in fvars]]
                )
                ka, kb = pack_pair(fcols, tproj, card)
                frontier = frontier[np.isin(ka, kb)]
        return Table._from_columnar(
            tuple(variable_order),
            ColumnarTable(np.ascontiguousarray(frontier), merged),
        )

    # -- ordering ----------------------------------------------------------

    def sorted_rows(self, table):
        try:
            ct = _columnar(table)
        except TypeError:
            return self._fallback.sorted_rows(table)
        arity = ct.arity
        if arity == 0 or ct.nrows == 0:
            return ct.to_rows()
        order = np.lexsort(
            tuple(ct.codes[:, c] for c in range(arity - 1, -1, -1))
        )
        return ColumnarTable(ct.codes[order], ct.dictionary).to_rows()

    def intersect_sorted(self, left, right):
        if isinstance(left, np.ndarray) and isinstance(right, np.ndarray):
            return np.intersect1d(left, right, assume_unique=True)
        return self._fallback.intersect_sorted(left, right)

    # -- counting forest ---------------------------------------------------

    def build_bag_index(self, table, child_slots, projected):
        try:
            ct = _columnar(table)
        except TypeError:
            return self._fallback.build_bag_index(
                table, child_slots, projected
            )
        n, arity = ct.codes.shape
        k = arity - 1

        # Weight bound: a group total is at most n times the product of
        # the children's maximal totals.  Weights that could overflow
        # int64 switch to an object-dtype column of Python big ints —
        # the lexsort/cumsum build stays vectorized (arithmetic widens,
        # structure does not), and the per-call guards in batch access
        # still route such bags to the scalar walk.
        bound = 1
        use_object = False
        for child, _positions in child_slots:
            if child.aux is None:
                return self._fallback.build_bag_index(
                    table, child_slots, projected
                )
            # An object-dtype child forces object weights here too:
            # multiplying its totals into an int64 column is a numpy
            # casting error, even when this bag's own bound is small
            # (the child's bound is conservative — a selective join
            # can leave its exact totals tiny).
            if child.aux.totals.dtype == np.dtype(object):
                use_object = True
            bound *= max(child.aux.max_total, 1)
            if bound * max(n, 1) >= _MAX_SAFE:
                use_object = True

        weights = np.ones(n, dtype=object if use_object else np.int64)
        for child, positions in child_slots:
            aux = child.aux
            group_count = aux.group_codes.shape[0]
            if group_count == 0:
                weights[:] = 0
                continue
            sub = np.ascontiguousarray(ct.codes[:, positions])
            if ct.dictionary is not aux.dictionary and positions:
                remap = ct.dictionary.remap_to(aux.dictionary)
                sub = remap[sub]
            if positions:
                valid = (sub >= 0).all(axis=1)
                sub = np.where(sub < 0, 0, sub)
            else:
                valid = np.ones(n, dtype=bool)
            ka, kb = pack_pair(
                sub, aux.group_codes, max(len(aux.dictionary), 1)
            )
            pos = np.searchsorted(kb, ka)
            clipped = np.minimum(pos, group_count - 1)
            match = valid & (pos < group_count) & (kb[clipped] == ka)
            weights *= np.where(match, aux.totals[clipped], 0)
        if projected:
            # Existence suffices below a projected variable (Theorem 50).
            weights = (weights > 0).astype(np.int64)

        keep = weights > 0
        codes = ct.codes[keep]
        weights = weights[keep]
        m = codes.shape[0]
        if m == 0:
            return bag_index_from_aux(
                _BagAux(
                    ct.dictionary,
                    np.empty((0, k), dtype=np.int64),
                    np.zeros(1, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                )
            )

        # Group by interface, order by bag-variable code: one lexsort
        # (codes are order-preserving, so this is the value order), then
        # prefix sums per group via a single cumsum.
        order = np.lexsort(
            tuple(codes[:, c] for c in range(arity - 1, -1, -1))
        )
        codes = codes[order]
        weights = weights[order]
        if k:
            change = np.any(
                codes[1:, :k] != codes[:-1, :k], axis=1
            )
            starts = np.concatenate(
                [[0], np.flatnonzero(change) + 1]
            ).astype(np.int64)
        else:
            starts = np.zeros(1, dtype=np.int64)
        offsets = np.concatenate([starts, [m]]).astype(np.int64)
        counts = np.diff(offsets)
        csum = np.cumsum(weights)
        base = csum[starts] - weights[starts]
        cum_inclusive = csum - np.repeat(base, counts)
        cum_before = cum_inclusive - weights
        totals = csum[offsets[1:] - 1] - base
        if projected:
            totals = np.ones_like(totals)
        return bag_index_from_aux(
            _BagAux(
                ct.dictionary,
                np.ascontiguousarray(codes[starts][:, :k]),
                offsets,
                np.ascontiguousarray(codes[:, k]),
                weights,
                cum_before,
                totals,
            )
        )

    # -- database preparation ----------------------------------------------

    def encode_database(self, database) -> None:
        """Install one shared-domain dictionary across all relations.

        Afterwards every cross-table dictionary merge in this engine
        short-circuits on object identity (``Dictionary.merged(a, a) is
        a``) and every ``with_dictionary`` remap is a no-op, so the
        per-operation merge + remap cost disappears for every query
        served against the database.  A domain that cannot be totally
        ordered leaves the relations untouched (per-operation fallback
        keeps working).
        """
        shared_dictionary_encode(database.relations)

    def apply_delta(self, database, delta):
        """Maintain the shared dictionary incrementally under a delta.

        The new database shares untouched relation objects (and their
        columnar mirrors) with the old one.  When the delta's new
        domain values all sort after the shared dictionary's maximum,
        the dictionary is extended in place — code-stable, so every
        cached mirror, bag index, and counting forest built against it
        stays valid — and only the mutated relations are re-encoded.
        Otherwise the whole database is re-encoded from scratch
        (``incremental=False``), exactly like a fresh session start.
        """
        from repro.data.database import Database
        from repro.data.delta import Delta
        from repro.data.relation import Relation

        delta = Delta.coerce(delta)
        new_database = database.apply(delta)
        incremental = getattr(
            new_database, "encoded_incrementally", None
        )
        if incremental is not None:
            # EncodedDatabase.apply already maintained its own shared
            # encoding (incrementally or via a private full re-encode)
            # — re-running extension here would redo that work and
            # misreport the path taken.
            return new_database, incremental
        if extend_shared_dictionary(
            new_database.relations, delta.touched
        ):
            return new_database, True
        # Full re-encode — onto *private* relation copies: the
        # structurally shared untouched relations still back the old
        # snapshot, whose mirrors (and dictionary identity) must stay
        # intact for any in-flight old-version build.
        private = Database(
            {
                name: Relation(rel.tuples, arity=rel.arity)
                for name, rel in new_database.relations.items()
            }
        )
        shared_dictionary_encode(private.relations)
        return private, False

    # -- batch access ------------------------------------------------------

    def batch_access(self, access, indices):
        indices = [int(i) for i in indices]
        if not indices:
            return []
        if access._total >= _MAX_SAFE:
            return self._fallback.batch_access(access, indices)
        levels = len(access._free_prefix)
        for i in range(levels):
            aux = access._indexes[i].aux
            if aux is None:
                return self._fallback.batch_access(access, indices)
            groups = len(aux.totals)
            if groups and aux.max_total + 1 > _MAX_SAFE // groups:
                return self._fallback.batch_access(access, indices)

        remaining = np.asarray(indices, dtype=np.int64)
        live = np.full(len(indices), access._total, dtype=np.int64)
        assigned: list = []
        for i in range(levels):
            aux = access._indexes[i].aux
            interface_vars = access._interface_vars[i]
            if interface_vars:
                cols = []
                for v in interface_vars:
                    j = access._position[v]
                    source = access._indexes[j].aux
                    codes_j = assigned[j]
                    if source.dictionary is not aux.dictionary:
                        remap = source.dictionary.remap_to(
                            aux.dictionary
                        )
                        codes_j = remap[codes_j]
                    cols.append(codes_j)
                ka, kb = pack_pair(
                    np.stack(cols, axis=1),
                    aux.group_codes,
                    max(len(aux.dictionary), 1),
                )
                # Every prefix reached here has positive count, so its
                # interface is an existing group: exact match guaranteed.
                group = np.searchsorted(kb, ka)
            else:
                group = np.zeros(len(indices), dtype=np.int64)
            group_total = aux.totals[group]
            others = live // group_total
            block = remaining // others
            stride = aux.max_total + 1
            position = (
                np.searchsorted(
                    aux.cum_shifted(),
                    block + group * stride,
                    side="right",
                )
                - 1
            )
            assigned.append(aux.values_flat[position])
            remaining = remaining - others * aux.cum_before[position]
            live = others * aux.weights_flat[position]

        decoded = []
        for i in range(levels):
            domain = access._indexes[i].aux.dictionary.values
            decoded.append([domain[c] for c in assigned[i].tolist()])
        free = access._free_prefix
        return [
            {v: decoded[i][r] for i, v in enumerate(free)}
            for r in range(len(indices))
        ]

    # -- inverse access ----------------------------------------------------

    def batch_rank(self, access, rows):
        """Vectorized inverse access: all rows descend level-synchronously.

        Per level one ``searchsorted`` locates every row's interface
        group and one more its candidate position inside the group (via
        the :meth:`_BagAux.values_shifted` globally-ascending trick);
        rows whose value or interface is absent are masked out and come
        back ``None``.  The recurrence is the exact inverse of
        :meth:`batch_access`, so ranks round-trip.
        """
        rows = list(rows)
        if not rows:
            return []
        if access._total == 0:
            return [None] * len(rows)
        if access._total >= _MAX_SAFE:
            return self._fallback.batch_rank(access, rows)
        levels = len(access._free_prefix)
        for i in range(levels):
            aux = access._indexes[i].aux
            if aux is None:
                return self._fallback.batch_rank(access, rows)
            groups = len(aux.totals)
            if groups and aux.max_total + 1 > _MAX_SAFE // groups:
                return self._fallback.batch_rank(access, rows)
            card = max(len(aux.dictionary), 1)
            if groups and card > _MAX_SAFE // groups:
                return self._fallback.batch_rank(access, rows)

        n = len(rows)
        valid = np.array(
            [
                isinstance(row, tuple) and len(row) == levels
                for row in rows
            ],
            dtype=bool,
        )

        def encode(dictionary, level):
            """Codes of every row's ``level``-th value, -1 when absent."""
            out = np.full(n, -1, dtype=np.int64)
            code = dictionary.code
            for r, row in enumerate(rows):
                if valid[r]:
                    try:
                        out[r] = code(row[level])
                    except TypeError:  # unhashable: not in the domain
                        out[r] = -1
            return out

        rank = np.zeros(n, dtype=np.int64)
        live = np.full(n, access._total, dtype=np.int64)
        # level_codes[j]: row j-th values encoded under level j's own
        # dictionary (clipped non-negative; invalid rows are masked).
        # Interface lookups below gather through remap_to instead of
        # re-encoding per row — per-unique-value cost, like batch_access.
        level_codes: list = []
        for i in range(levels):
            aux = access._indexes[i].aux
            card = max(len(aux.dictionary), 1)
            group_count = aux.group_codes.shape[0]
            if group_count == 0:
                valid[:] = False
                break
            interface_vars = access._interface_vars[i]
            if interface_vars:
                cols = []
                for v in interface_vars:
                    j = access._position[v]
                    source = access._indexes[j].aux
                    codes_j = level_codes[j]
                    if source.dictionary is not aux.dictionary:
                        remap = source.dictionary.remap_to(
                            aux.dictionary
                        )
                        codes_j = remap[codes_j]  # absent values -> -1
                    cols.append(codes_j)
                mat = np.stack(cols, axis=1)
                valid &= (mat >= 0).all(axis=1)
                ka, kb = pack_pair(
                    np.where(mat < 0, 0, mat), aux.group_codes, card
                )
                pos = np.searchsorted(kb, ka)
                group = np.minimum(pos, group_count - 1)
                valid &= (pos < group_count) & (kb[group] == ka)
            else:
                group = np.zeros(n, dtype=np.int64)
            codes = encode(aux.dictionary, i)
            valid &= codes >= 0
            codes = np.where(codes < 0, 0, codes)
            level_codes.append(codes)
            target = codes + group * card
            shifted = aux.values_shifted()
            pos = np.searchsorted(shifted, target, side="left")
            pos = np.minimum(pos, len(shifted) - 1)
            valid &= shifted[pos] == target
            # Masked-out rows keep computing on candidate 0 of group 0;
            # their lanes are discarded at the end.
            group_total = aux.totals[group]
            others = live // group_total
            rank += others * aux.cum_before[pos]
            live = others * aux.weights_flat[pos]
        return [
            int(rank[r]) if valid[r] else None for r in range(n)
        ]
