"""The execution-engine protocol.

An :class:`Engine` separates *what* the algorithms compute (worst-case
optimal joins, Theorem 10 bag materialization, counting-forest prefix
sums) from *how* tuples are stored and batched.  Two implementations
ship with the library:

* :class:`~repro.engine.python_engine.PythonEngine` — frozensets of
  Python tuples, tries, per-row loops; the reference semantics.
* :class:`~repro.engine.numpy_engine.NumpyEngine` — dictionary-encoded
  columnar batches (:mod:`repro.data.columnar`), lexsort-based ordering
  and vectorized prefix sums.

Both must be observationally identical: same ``Table`` row sets, same
counting-forest group contents, same enumeration order.  The numpy
engine guarantees this by encoding the active domain order-preservingly
and falling back to the Python engine wherever a domain cannot be
encoded (e.g. incomparable mixed-type constants) or a count could
overflow int64.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence


class BagIndex:
    """Per-bag search structure of the counting forest.

    ``groups[s]`` (``s`` = interface value tuple) is a triple of parallel
    lists: candidate values of the bag variable in sorted order, the
    subtree weight of each candidate, and cumulative weights with a
    leading 0 (so ``cumulative[j]`` is the weight strictly before
    candidate ``j``).  ``totals[s]`` is the group's total weight
    ``W_i(s)``.  Zero-weight candidates are dropped.

    ``aux`` is an engine-private slot: the numpy engine stashes the
    columnar (CSR-style) mirror of ``groups`` there so batch access can
    binary-search whole index vectors at once.  Engines that do not use
    it leave it ``None``.
    """

    __slots__ = ("groups", "totals", "aux")

    def __init__(self) -> None:
        self.groups: dict[tuple, tuple[list, list[int], list[int]]] = {}
        self.totals: dict[tuple, int] = {}
        self.aux = None

    def build(self, weighted_rows: dict[tuple, int]) -> None:
        by_interface: dict[tuple, list[tuple]] = {}
        for row, weight in weighted_rows.items():
            if weight <= 0:
                continue
            by_interface.setdefault(row[:-1], []).append(
                (row[-1], weight)
            )
        for interface, pairs in by_interface.items():
            pairs.sort()
            values = [value for value, _ in pairs]
            weights = [weight for _, weight in pairs]
            cumulative = [0]
            for weight in weights:
                cumulative.append(cumulative[-1] + weight)
            self.groups[interface] = (values, weights, cumulative)
            self.totals[interface] = cumulative[-1]

    def total(self, interface: tuple) -> int:
        return self.totals.get(interface, 0)


class Engine(abc.ABC):
    """Tuple-level operations behind the join and access layers.

    All ``Table``-valued operations take and return
    :class:`~repro.joins.operators.Table` instances; an engine is free to
    attach its own backing representation to the tables it produces (the
    numpy engine returns tables whose rows are materialized lazily from a
    columnar code matrix).
    """

    #: Registry name (``"python"`` / ``"numpy"``).
    name: str = "abstract"

    # -- relational operators ---------------------------------------------

    @abc.abstractmethod
    def from_atom(self, atom, relation):
        """Interpret ``relation`` through ``atom`` (collapse repeats)."""

    @abc.abstractmethod
    def project(self, table, variables: tuple, positions: list[int]):
        """Project ``table`` onto ``variables`` at ``positions``."""

    @abc.abstractmethod
    def select(self, table, assignment: dict):
        """Keep rows of ``table`` consistent with ``assignment``."""

    @abc.abstractmethod
    def semijoin(self, left, right):
        """``left ⋉ right`` on the shared columns."""

    @abc.abstractmethod
    def natural_join(self, left, right):
        """Binary natural join, schema = left's then right's extras."""

    @abc.abstractmethod
    def join(self, tables: Sequence, variable_order: Sequence[str]):
        """Materialize the n-way natural join over ``variable_order``."""

    # -- ordering ----------------------------------------------------------

    @abc.abstractmethod
    def sorted_rows(self, table) -> list[tuple]:
        """``table``'s rows in lexicographic order."""

    @abc.abstractmethod
    def intersect_sorted(self, left: Sequence, right: Sequence) -> list:
        """Intersection of two sorted duplicate-free sequences."""

    # -- counting forest ---------------------------------------------------

    @abc.abstractmethod
    def build_bag_index(
        self,
        table,
        child_slots: Sequence[tuple["BagIndex", list[int]]],
        projected: bool,
    ) -> BagIndex:
        """Build one bag's counting-forest index.

        ``child_slots`` pairs each child bag's index with the positions
        of the child's interface variables inside ``table``'s schema.
        The weight of a row is the product of the child totals at the
        row's interface values; when ``projected`` both the row weights
        and the group totals collapse to existence indicators (Theorem
        50's projected-suffix handling).
        """

    # -- database preparation ----------------------------------------------

    def encode_database(self, database) -> None:
        """Prepare ``database`` for repeated queries under this engine.

        Called once per session (:class:`repro.session.AccessSession`),
        before any query runs, so per-query setup work can be hoisted:
        the numpy engine builds one shared-domain dictionary for all
        relations, the Python engine warms the sorted-tuple caches.
        Must be a pure optimization — observable results never change.
        """

    # -- batch access ------------------------------------------------------

    def batch_access(self, access, indices: Sequence[int]) -> list[dict]:
        """``[access.answer_at(i) for i in indices]``, possibly batched.

        ``indices`` are already validated and non-negative.  Engines may
        override with a vectorized strategy but must return answers in
        the same order as ``indices``.
        """
        return [access.answer_at(int(i)) for i in indices]
