"""The execution-engine protocol.

An :class:`Engine` separates *what* the algorithms compute (worst-case
optimal joins, Theorem 10 bag materialization, counting-forest prefix
sums) from *how* tuples are stored and batched.  Two implementations
ship with the library:

* :class:`~repro.engine.python_engine.PythonEngine` — frozensets of
  Python tuples, tries, per-row loops; the reference semantics.
* :class:`~repro.engine.numpy_engine.NumpyEngine` — dictionary-encoded
  columnar batches (:mod:`repro.data.columnar`), lexsort-based ordering
  and vectorized prefix sums.

Both must be observationally identical: same ``Table`` row sets, same
counting-forest group contents, same enumeration order.  The numpy
engine guarantees this by encoding the active domain order-preservingly
and falling back to the Python engine wherever a domain cannot be
encoded (e.g. incomparable mixed-type constants) or a count could
overflow int64.
"""

from __future__ import annotations

import abc
import threading
from bisect import bisect_left
from collections import Counter
from collections.abc import Sequence


class OpCounters(Counter):
    """Monotonic per-engine operation counters.

    Engines and the access layer increment these so tests (and
    operators) can assert *how* a result was produced — e.g. that an
    inverse-access lookup resolved zero positional accesses and hence
    never fell back to enumerating answers.  Keys in use:

    * ``answer_walks`` — scalar ``answer_at`` forest descents;
    * ``access_batches`` / ``access_indices`` — ``answers_at`` calls
      and the total number of indices they resolved;
    * ``rank_batches`` / ``rank_tuples`` — ``ranks_of`` calls and the
      total number of tuples they ranked.

    Counters are engine-instance-local.  :func:`repro.connect` gives
    every connection a fresh engine instance (unless handed an explicit
    instance to share), so ``view.op_counters()`` only moves with that
    connection's work; structures built directly on the process-global
    engine (``get_engine()``) share the global instance's counters.

    Increment through :meth:`add`: it locks, so concurrent lock-free
    reads of one access structure (the documented-safe pattern) never
    lose counts.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._lock = threading.Lock()

    def add(self, key: str, amount: int = 1) -> None:
        """Atomically bump ``key`` by ``amount``."""
        with self._lock:
            self[key] += amount

    def snapshot(self) -> dict[str, int]:
        """An atomic plain-dict copy (safe to diff against a later one)."""
        with self._lock:
            return dict(self)


def rank_walk(access, row) -> int | None:
    """The rank of answer ``row``, by one descent of the counting forest.

    The exact inverse of ``answer_at``'s recurrence: at each level the
    candidate list of the current interface group is binary-searched for
    the row's value, and the cumulative weight strictly before it —
    scaled by the count of answers per unit of this group (``others``) —
    is accumulated into the rank.  ``O(ℓ log |D|)``, no enumeration.

    Returns ``None`` when ``row`` is not an answer (wrong arity, value
    absent at some level, or an interface never reached by any answer).
    """
    prefix = access._free_prefix
    if not isinstance(row, tuple) or len(row) != len(prefix):
        return None
    live = access._total
    if live == 0:
        return None
    rank = 0
    assignment: dict[str, object] = {}
    for i, variable in enumerate(prefix):
        bag_index = access._indexes[i]
        value = row[i]
        try:
            interface = tuple(
                assignment[v] for v in access._interface_vars[i]
            )
            group_total = bag_index.total(interface)
            if group_total <= 0:
                return None
            values, weights, cumulative = bag_index.groups[interface]
            j = bisect_left(values, value)
            if j >= len(values) or values[j] != value:
                return None
        except (KeyError, TypeError):
            # Unknown interface, unhashable or incomparable value: by
            # definition not an answer under this order's domain.
            return None
        others = live // group_total
        rank += others * cumulative[j]
        live = others * weights[j]
        assignment[variable] = value
    return rank


class BagIndex:
    """Per-bag search structure of the counting forest.

    ``groups[s]`` (``s`` = interface value tuple) is a triple of parallel
    lists: candidate values of the bag variable in sorted order, the
    subtree weight of each candidate, and cumulative weights with a
    leading 0 (so ``cumulative[j]`` is the weight strictly before
    candidate ``j``).  ``totals[s]`` is the group's total weight
    ``W_i(s)``.  Zero-weight candidates are dropped.

    ``aux`` is an engine-private slot: the numpy engine stashes the
    columnar (CSR-style) mirror of ``groups`` there so batch access can
    binary-search whole index vectors at once.  Engines that do not use
    it leave it ``None``.
    """

    __slots__ = ("groups", "totals", "aux")

    def __init__(self) -> None:
        self.groups: dict[tuple, tuple[list, list[int], list[int]]] = {}
        self.totals: dict[tuple, int] = {}
        self.aux = None

    def build(self, weighted_rows: dict[tuple, int]) -> None:
        by_interface: dict[tuple, list[tuple]] = {}
        for row, weight in weighted_rows.items():
            if weight <= 0:
                continue
            by_interface.setdefault(row[:-1], []).append(
                (row[-1], weight)
            )
        for interface, pairs in by_interface.items():
            pairs.sort()
            values = [value for value, _ in pairs]
            weights = [weight for _, weight in pairs]
            cumulative = [0]
            for weight in weights:
                cumulative.append(cumulative[-1] + weight)
            self.groups[interface] = (values, weights, cumulative)
            self.totals[interface] = cumulative[-1]

    def total(self, interface: tuple) -> int:
        return self.totals.get(interface, 0)


class Engine(abc.ABC):
    """Tuple-level operations behind the join and access layers.

    All ``Table``-valued operations take and return
    :class:`~repro.joins.operators.Table` instances; an engine is free to
    attach its own backing representation to the tables it produces (the
    numpy engine returns tables whose rows are materialized lazily from a
    columnar code matrix).
    """

    #: Registry name (``"python"`` / ``"numpy"``).
    name: str = "abstract"

    def __init__(self) -> None:
        #: Operation counters (see :class:`OpCounters`); the access
        #: layer increments them for every walk/batch it dispatches.
        self.counters = OpCounters()

    # -- relational operators ---------------------------------------------

    @abc.abstractmethod
    def from_atom(self, atom, relation):
        """Interpret ``relation`` through ``atom`` (collapse repeats)."""

    @abc.abstractmethod
    def project(self, table, variables: tuple, positions: list[int]):
        """Project ``table`` onto ``variables`` at ``positions``."""

    @abc.abstractmethod
    def select(self, table, assignment: dict):
        """Keep rows of ``table`` consistent with ``assignment``."""

    @abc.abstractmethod
    def semijoin(self, left, right):
        """``left ⋉ right`` on the shared columns."""

    @abc.abstractmethod
    def natural_join(self, left, right):
        """Binary natural join, schema = left's then right's extras."""

    @abc.abstractmethod
    def join(self, tables: Sequence, variable_order: Sequence[str]):
        """Materialize the n-way natural join over ``variable_order``."""

    # -- ordering ----------------------------------------------------------

    @abc.abstractmethod
    def sorted_rows(self, table) -> list[tuple]:
        """``table``'s rows in lexicographic order."""

    @abc.abstractmethod
    def intersect_sorted(self, left: Sequence, right: Sequence) -> list:
        """Intersection of two sorted duplicate-free sequences."""

    # -- counting forest ---------------------------------------------------

    @abc.abstractmethod
    def build_bag_index(
        self,
        table,
        child_slots: Sequence[tuple["BagIndex", list[int]]],
        projected: bool,
    ) -> BagIndex:
        """Build one bag's counting-forest index.

        ``child_slots`` pairs each child bag's index with the positions
        of the child's interface variables inside ``table``'s schema.
        The weight of a row is the product of the child totals at the
        row's interface values; when ``projected`` both the row weights
        and the group totals collapse to existence indicators (Theorem
        50's projected-suffix handling).
        """

    # -- database preparation ----------------------------------------------

    def encode_database(self, database) -> None:
        """Prepare ``database`` for repeated queries under this engine.

        Called once per session (:class:`repro.session.AccessSession`),
        before any query runs, so per-query setup work can be hoisted:
        the numpy engine builds one shared-domain dictionary for all
        relations, the Python engine warms the sorted-tuple caches.
        Must be a pure optimization — observable results never change.
        """

    def apply_delta(self, database, delta):
        """``(new_database, incremental)`` after applying ``delta``.

        ``new_database`` shares every untouched relation object with
        ``database`` (:meth:`Database.apply
        <repro.data.database.Database.apply>` structural sharing), so
        the old database remains a valid immutable snapshot — sessions
        that captured it keep serving consistent pre-delta answers.
        ``incremental`` reports whether the engine maintained its
        per-database preparation in place (e.g. extended a shared
        dictionary code-stably) instead of redoing it from scratch.

        The reference path has no cross-relation encoding to maintain,
        so structural sharing alone is fully incremental.
        """
        new_database = database.apply(delta)
        self.encode_database(new_database)
        return new_database, True

    # -- batch access ------------------------------------------------------

    def batch_access(self, access, indices: Sequence[int]) -> list[dict]:
        """``[access.answer_at(i) for i in indices]``, possibly batched.

        ``indices`` are already validated and non-negative.  Engines may
        override with a vectorized strategy but must return answers in
        the same order as ``indices``.  The walk bypasses the scalar
        ``answer_at`` counter: the batch was already counted once at the
        ``answers_at`` boundary.
        """
        return [access._walk_at(int(i)) for i in indices]

    # -- inverse access ----------------------------------------------------

    def batch_rank(
        self, access, rows: Sequence[tuple]
    ) -> list[int | None]:
        """The rank of each tuple of ``rows``, or ``None`` if not an answer.

        The reference path (inherited by the Python engine) performs one
        :func:`rank_walk` counting-forest descent per tuple —
        ``O(ℓ log |D|)`` each, never enumeration.  The numpy engine
        overrides with a level-synchronous vectorized strategy; both
        satisfy ``access.tuple_at(rank) == row`` whenever the result is
        not ``None``.
        """
        return [rank_walk(access, row) for row in rows]
