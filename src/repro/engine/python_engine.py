"""The reference engine: frozensets of Python tuples, per-row loops.

This engine preserves the original behavior of the reproduction exactly;
the numpy engine is differentially tested against it.  It has no
dependencies and works for any hashable constants (the join operators do
not even require comparability — only the order-sensitive structures,
tries and counting forests, do).

Batch access and inverse access (``batch_rank``) use the base class's
reference paths: one scalar counting-forest descent per index or tuple
(:func:`repro.engine.base.rank_walk`) — the semantics the numpy
engine's vectorized strategies are checked against.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.engine.base import BagIndex, Engine


class PythonEngine(Engine):
    """Tuple-at-a-time execution over ``frozenset`` row storage."""

    name = "python"

    # -- relational operators ---------------------------------------------

    def from_atom(self, atom, relation):
        from repro.joins.operators import Table

        schema: list[str] = []
        for var in atom.variables:
            if var not in schema:
                schema.append(var)
        rows = set()
        for raw in relation.tuples:
            binding = atom.binding(raw)
            if binding is not None:
                rows.add(tuple(binding[v] for v in schema))
        return Table(schema, rows)

    def project(self, table, variables, positions):
        from repro.joins.operators import Table

        return Table(
            variables,
            {tuple(row[p] for p in positions) for row in table.rows},
        )

    def select(self, table, assignment):
        from repro.joins.operators import Table

        bound = [
            (i, assignment[v])
            for i, v in enumerate(table.schema)
            if v in assignment
        ]
        return Table(
            table.schema,
            {
                row
                for row in table.rows
                if all(row[i] == value for i, value in bound)
            },
        )

    def semijoin(self, left, right):
        from repro.joins.operators import Table

        shared = [v for v in left.schema if v in right.schema]
        if not shared:
            return left if len(right) else Table(left.schema, ())
        mine = left._positions(shared)
        theirs = right._positions(shared)
        keys = {tuple(row[p] for p in theirs) for row in right.rows}
        return Table(
            left.schema,
            {
                row
                for row in left.rows
                if tuple(row[p] for p in mine) in keys
            },
        )

    def natural_join(self, left, right):
        from repro.joins.operators import Table

        shared = [v for v in left.schema if v in right.schema]
        extra = [v for v in right.schema if v not in left.schema]
        out_schema = left.schema + tuple(extra)
        theirs_shared = right._positions(shared)
        theirs_extra = right._positions(extra)
        buckets: dict[tuple, list[tuple]] = {}
        for row in right.rows:
            key = tuple(row[p] for p in theirs_shared)
            buckets.setdefault(key, []).append(
                tuple(row[p] for p in theirs_extra)
            )
        mine_shared = left._positions(shared)
        rows = set()
        for row in left.rows:
            key = tuple(row[p] for p in mine_shared)
            for suffix in buckets.get(key, ()):
                rows.add(row + suffix)
        return Table(out_schema, rows)

    def join(self, tables, variable_order):
        from repro.joins.generic_join import generic_join_iter
        from repro.joins.operators import Table

        return Table(
            tuple(variable_order),
            generic_join_iter(tables, variable_order),
        )

    # -- ordering ----------------------------------------------------------

    def sorted_rows(self, table):
        return sorted(table.rows)

    def intersect_sorted(self, left: Sequence, right: Sequence) -> list:
        out = []
        i = j = 0
        while i < len(left) and j < len(right):
            a, b = left[i], right[j]
            if a == b:
                out.append(a)
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return out

    # -- database preparation ----------------------------------------------

    def encode_database(self, database) -> None:
        """Warm the per-relation sorted-tuple caches (the only per-query
        setup the tuple-at-a-time path repeats)."""
        for relation in database.relations.values():
            try:
                relation.sorted_tuples()
            except TypeError:  # incomparable domain: sorting is per-op
                pass

    # -- counting forest ---------------------------------------------------

    def build_bag_index(self, table, child_slots, projected):
        weighted: dict[tuple, int] = {}
        for row in table.rows:
            weight = 1
            for child_index, positions in child_slots:
                weight *= child_index.total(
                    tuple(row[p] for p in positions)
                )
                if weight == 0:
                    break
            if projected and weight > 0:
                # Existence suffices below a projected variable: the bag
                # variable and everything beneath it is projected, so
                # collapse multiplicity to one per row ...
                weight = 1
            weighted[row] = weight
        index = BagIndex()
        index.build(weighted)
        if projected:
            # ... and to one per *interface* value: the caller must not
            # distinguish different values of the projected variable
            # either.
            for interface in index.totals:
                index.totals[interface] = 1
        return index
