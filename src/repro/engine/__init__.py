"""Pluggable execution engines.

``get_engine()`` returns the process-global active engine (``python`` by
default, or whatever ``REPRO_ENGINE`` names); ``set_engine("numpy")``
switches to the vectorized columnar backend.  See
:class:`repro.engine.base.Engine` for the protocol.
"""

from repro.engine.base import BagIndex, Engine
from repro.engine.registry import (
    available_engines,
    get_engine,
    resolve_engine,
    set_engine,
    use_engine,
)

__all__ = [
    "BagIndex",
    "Engine",
    "available_engines",
    "get_engine",
    "resolve_engine",
    "set_engine",
    "use_engine",
]
