"""Process-serving backends behind :class:`~repro.server.http.ReproServer`.

Two backends, one contract (``execute`` / ``stats`` / ``ping`` /
``close``), both replacing the in-process ``Connection`` pool with the
worker-pool supervisor (:mod:`repro.server.pool`) over the
shared-memory artifact plane (:mod:`repro.server.shm`):

* :class:`ProcessBackend` (``procs=N``) — N identical workers, each
  attached zero-copy to the one published database.  Requests are
  routed with *session affinity* (same ``(query, order)`` hashes to
  the same worker, keeping its private artifact cache hot); mutations
  run on the primary's authoritative store first, republish the
  database, then broadcast the delta so every worker's PR-5 carry /
  invalidate logic runs in its own process.

* :class:`ShardBackend` (``shards=N``) — N workers each holding a
  *different* range-shard of the partitioned relation
  (:mod:`repro.session.sharding`); reads fan out per shard and merge
  by prefix counts, bit-identical to unsharded serving.  Sharded
  serving is read-only by construction.

A third backend, :class:`RemoteShardBackend` (``shard_backends=
[url, ...]``), keeps the same contract but owns no processes at all:
each shard lives on a *remote* ``repro serve`` replica, reached
through the keep-alive pooled HTTP client
(:class:`~repro.server.client.HTTPShardExecutor`) and merged by the
identical prefix-count math — the single-host/multi-host distinction
collapses into which executor the :class:`ShardedExecutor` is given.

The wire protocol is unchanged in all modes: workers produce the
exact response JSON the threaded server would, and the HTTP layer
forwards it byte-for-byte.
"""

from __future__ import annotations

import json
import threading

from repro.data.database import EncodedDatabase
from repro.data.flatbuf import database_to_buffers
from repro.errors import OverloadedError, ProtocolError, ReproError
from repro.server.pool import DEFAULT_QUEUE_DEPTH, WorkerPool
from repro.server.shm import SharedArtifactPlane
from repro.server.worker import WorkerSpec
from repro.session.protocol import (
    MUTATION_OPS,
    SessionRequest,
    SessionResponse,
    delta_from_request,
    mutation_result,
)
from repro.session.sharding import (
    ShardedExecutor,
    plan_shards,
    shard_databases,
)


def _encoded(database) -> EncodedDatabase:
    if isinstance(database, EncodedDatabase):
        return database
    return EncodedDatabase(database.relations)


def _error_response(request: SessionRequest, error) -> SessionResponse:
    return SessionResponse(
        op=request.op,
        ok=False,
        error=str(error),
        error_type=type(error).__name__,
    )


def _advised_shard_variable(
    database, query_text: str, engine_name: str
) -> str:
    """The advisor's preferred order for the bound query leads with
    the variable most orders will lead with — shard on it."""
    from repro.facade import connect

    advisor = connect(database.relations, engine=engine_name, cache=0)
    return advisor.plan(query_text).order[0]


class ProcessBackend:
    """N identical worker processes over one published database."""

    mode = "procs"

    def __init__(
        self,
        store,
        procs: int,
        engine_name: str,
        capacity: int | None,
        cache_slack,
        default_query_text: str | None,
        start_method: str = "spawn",
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        read_only: bool = False,
        chaos: str | None = None,
    ):
        self.store = store
        self._capacity = capacity
        self._cache_slack = cache_slack
        self._default_query_text = default_query_text
        self._engine_name = engine_name
        self._read_only = bool(read_only)
        self._chaos = chaos
        self.plane = SharedArtifactPlane()
        self._mutation_lock = threading.Lock()
        self._current = self._publish(store.database, store.db_version)
        try:
            self.pool = WorkerPool(
                procs,
                self._spec_factory,
                plane=self.plane,
                start_method=start_method,
                max_queue_depth=queue_depth,
            )
        except BaseException:
            # A fleet that never booted (e.g. every worker failed to
            # attach the plane) must not leak its /dev/shm segments.
            self.plane.close()
            raise

    def _publish(self, database, version: int):
        """``(publication, fallback, version)`` for the current
        database — ``fallback`` carries the pickled database when the
        flat-buffer layout cannot (the plane is an optimization, never
        a gate on serving)."""
        flat = database_to_buffers(database)
        if flat is None:
            return (None, database, version)
        manifest, buffers = flat
        publication = self.plane.publish(
            f"db:{version}", manifest, buffers
        )
        return (publication, None, version)

    def _spec_factory(self, name: str, index: int) -> WorkerSpec:
        publication, fallback, version = self._current
        return WorkerSpec(
            name=name,
            plane_prefix=self.plane.prefix,
            engine=self._engine_name,
            db_version=version,
            database=publication,
            fallback_database=fallback,
            capacity=self._capacity,
            cache_slack=self._cache_slack,
            default_query=self._default_query_text,
            # Workers mirror the supervisor's MVCC policy so pinned
            # reads behave identically wherever they land; the WAL
            # stays supervisor-only (one log, one appender).
            retain_versions=self.store.snapshots.retain,
            strict_views=self.store.strict_views,
            chaos=self._chaos,
        )

    # -- serving -----------------------------------------------------------

    def execute(self, request: SessionRequest) -> SessionResponse:
        if request.op in MUTATION_OPS:
            return self._mutate(request)
        try:
            # Each worker process caches artifacts privately, so the
            # same (query, order) prefers the same worker; a read-only
            # fleet never invalidates, so locality is cheap to rebuild
            # and dispatch may spill to the shallowest queue instead.
            affinity = hash((request.query, request.order))
            raw = self.pool.execute_json(
                request.to_json(), affinity, spill=self._read_only
            )
            return SessionResponse.from_json(raw)
        except OverloadedError:
            # Admission failures must reach the transport as 503, not
            # collapse into a 200 error body like library errors.
            raise
        except ReproError as error:
            return _error_response(request, error)

    def _mutate(self, request: SessionRequest) -> SessionResponse:
        try:
            # The shared request→Delta path (insert / delete / atomic
            # multi-relation apply): the supervisor's authoritative
            # store validates and applies — and, when serving with a
            # WAL, logs the record before the engine touches anything.
            delta = delta_from_request(request)
            with self._mutation_lock:
                old_publication, _fallback, old_version = self._current
                new_version = self.store.apply(delta)
                if new_version != old_version:
                    # Republish first, then broadcast: a worker that
                    # crashes mid-delta respawns from the *new*
                    # publication, so the fleet always converges on
                    # the primary's version.  An effectively-empty
                    # delta never reaches this branch — no version
                    # bump, nothing to publish.
                    self._current = self._publish(
                        self.store.database, new_version
                    )
                    if old_publication is not None:
                        self.plane.retire(old_publication.token)
                    self.pool.broadcast_delta(delta)
            return SessionResponse(
                op=request.op,
                ok=True,
                result=mutation_result(request, delta, new_version),
            )
        except (ReproError, ValueError) as error:
            return _error_response(request, error)

    # -- observability / lifecycle -----------------------------------------

    def stats(self) -> dict:
        return {
            "pool": self.pool.counters(),
            "plane": self.plane.counters.as_dict(),
            "per_worker": self.pool.stats(),
        }

    def ping(self) -> int:
        return self.pool.ping()

    def close(self, timeout: float = 10.0) -> bool:
        clean = self.pool.close(timeout=timeout)
        self.plane.close()
        return clean


class ShardBackend:
    """One worker per range-shard; reads merge by prefix counts."""

    mode = "sharded"

    def __init__(
        self,
        database,
        shards: int,
        engine_name: str,
        capacity: int | None,
        cache_slack,
        default_query,
        shard_relation: str | None = None,
        shard_variable: str | None = None,
        start_method: str = "spawn",
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        chaos: str | None = None,
    ):
        if default_query is None:
            raise ProtocolError(
                "sharded serving needs a default query: the shard "
                "plan fixes the partitioned relation at startup"
            )
        query_text = str(default_query)
        if shard_variable is None:
            shard_variable = _advised_shard_variable(
                database, query_text, engine_name
            )
        self.plan = plan_shards(
            database,
            default_query,
            shards,
            variable=shard_variable,
            relation=shard_relation,
        )
        self.plane = SharedArtifactPlane()
        self._specs: list[WorkerSpec] = []
        for index, mapping in enumerate(
            shard_databases(database, self.plan)
        ):
            encoded = EncodedDatabase(mapping)
            flat = database_to_buffers(encoded)
            publication, fallback = None, None
            if flat is None:
                fallback = encoded
            else:
                manifest, buffers = flat
                publication = self.plane.publish(
                    f"shard:{index}:db:0", manifest, buffers
                )
            self._specs.append(
                WorkerSpec(
                    name="",  # filled per spawn
                    plane_prefix=self.plane.prefix,
                    engine=engine_name,
                    db_version=0,
                    database=publication,
                    fallback_database=fallback,
                    capacity=capacity,
                    cache_slack=cache_slack,
                    default_query=query_text,
                    shard_index=index,
                    chaos=chaos,
                )
            )
        try:
            self.pool = WorkerPool(
                self.plan.shards,
                self._spec_factory,
                plane=self.plane,
                start_method=start_method,
                max_queue_depth=queue_depth,
            )
        except BaseException:
            self.plane.close()
            raise
        self._executor = ShardedExecutor(
            self.plan, self._execute_shard, default_query=query_text
        )

    def _spec_factory(self, name: str, index: int) -> WorkerSpec:
        spec = self._specs[index]
        return WorkerSpec(
            **{
                **{
                    f: getattr(spec, f)
                    for f in spec.__dataclass_fields__
                },
                "name": name,
            }
        )

    def _execute_shard(
        self, index: int, request: SessionRequest
    ) -> dict:
        return json.loads(
            self.pool.execute_on(index, request.to_json())
        )

    # -- serving -----------------------------------------------------------

    def execute(self, request: SessionRequest) -> SessionResponse:
        try:
            return SessionResponse.from_dict(
                self._executor.execute(request)
            )
        except ReproError as error:
            return _error_response(request, error)

    # -- observability / lifecycle -----------------------------------------

    def stats(self) -> dict:
        return {
            "pool": self.pool.counters(),
            "plane": self.plane.counters.as_dict(),
            "shard_plan": self.plan.describe(),
            "per_worker": self.pool.stats(),
        }

    def ping(self) -> int:
        return self.pool.ping()

    def close(self, timeout: float = 10.0) -> bool:
        clean = self.pool.close(timeout=timeout)
        self.plane.close()
        return clean


class RemoteShardBackend:
    """One *remote* ``repro serve`` replica per range-shard.

    The same shard plan and prefix-count merge as
    :class:`ShardBackend`, but the executor fans out over HTTP
    (:class:`~repro.server.client.HTTPShardExecutor`) instead of
    worker-process pipes — replica ``i`` must serve exactly the
    database that ``shard_databases(database, plan)[i]`` describes
    (the differential suite proves the two transports bit-identical).
    Owns no processes and no shared memory; read-only by construction,
    like all sharded serving.
    """

    mode = "sharded-remote"

    def __init__(
        self,
        database,
        urls,
        engine_name: str,
        default_query,
        shard_relation: str | None = None,
        shard_variable: str | None = None,
        timeout: float = 30.0,
    ):
        if default_query is None:
            raise ProtocolError(
                "sharded serving needs a default query: the shard "
                "plan fixes the partitioned relation at startup"
            )
        urls = list(urls)
        if not urls:
            raise ProtocolError(
                "remote sharded serving needs at least one replica URL"
            )
        query_text = str(default_query)
        if shard_variable is None:
            shard_variable = _advised_shard_variable(
                database, query_text, engine_name
            )
        self.plan = plan_shards(
            database,
            default_query,
            len(urls),
            variable=shard_variable,
            relation=shard_relation,
        )
        from repro.server.client import HTTPShardExecutor

        self.transport = HTTPShardExecutor(urls, timeout=timeout)
        self._executor = ShardedExecutor(
            self.plan, self.transport, default_query=query_text
        )

    # -- serving -----------------------------------------------------------

    def execute(self, request: SessionRequest) -> SessionResponse:
        try:
            return SessionResponse.from_dict(
                self._executor.execute(request)
            )
        except ReproError as error:
            return _error_response(request, error)

    # -- observability / lifecycle -----------------------------------------

    def stats(self) -> dict:
        return {
            "shard_plan": self.plan.describe(),
            "replicas": list(self.transport.replicas),
            # No local worker sessions: the replicas keep their own
            # /stats.  The empty list keeps the front's aggregation
            # shape identical across backends.
            "per_worker": [],
        }

    def ping(self) -> int:
        return len(self.transport.replicas)

    def close(self, timeout: float = 10.0) -> bool:
        self.transport.close()
        return True


__all__ = ["ProcessBackend", "RemoteShardBackend", "ShardBackend"]
