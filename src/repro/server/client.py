"""The HTTP facade client: ``repro.connect("http://host:port")``.

A remote caller wants the same API as a local process — ``connect`` →
``prepare`` → a view with ``Sequence`` semantics — not a bag of JSON
requests.  :class:`HTTPConnection` mirrors
:class:`~repro.facade.Connection` over the wire, and
:class:`RemoteAnswerView` mirrors :class:`~repro.facade.AnswerView`:
positional access, lazy slice sub-views, chunked iteration, inverse
access (:meth:`~RemoteAnswerView.rank` / ``in`` / ``index``), and the
order-statistics task layer, each resolving to at most a few ``POST
/v1/session`` round-trips.

    >>> import repro
    >>> conn = repro.connect("http://127.0.0.1:8080")   # doctest: +SKIP
    >>> view = conn.prepare("Q(x, y, z) :- R(x, y), S(y, z)",
    ...                     order=["x", "y", "z"])      # doctest: +SKIP
    >>> len(view), view[0], view.rank(view[0])          # doctest: +SKIP
    (4, (1, 2, 7), 0)

Everything rides the versioned JSON session protocol
(:mod:`repro.session.protocol`, spec in ``docs/protocol.md``): the
server replays failed requests' exception types (``error_type``), so a
bad remote request raises the same :mod:`repro.errors` class a local
call would.  Only the stdlib :mod:`http.client` is used — no
dependencies — over a small **keep-alive pool**: TCP connections are
reused across requests (and across threads) instead of paying a fresh
handshake per round-trip, and a connection the server closed under us
is retried once on a fresh socket.

Remote views are **version-pinned**: ``prepare`` captures the server's
``db_version`` alongside the answer count and every read echoes it, so
the server serves the view's MVCC snapshot — a view keeps answering
across later mutations (``insert``/``delete``/``apply``) while its
version stays retained, and reads raise
:class:`~repro.errors.StaleViewError` (replayed from the wire) only
once the snapshot is evicted — the same behavior as a local view.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.parse

from repro.chaos.faults import fire as _chaos_fire
from repro.data.delta import Delta
from repro.errors import ProtocolError, ReproError
from repro.facade import WindowedAnswers
from repro.server.http import SESSION_ROUTE
from repro.session.protocol import (
    MUTATION_OPS,
    PROTOCOL_VERSION,
    SessionRequest,
    SessionResponse,
)

import repro.errors as _errors
import repro.session.sharding as _sharding


def normalize_base_url(url: str) -> str:
    """A base URL with scheme and no trailing slash.

        >>> normalize_base_url("http://localhost:8080/")
        'http://localhost:8080'
        >>> normalize_base_url("127.0.0.1:8080")
        'http://127.0.0.1:8080'
    """
    url = url.strip().rstrip("/")
    if not url.startswith(("http://", "https://")):
        url = "http://" + url
    return url


class _KeepAlivePool:
    """A small pool of reusable :mod:`http.client` connections.

    ``request()`` checks an idle connection out (or opens one), runs
    one HTTP exchange, and returns the connection to the pool when the
    server kept it alive.  A reused connection the server has since
    closed fails the exchange — that one case is retried exactly once
    on a fresh socket; errors on a *fresh* socket propagate (the
    server really is unreachable).  Thread-safe; at most
    :attr:`MAX_IDLE` sockets are parked, extras are closed on release.

    ``opened`` counts sockets ever opened — the keep-alive win is
    ``opened`` staying flat while request counts grow (asserted by
    ``benchmarks/bench_server.py --quick``).
    """

    MAX_IDLE = 4

    def __init__(self, base_url: str, timeout: float):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme == "https":
            self._factory = http.client.HTTPSConnection
        else:
            self._factory = http.client.HTTPConnection
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port
        self._timeout = timeout
        self._lock = threading.Lock()
        self._idle: list[http.client.HTTPConnection] = []
        self._closed = False
        self.opened = 0

    def _connect(self) -> http.client.HTTPConnection:
        connection = self._factory(
            self._host, self._port, timeout=self._timeout
        )
        with self._lock:
            self.opened += 1
        return connection

    def _exchange(self, connection, method, path, body, headers):
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        data = response.read()  # drain fully: required before reuse
        return response, data

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict | None = None,
        reuse: bool = True,
    ) -> tuple[int, bytes]:
        """One round-trip; ``(status, body)`` whatever the status.

        ``reuse=False`` skips the idle pool and opens a fresh socket
        (still parked afterwards): for non-idempotent requests, a
        reused socket's stale-close failure is indistinguishable from
        "the server already applied it", so the silent retry below
        must never re-send them — a fresh socket's failure is a real
        transport error and propagates instead.
        """
        # Fault points (free no-ops unless a chaos plan is armed).
        # They fire *before* a socket is checked out, modelling the
        # transport dying under the caller: no idle connection is
        # consumed or poisoned, so the pool stays reusable once the
        # fault clears.
        if _chaos_fire("client.timeout"):
            raise TimeoutError(  # repro: noqa[EXC-TAXONOMY] -- chaos injection mimics the transport's own exception
                f"chaos: injected client timeout on {method} {path}"
            )
        if _chaos_fire("client.disconnect"):
            raise ConnectionResetError(  # repro: noqa[EXC-TAXONOMY] -- chaos injection mimics the transport's own exception
                f"chaos: injected disconnect mid-body on {method} {path}"
            )
        if _chaos_fire("client.http_500"):
            return 500, b"chaos: injected upstream 5xx"
        headers = headers or {}
        connection = None
        with self._lock:
            if self._closed:
                raise ReproError("connection is closed")
            if reuse and self._idle:
                connection = self._idle.pop()
        reused = connection is not None
        if connection is None:
            connection = self._connect()
        try:
            response, data = self._exchange(
                connection, method, path, body, headers
            )
        except (http.client.HTTPException, OSError):
            connection.close()
            if not reused:
                raise
            # The parked socket went stale (server-side close, idle
            # timeout): one retry on a fresh socket, then give up.
            connection = self._connect()
            try:
                response, data = self._exchange(
                    connection, method, path, body, headers
                )
            except (http.client.HTTPException, OSError):
                connection.close()
                raise
        if response.will_close:
            connection.close()
        else:
            with self._lock:
                if not self._closed and len(self._idle) < self.MAX_IDLE:
                    self._idle.append(connection)
                    connection = None
            if connection is not None:
                connection.close()
        return response.status, data

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()


def _raise_remote(response: SessionResponse) -> None:
    """Re-raise a failed response as the exception a local call raises.

    The server sends the library exception's class name in
    ``error_type``; unknown or missing types degrade to plain
    :class:`~repro.errors.ReproError`.
    """
    message = response.error or "request failed"
    exc_type = getattr(_errors, response.error_type or "", None)
    if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
        raise exc_type(message)
    raise ReproError(message)


class HTTPShardExecutor(_sharding.ShardExecutor):
    """Sharded serving over *remote* replicas: one ``repro serve``
    process per range-shard, reached through the keep-alive pool.

    The HTTP instance of the :class:`~repro.session.sharding.
    ShardExecutor` seam: ``execute(index, request)`` POSTs the request
    to replica ``index`` and returns its response dict — which is
    byte-for-byte what a local shard connection's
    ``execute(...).to_dict()`` produces, because the protocol's JSON
    encoding round-trips every value it carries (the differential
    suite in ``tests/test_sharding.py`` proves the two transports
    bit-identical across the full op matrix).  The merge math in
    :class:`~repro.session.sharding.ShardedExecutor` is unchanged;
    only the transport moved across the network.

    Each replica gets its own :class:`_KeepAlivePool`, so a fan-out
    over N shards reuses N parked sockets instead of paying N
    handshakes per request.  Replica ``index`` must serve exactly the
    database ``shard_databases(...)[index]`` describes — the executor
    ships requests verbatim and trusts the plan.

    Args:
        urls: base URL per shard, in shard order (length = plan.shards).
        timeout: per-request socket timeout, seconds.
    """

    def __init__(self, urls, timeout: float = 30.0):
        urls = [normalize_base_url(url) for url in urls]
        if not urls:
            raise ProtocolError(
                "HTTPShardExecutor needs at least one replica URL"
            )
        self.replicas = tuple(urls)
        self._pools = [_KeepAlivePool(url, timeout) for url in urls]

    def execute(self, index: int, request: SessionRequest) -> dict:
        pool = self._pools[index]
        try:
            _status, body = pool.request(
                "POST",
                SESSION_ROUTE,
                body=request.to_json().encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
        except (http.client.HTTPException, OSError) as error:
            raise ReproError(
                f"shard replica {index} at {self.replicas[index]} "
                f"is unreachable: {error}"
            ) from None
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ProtocolError(
                f"shard replica {index} at {self.replicas[index]} "
                "did not answer with JSON — is this really a repro "
                "server?"
            ) from None

    def close(self) -> None:
        for pool in self._pools:
            pool.close()

    def __repr__(self) -> str:
        return f"HTTPShardExecutor({list(self.replicas)!r})"


class HTTPConnection:
    """A prepared-query handle over a remote ``repro serve`` process.

    The HTTP twin of :class:`~repro.facade.Connection`: construct
    through :func:`repro.connect` with a URL.  Opening the connection
    pings ``GET /healthz`` once — a bad address fails fast, and the
    server's protocol version is checked against ours.

    Args:
        url: base URL of the server (scheme optional, ``http://``
            assumed).
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, url: str, timeout: float = 30.0):
        self._base = normalize_base_url(url)
        self._timeout = timeout
        self._closed = False
        self._pool = _KeepAlivePool(self._base, timeout)
        health = self._get_json("/healthz")
        remote_protocol = health.get("protocol")
        if (
            not isinstance(remote_protocol, int)
            or remote_protocol > PROTOCOL_VERSION
        ):
            raise ProtocolError(
                f"server at {self._base} speaks protocol "
                f"{remote_protocol!r}, this client speaks "
                f"{PROTOCOL_VERSION}"
            )
        self._health = health

    # -- transport ---------------------------------------------------------

    def _get_json(self, path: str) -> dict:
        try:
            _status, body = self._pool.request("GET", path)
        except (OSError, http.client.HTTPException) as error:
            raise ReproError(
                f"cannot reach repro server at {self._base}: {error}"
            ) from None
        try:
            return json.loads(body.decode("utf-8", errors="replace"))
        except json.JSONDecodeError:
            # Some other service answered: fail fast with a clean
            # error, not a JSON traceback out of connect().
            raise ProtocolError(
                f"{self._base}{path} did not answer with JSON — is "
                "this really a repro server?"
            ) from None

    def request(self, request: SessionRequest) -> SessionResponse:
        """One protocol round-trip (the raw, never-raising layer).

        Rides the keep-alive pool; transport-level rejections
        (400/404/413/...) carry the same structured
        :class:`~repro.session.SessionResponse` body as protocol-level
        failures, so every status parses the same way.
        """
        self._check_open()
        try:
            _status, body = self._pool.request(
                "POST",
                SESSION_ROUTE,
                body=request.to_json().encode("utf-8"),
                headers={"Content-Type": "application/json"},
                # Mutations must never ride a maybe-stale socket: the
                # pool's silent retry could apply them twice.
                reuse=request.op not in MUTATION_OPS,
            )
        except (OSError, http.client.HTTPException) as error:
            raise ReproError(
                f"cannot reach repro server at {self._base}: {error}"
            ) from None
        return SessionResponse.from_json(body.decode("utf-8"))

    def _call(self, op: str, **fields):
        """One op; raises the replayed library error on ``ok=False``."""
        response = self.request(SessionRequest(op=op, **fields))
        if not response.ok:
            _raise_remote(response)
        return response.result

    # -- the one API -------------------------------------------------------

    def prepare(
        self, query, order=None, prefix=None
    ) -> "RemoteAnswerView":
        """Preprocess ``query`` server-side; a remote answer view.

        The server plans (cache-aware) when ``order`` is ``None``,
        preprocesses, and replies with the served order and answer
        count; every later read on the view pins that exact order, so
        the view is stable even while other clients warm other orders.
        """
        result = self._call(
            "count",
            query=self._query_text(query),
            order=tuple(order) if order is not None else None,
            prefix=tuple(prefix) if prefix is not None else None,
        )
        return RemoteAnswerView(
            self,
            self._query_text(query),
            tuple(result["order"]),
            result["count"],
            version=result.get("db_version"),
        )

    def plan(self, query, prefix=None) -> dict:
        """The order the server would serve with: ``{"order": [...],
        "iota": "..."}`` (the exponent as an exact fraction string)."""
        return self._call(
            "plan",
            query=self._query_text(query),
            prefix=tuple(prefix) if prefix is not None else None,
        )

    @staticmethod
    def _query_text(query) -> str:
        return query if isinstance(query, str) else str(query)

    # -- mutations ---------------------------------------------------------

    def apply(self, delta) -> int:
        """Apply a :class:`~repro.data.delta.Delta` on the server.

        Ships the whole delta as **one atomic ``apply`` op**: however
        many relations it touches, the server applies it in a single
        step and bumps ``db_version`` exactly once — no client ever
        observes a state where only some relations have changed,
        matching a local :meth:`~repro.facade.Connection.apply`.
        Returns the new database version (an effectively-empty delta
        is a server-side no-op: current version, no bump).
        """
        self._check_open()
        delta = Delta.coerce(delta)
        if delta.is_empty:  # nothing to ship
            return self.db_version
        return self._call(
            "apply",
            inserts={
                name: tuple(sorted(delta.inserts[name]))
                for name in sorted(delta.inserts)
            }
            or None,
            deletes={
                name: tuple(sorted(delta.deletes[name]))
                for name in sorted(delta.deletes)
            }
            or None,
        )["db_version"]

    def insert(self, relation: str, rows) -> int:
        """Insert ``rows`` into ``relation``; the new database version."""
        return self.apply(Delta(inserts={relation: rows}))

    def delete(self, relation: str, rows) -> int:
        """Delete ``rows`` from ``relation``; the new database version."""
        return self.apply(Delta(deletes={relation: rows}))

    @property
    def db_version(self) -> int:
        """The server's current database version (one round-trip)."""
        return self._call("db_version")["db_version"]

    # -- observability / lifecycle -----------------------------------------

    @property
    def url(self) -> str:
        return self._base

    @property
    def engine_name(self) -> str:
        return self._health["engine"]

    def health(self) -> dict:
        """A fresh ``GET /healthz`` snapshot."""
        return self._get_json("/healthz")

    def stats(self) -> dict:
        """``GET /stats``: shared-store, per-worker, and wire counters."""
        return self._get_json("/stats")

    def close(self) -> None:
        """Close the pooled sockets and refuse further requests (the
        server is not affected)."""
        self._closed = True
        self._pool.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("connection is closed")

    def __enter__(self) -> "HTTPConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"HTTPConnection({self._base!r}, {state})"


class RemoteAnswerView(WindowedAnswers):
    """Sorted answers of a remotely prepared query, as a lazy Sequence.

    The wire twin of :class:`~repro.facade.AnswerView`: both inherit
    the window and inverse-access laws from
    :class:`~repro.facade.WindowedAnswers` (negative indices, lazy
    slice sub-views with steps, chunked iteration,
    ``view[view.rank(t)] == t``, the task layer), so the two can never
    silently diverge.  Here the primitives go over HTTP — each batch
    of positional reads is one ``access`` request per ``ITER_CHUNK``
    indices (bounded bodies, arbitrarily large batches) and each rank
    probe one ``rank`` request.  Bounds are checked client-side
    against the count captured at :meth:`~HTTPConnection.prepare`
    time, so out-of-range indices never touch the network and
    iteration terminates without a round-trip.

    Staleness: the view pins the server's ``db_version`` at prepare
    time and every wire read echoes it, so the server serves reads
    from that MVCC snapshot — the view keeps answering across later
    server-side mutations while its version stays retained, and reads
    raise :class:`~repro.errors.StaleViewError` (replayed from the
    wire) only once the snapshot is evicted.  ``len()`` stays the
    pinned prepare-time count — client-side state, no round-trip —
    and is exactly the snapshot's count.
    """

    #: Tuples per ``access`` request (iteration and batch reads).
    ITER_CHUNK = 512

    __slots__ = ("_connection", "_query", "_order", "_total", "_version")

    def __init__(
        self,
        connection: HTTPConnection,
        query: str,
        order: tuple[str, ...],
        total: int,
        window: range | None = None,
        version: int | None = None,
    ):
        self._connection = connection
        self._query = query
        self._order = order
        self._total = total
        self._window = range(total) if window is None else window
        # The server's db_version at prepare time; every read echoes
        # it, so a mutation on the server turns further reads into
        # StaleViewError (replayed from the wire) instead of silently
        # mixing pre- and post-mutation answers with the pinned count.
        self._version = version

    @property
    def db_version(self) -> int | None:
        """The server database version this view is pinned to."""
        return self._version

    # -- the windowed-Sequence primitives ----------------------------------

    def _resolve(self, underlying: list[int]) -> list[tuple]:
        # Chunked so an arbitrarily large batch (tuples_at over a huge
        # view, sample(k) with big k) can never outgrow the server's
        # request-body cap — each chunk is one bounded access op.
        out: list[tuple] = []
        for start in range(0, len(underlying), self.ITER_CHUNK):
            chunk = underlying[start : start + self.ITER_CHUNK]
            answers = self._connection._call(
                "access",
                query=self._query,
                order=self._order,
                indices=tuple(chunk),
                db_version=self._version,
            )["answers"]
            out.extend(tuple(answer) for answer in answers)
        return out

    def _rank_underlying(self, row: tuple) -> int | None:
        return self._connection._call(
            "rank",
            query=self._query,
            order=self._order,
            answer=tuple(row),
            db_version=self._version,
        )["rank"]

    def ranks(self, rows) -> list[int | None]:
        """Batch :meth:`rank` in one wire op per :attr:`ITER_CHUNK`
        tuples (the protocol's batched ``rank`` form) instead of one
        round-trip per tuple."""
        rows = list(rows)
        out: list[int | None] = [None] * len(rows)
        wired = [
            (position, tuple(row))
            for position, row in enumerate(rows)
            if isinstance(row, (list, tuple))
        ]  # non-sequences can never be answers: no round-trip spent
        if not wired and self._version is not None:
            # Nothing reaches the wire, so no op would carry the
            # version pin — probe with a pinned count: the server
            # applies the same MVCC retention rules as any real read
            # (StaleViewError iff the snapshot is gone), exactly like
            # the local AnswerView.ranks.
            self._connection._call(
                "count",
                query=self._query,
                order=self._order,
                db_version=self._version,
            )
        for start in range(0, len(wired), self.ITER_CHUNK):
            chunk = wired[start : start + self.ITER_CHUNK]
            ranks = self._connection._call(
                "rank",
                query=self._query,
                order=self._order,
                answers=tuple(row for _position, row in chunk),
                db_version=self._version,
            )["ranks"]
            for (position, _row), underlying in zip(chunk, ranks):
                if underlying is None:
                    continue
                try:
                    out[position] = self._window.index(underlying)
                except ValueError:
                    pass  # an answer, but outside this view's window
        return out

    def _subview(self, window: range) -> "RemoteAnswerView":
        return RemoteAnswerView(
            self._connection,
            self._query,
            self._order,
            self._total,
            window,
            version=self._version,
        )

    # -- provenance --------------------------------------------------------

    @property
    def query(self) -> str:
        return self._query

    @property
    def order(self) -> tuple[str, ...]:
        """The variable order the answers are sorted by."""
        return self._order

    @property
    def columns(self) -> tuple[str, ...]:
        """The variables of each answer tuple, in order position."""
        return self._order

    def __repr__(self) -> str:
        window = self._window
        full = window == range(self._total)
        span = "" if full else f", window={window!r}"
        return (
            f"RemoteAnswerView({self._query}, "
            f"order={list(self._order)}, len={len(self)}{span})"
        )


__all__ = [
    "HTTPConnection",
    "HTTPShardExecutor",
    "RemoteAnswerView",
    "normalize_base_url",
]
